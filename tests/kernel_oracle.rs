//! Differential-oracle property suite for the tiled verification kernel:
//! `TileGrid::cp` / `TiledMask::cp_many` must return counts **byte-identical**
//! to the reference scan `Mask::count_pixels` — exact equality, no tolerance —
//! over arbitrary mask shapes (including non-tile-multiple widths/heights and
//! degenerate 1×N / N×1 masks), arbitrary clipped and fully-disjoint ROIs,
//! arbitrary tile sizes, and boundary ranges (bin-edge aligned, one-ULP wide,
//! the full `[0, 1)` domain).

use masksearch::core::{
    cp, cp_composed, cp_many, Mask, MaskOp, PixelRange, Roi, TileGrid, TileStats, TiledMask,
};
use proptest::prelude::*;

/// Builds one mask of a content family. Families 0–3 are in-domain (smooth
/// blobs, hash noise, bin-edge values, near-constant); families 4–5 use the
/// unchecked constructor to inject NaN / ±∞ / −0.0 / out-of-domain pixels —
/// the payloads a hostile or corrupt compressed blob can round-trip into a
/// mask, where the kernel's summaries must still agree with the reference
/// scan (NaN is never in range).
fn mask_of(w: u32, h: u32, seed: u64, kind: u32) -> Mask {
    let mut state = seed | 1;
    if kind >= 4 {
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let dense_specials = kind == 5;
        let data: Vec<f32> = (0..(w as usize) * (h as usize))
            .map(|_| {
                let r = next();
                let special = if dense_specials {
                    r % 2 == 0
                } else {
                    r % 8 == 0
                };
                if special {
                    match (r >> 8) % 6 {
                        0 => f32::NAN,
                        1 => f32::INFINITY,
                        2 => f32::NEG_INFINITY,
                        3 => -0.0,
                        4 => 1.0 + ((r >> 16) % 100) as f32 / 10.0,
                        _ => -(((r >> 16) % 100) as f32 / 10.0),
                    }
                } else {
                    ((r >> 33) as f32) / (u32::MAX as f32 + 1.0)
                }
            })
            .collect();
        return Mask::from_data_unchecked(w, h, data).expect("shape matches");
    }
    Mask::from_fn(w, h, move |x, y| match kind {
        0 => {
            let dx = x as f32 - w as f32 / 3.0;
            let dy = y as f32 - h as f32 / 2.0;
            0.9 * (-(dx * dx + dy * dy) / ((w.min(h) as f32 / 3.0).powi(2)).max(1.0)).exp()
        }
        1 => {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32) / (u32::MAX as f32)
        }
        2 => ((x + y * w + seed as u32) % 17) as f32 / 16.0, // bin edges, incl. 1.0 clamped
        _ => 0.5 + ((x + y) % 2) as f32 * f32::EPSILON,
    })
}

/// Arbitrary masks over all six content families (including the
/// special-pixel families 4–5).
fn arb_mask() -> impl Strategy<Value = Mask> {
    (1u32..72, 1u32..72, any::<u64>(), 0u32..6u32)
        .prop_map(|(w, h, seed, kind)| mask_of(w, h, seed, kind))
}

/// A same-shape mask pair for the composed kernel (independent content
/// families and seeds per side).
fn arb_mask_pair() -> impl Strategy<Value = (Mask, Mask)> {
    (
        1u32..56,
        1u32..56,
        any::<u64>(),
        any::<u64>(),
        0u32..6u32,
        0u32..6u32,
    )
        .prop_map(|(w, h, sa, sb, ka, kb)| (mask_of(w, h, sa, ka), mask_of(w, h, sb, kb)))
}

/// ROIs that may lie partially or entirely outside the mask (clipping and
/// disjointness are part of the contract under test).
fn arb_roi() -> impl Strategy<Value = Roi> {
    (0u32..100, 0u32..100, 1u32..=100, 1u32..=100)
        .prop_filter_map("non-degenerate roi", |(x0, y0, w, h)| {
            Roi::new(x0, y0, x0 + w, y0 + h).ok()
        })
}

/// Ranges mixing generic hundredth-grid bounds, bin-aligned bounds (`i/16`),
/// the full domain, and one-ULP-wide ranges around an arbitrary value.
fn arb_range() -> impl Strategy<Value = PixelRange> {
    (0u32..4u32, 0u32..=99, 1u32..=100, any::<u64>()).prop_filter_map(
        "valid range",
        |(kind, lo, width, seed)| match kind {
            0 => {
                let lo = lo as f32 / 100.0;
                let hi = (lo + width as f32 / 100.0).min(1.0);
                PixelRange::new(lo, hi).ok()
            }
            1 => {
                let a = lo % 16;
                let b = (a + 1 + width % 16).min(16);
                PixelRange::new(a as f32 / 16.0, b as f32 / 16.0).ok()
            }
            2 => Some(PixelRange::full()),
            _ => {
                // One ULP wide: [v, next_up(v)) contains exactly the value v.
                let v = ((seed % 1_000_000) as f32 / 1_000_000.0).min(0.999_999);
                PixelRange::new(v, v.next_up()).ok()
            }
        },
    )
}

/// Tile sizes exercising heavy partial-tile coverage (1..=9) and the
/// production default's neighbourhood.
fn arb_tile() -> impl Strategy<Value = u32> {
    (1u32..=10, 0u32..2u32).prop_map(|(small, big)| if big == 0 { small } else { small * 16 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The core differential oracle: kernel CP == reference CP, exactly.
    #[test]
    fn tiled_cp_equals_reference_cp(
        mask in arb_mask(),
        tile in arb_tile(),
        roi in arb_roi(),
        range in arb_range(),
    ) {
        let grid = TileGrid::build_with(&mask, tile);
        let mut stats = TileStats::default();
        let kernel = grid.cp(&mask, &roi, &range, &mut stats);
        let reference = mask.count_pixels(&roi, &range);
        prop_assert_eq!(kernel, reference, "tile={} roi={} range={}", tile, roi, range);
        // Every overlapping tile is classified exactly once.
        if let Some(clip) = mask.clip_roi(&roi) {
            let tx = clip.x1().div_ceil(tile) - clip.x0() / tile;
            let ty = clip.y1().div_ceil(tile) - clip.y0() / tile;
            prop_assert_eq!(stats.tiles_touched(), u64::from(tx) * u64::from(ty));
        } else {
            prop_assert_eq!(stats.tiles_touched(), 0);
        }
    }

    /// Multi-term evaluation through the kernel and through the reference
    /// batched scan both equal per-term reference counts.
    #[test]
    fn cp_many_paths_equal_reference(
        mask in arb_mask(),
        roi_a in arb_roi(),
        roi_b in arb_roi(),
        range_a in arb_range(),
        range_b in arb_range(),
    ) {
        let terms = vec![(roi_a, range_a), (roi_b, range_b), (roi_a, range_b)];
        let tiled = TiledMask::from_mask(mask.clone());
        let kernel = tiled.cp_many(&terms);
        let batched = cp_many(&mask, &terms);
        for (i, (roi, range)) in terms.iter().enumerate() {
            let reference = cp(&mask, roi, range);
            prop_assert_eq!(kernel[i], reference, "kernel term {}", i);
            prop_assert_eq!(batched[i], reference, "batched term {}", i);
        }
    }

    /// A grid seeded through the persistence parts API produces the same
    /// counts as a freshly built one.
    #[test]
    fn reassembled_grid_equals_fresh_grid(
        mask in arb_mask(),
        tile in arb_tile(),
        roi in arb_roi(),
        range in arb_range(),
    ) {
        let grid = TileGrid::build_with(&mask, tile);
        let reassembled = TileGrid::from_parts(
            grid.mask_width(),
            grid.mask_height(),
            grid.tile(),
            grid.summaries().to_vec(),
        ).expect("layout matches");
        prop_assert!(reassembled.verify(&mask));
        let mut stats = TileStats::default();
        prop_assert_eq!(
            reassembled.cp(&mask, &roi, &range, &mut stats),
            mask.count_pixels(&roi, &range)
        );
    }

    /// Composed-kernel differential oracle: `CP` over `min` / `max` /
    /// `|a−b|` through both masks' tile summaries equals the fused
    /// reference scan, exactly — including masks with NaN/±∞/−0.0 pixels
    /// (a NaN operand poisons the composed pixel, which is never counted).
    #[test]
    fn composed_kernel_equals_reference(
        pair in arb_mask_pair(),
        tile in arb_tile(),
        roi in arb_roi(),
        range in arb_range(),
        op_pick in 0u32..3,
    ) {
        let (a, b) = pair;
        let op = [MaskOp::Intersect, MaskOp::Union, MaskOp::Diff][op_pick as usize];
        let ga = TileGrid::build_with(&a, tile);
        let gb = TileGrid::build_with(&b, tile);
        let mut stats = TileStats::default();
        let kernel = ga.cp_composed(&gb, &a, &b, op, &roi, &range, &mut stats);
        let reference = cp_composed(&a, &b, op, &roi, &range).expect("same shape");
        prop_assert_eq!(kernel, reference, "{} tile={} roi={} range={}", op, tile, roi, range);
        // The TiledMask wrapper (default tile size, lazy grids) agrees too.
        let ta = TiledMask::from_mask(a);
        let tb = TiledMask::from_mask(b);
        let wrapped = ta
            .cp_composed_with_stats(&tb, op, &roi, &range, &mut stats)
            .expect("same shape");
        prop_assert_eq!(wrapped, reference);
    }
}

/// Degenerate bound combinations that the type system rejects rather than
/// the kernel mis-counting: `lv == uv`, inverted, NaN, and out-of-domain
/// bounds are all unrepresentable as [`PixelRange`] values.
#[test]
fn degenerate_ranges_are_unrepresentable() {
    for v in [0.0f32, 0.25, 0.5, 0.999, 1.0] {
        assert!(PixelRange::new(v, v).is_err(), "lv == uv must be rejected");
    }
    assert!(PixelRange::new(0.7, 0.2).is_err());
    assert!(PixelRange::new(f32::NAN, 0.5).is_err());
    assert!(PixelRange::new(0.1, f32::NAN).is_err());
    assert!(PixelRange::new(-0.1, 0.5).is_err());
    assert!(PixelRange::new(0.0, 1.0 + f32::EPSILON).is_err());
}

/// NaN-adjacent / extreme-but-valid bounds: the smallest positive range, a
/// range ending at the largest sub-1.0 value, and subnormal lower bounds.
#[test]
fn extreme_boundary_ranges_stay_exact() {
    let masks = [
        Mask::from_fn(33, 7, |x, y| ((x * 31 + y * 17) % 97) as f32 / 97.0),
        Mask::from_fn(1, 64, |_, y| (y % 16) as f32 / 16.0),
        Mask::from_fn(64, 1, |x, _| (x % 16) as f32 / 16.0),
        Mask::constant(16, 16, 1.0 - f32::EPSILON).unwrap(),
        Mask::constant(5, 5, f32::MIN_POSITIVE / 2.0).unwrap(), // subnormal pixels
    ];
    let ranges = [
        PixelRange::new(0.0, f32::MIN_POSITIVE).unwrap(),
        PixelRange::new(0.0, f32::MIN_POSITIVE / 2.0).unwrap(),
        PixelRange::new((1.0f32 - f32::EPSILON).next_down(), 1.0).unwrap(),
        PixelRange::new(1.0 - f32::EPSILON, 1.0).unwrap(),
        PixelRange::full(),
    ];
    for mask in &masks {
        for tile in [1u32, 2, 5, 64] {
            let grid = TileGrid::build_with(mask, tile);
            for range in &ranges {
                for roi in [
                    mask.full_roi(),
                    Roi::new(0, 0, 3, 3).unwrap(),
                    Roi::new(2, 0, 1000, 1000).unwrap(),
                ] {
                    assert_eq!(
                        grid.cp(mask, &roi, range, &mut TileStats::default()),
                        mask.count_pixels(&roi, range),
                        "range {range} roi {roi} tile {tile}"
                    );
                }
            }
        }
    }
}
