//! Exactly-once mutation resend: a client whose connection dies *after* the
//! server committed an `INSERT` must be able to resend on reconnect without
//! double-applying the write.
//!
//! The test places a byte-forwarding proxy between a reconnect-enabled
//! [`Client`] and a real [`Server`]. For one scripted request the proxy
//! forwards the request line, waits for the server's full response (so the
//! mutation is known to have applied), then kills both directions without
//! relaying the response — exactly the "proxy/network died mid-INSERT"
//! failure. The client sees a transport error, reconnects through the proxy,
//! and resends its `TOKEN`-wrapped statement; the server's dedup registry
//! answers from the recorded outcome. Exactly-once application is asserted
//! through the engine's metrics (`mutations`, `masks_inserted`, `deduped`)
//! and the catalog state.

use masksearch::core::{ImageId, Mask, MaskId, MaskRecord};
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Session, SessionConfig};
use masksearch::service::{Client, Engine, Server, ServiceConfig, ServiceError};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A line-level proxy: forwards request lines upstream and response frames
/// downstream. While `drop_next_response` is set, the first complete
/// response frame is *consumed but not relayed*, and both connections are
/// torn down — the committed-but-unacknowledged window.
struct Proxy {
    addr: SocketAddr,
    drop_next_response: Arc<AtomicBool>,
}

impl Proxy {
    fn start(upstream: SocketAddr) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().unwrap();
        let drop_next_response = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&drop_next_response);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(client) = stream else { break };
                let flag = Arc::clone(&flag);
                std::thread::spawn(move || {
                    let _ = serve(client, upstream, &flag);
                });
            }
        });
        Proxy {
            addr,
            drop_next_response,
        }
    }
}

/// Reads one response frame (through `END`) from the server.
fn read_frame(server_reader: &mut BufReader<TcpStream>) -> std::io::Result<Vec<u8>> {
    let mut frame = Vec::new();
    loop {
        let mut line = String::new();
        if server_reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-frame",
            ));
        }
        frame.extend_from_slice(line.as_bytes());
        if line.trim_end() == "END" {
            return Ok(frame);
        }
    }
}

fn serve(client: TcpStream, upstream: SocketAddr, drop_next: &AtomicBool) -> std::io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    let mut client_reader = BufReader::new(client.try_clone()?);
    let mut client_writer = client;
    let mut server_reader = BufReader::new(server.try_clone()?);
    let mut server_writer = server;
    loop {
        let mut line = String::new();
        if client_reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        server_writer.write_all(line.as_bytes())?;
        server_writer.flush()?;
        // Always collect the server's complete response first: the mutation
        // has fully applied by the time the frame ends.
        let frame = read_frame(&mut server_reader)?;
        let is_mutation = line
            .trim_start()
            .get(..6)
            .is_some_and(|p| p.eq_ignore_ascii_case("TOKEN "))
            || line.trim_start().get(..7).is_some_and(|p| {
                p.eq_ignore_ascii_case("INSERT ") || p.eq_ignore_ascii_case("DELETE ")
            });
        if is_mutation && drop_next.swap(false, Ordering::SeqCst) {
            // Kill the connection without relaying the (successful)
            // response: the client cannot know the write committed.
            drop(client_writer);
            drop(server_writer);
            return Ok(());
        }
        client_writer.write_all(&frame)?;
        client_writer.flush()?;
    }
}

fn serve_engine() -> (Engine, masksearch::service::ServerHandle) {
    let store = MemoryMaskStore::for_tests();
    let mut catalog = Catalog::new();
    for i in 0..4u64 {
        let mask = Mask::from_fn(16, 16, move |x, y| ((x + y + i as u32) % 10) as f32 / 10.0);
        store.put(MaskId::new(i), &mask).unwrap();
        catalog.insert(
            MaskRecord::builder(MaskId::new(i))
                .image_id(ImageId::new(i))
                .shape(16, 16)
                .build(),
        );
    }
    let session = Session::new(
        Arc::new(store),
        catalog,
        SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
            .threads(2)
            .indexing_mode(IndexingMode::Eager),
    )
    .unwrap();
    let engine = Engine::new(session, ServiceConfig::new(2));
    let server = Server::bind("127.0.0.1:0", engine.clone()).unwrap();
    let handle = server.spawn();
    (engine, handle)
}

fn insert_statement(mask_id: u64, image_id: u64) -> String {
    let pixels: Vec<String> = (0..64).map(|_| "0.9".to_string()).collect();
    format!(
        "INSERT INTO masks VALUES ({mask_id}, {image_id}, 8, 8, ({}))",
        pixels.join(", ")
    )
}

#[test]
fn killed_proxy_mid_insert_applies_exactly_once() {
    let (engine, handle) = serve_engine();
    let proxy = Proxy::start(handle.local_addr());
    let mut client = Client::connect(proxy.addr).unwrap().with_reconnect(true);

    // Warm-up request through the proxy.
    client.ping().unwrap();

    // Arm the proxy: the next mutation's response is swallowed and the
    // connection killed after the server committed.
    proxy.drop_next_response.store(true, Ordering::SeqCst);
    let response = client.query(&insert_statement(100, 50)).unwrap();
    assert_eq!(response.summary.inserted, 1);

    // Exactly-once: the statement executed once and the resend was answered
    // from the dedup registry.
    let metrics = engine.metrics();
    assert_eq!(metrics.mutations, 1, "mutation applied more than once");
    assert_eq!(metrics.masks_inserted, 1);
    assert_eq!(metrics.mutations_deduped, 1, "resend was not deduplicated");
    assert_eq!(engine.session().catalog_len(), 5);

    // The mask is present and queryable exactly once.
    let out = client
        .query("SELECT mask_id FROM masks WHERE CP(mask, (0, 0, 8, 8), (0.85, 1.0)) > 60")
        .unwrap();
    assert_eq!(out.mask_ids(), vec![MaskId::new(100)]);

    // The STATS line carries the dedup counter.
    let stats = client.stats().unwrap();
    assert!(stats.contains("deduped=1"), "{stats}");

    // A second kill during DELETE: same guarantees, and the delete is not
    // double-reported as UnknownMask.
    proxy.drop_next_response.store(true, Ordering::SeqCst);
    let response = client
        .query("DELETE FROM masks WHERE mask_id = 100")
        .unwrap();
    assert_eq!(response.summary.deleted, 1);
    let metrics = engine.metrics();
    assert_eq!(metrics.mutations, 2);
    assert_eq!(metrics.masks_deleted, 1);
    assert_eq!(metrics.mutations_deduped, 2);
    assert_eq!(engine.session().catalog_len(), 4);

    handle.shutdown();
    engine.shutdown();
}

#[test]
fn bare_mutations_fail_loudly_instead_of_double_applying() {
    // A foreign client that does not speak the TOKEN envelope sends a raw
    // INSERT; the proxy kills the connection after the server committed.
    // The foreign client must observe a transport error (the ambiguity is
    // surfaced, never silently retried), and the server state reflects
    // exactly one application.
    let (engine, handle) = serve_engine();
    let proxy = Proxy::start(handle.local_addr());

    let mut raw = TcpStream::connect(proxy.addr).unwrap();
    let mut raw_reader = BufReader::new(raw.try_clone().unwrap());
    // Handshake like any protocol peer.
    raw.write_all(b"PING\n").unwrap();
    let mut line = String::new();
    raw_reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("PONG"), "{line}");
    line.clear();
    raw_reader.read_line(&mut line).unwrap(); // END

    proxy.drop_next_response.store(true, Ordering::SeqCst);
    raw.write_all(format!("{}\n", insert_statement(200, 60)).as_bytes())
        .unwrap();
    // The proxy swallows the response and closes: EOF on the raw socket.
    let mut rest = String::new();
    let eof = raw_reader.read_to_string(&mut rest).unwrap();
    assert_eq!(eof, 0, "expected a dropped connection, got {rest:?}");

    // The server applied the statement exactly once regardless.
    assert_eq!(engine.metrics().mutations, 1);
    assert_eq!(engine.metrics().masks_inserted, 1);
    assert_eq!(engine.metrics().mutations_deduped, 0);
    assert_eq!(engine.session().catalog_len(), 5);

    // And the tokenised Client still works against the same server after
    // the foreign client's failure.
    let mut client = Client::connect(proxy.addr).unwrap().with_reconnect(true);
    let response = client
        .query("DELETE FROM masks WHERE mask_id = 200")
        .unwrap();
    assert_eq!(response.summary.deleted, 1);
    match client.query("DELETE FROM masks WHERE mask_id = 200") {
        Err(ServiceError::Remote(msg)) => assert!(msg.contains("not in the catalog"), "{msg}"),
        other => panic!("expected a remote UnknownMask error, got {other:?}"),
    }

    handle.shutdown();
    engine.shutdown();
}
