//! Integration test: SQL statements compiled by `masksearch-sql` produce the
//! same results as the equivalent hand-built queries.

use masksearch::core::{MaskAgg, PixelRange, Roi};
use masksearch::datagen::DatasetSpec;
use masksearch::index::ChiConfig;
use masksearch::query::{
    CpTerm, Expr, IndexingMode, Order, Query, ScalarAgg, Selection, Session, SessionConfig,
};
use masksearch::sql::compile;
use masksearch::storage::{MaskEncoding, MaskStore, MemoryMaskStore};
use std::sync::Arc;

fn session() -> Session {
    let spec = DatasetSpec {
        name: "sql-it".to_string(),
        num_images: 60,
        models: 2,
        mask_width: 48,
        mask_height: 48,
        num_classes: 5,
        seed: 3,
        focus_probability: 0.7,
    };
    let store = Arc::new(MemoryMaskStore::new(
        MaskEncoding::Raw,
        masksearch::storage::DiskProfile::unthrottled(),
    ));
    let dataset = spec.generate_into(store.as_ref()).unwrap();
    Session::new(
        store as Arc<dyn MaskStore>,
        dataset.catalog,
        SessionConfig::new(ChiConfig::new(8, 8, 16).unwrap()).indexing_mode(IndexingMode::Eager),
    )
    .unwrap()
}

#[test]
fn sql_filter_matches_hand_built_query() {
    let session = session();
    let sql = compile(
        "SELECT mask_id FROM masks \
         WHERE CP(mask, (8, 8, 40, 40), (0.6, 1.0)) > 100 AND model_id = 1",
    )
    .unwrap();
    let hand = Query::filter_cp_gt(
        Roi::new(8, 8, 40, 40).unwrap(),
        PixelRange::new(0.6, 1.0).unwrap(),
        100.0,
    )
    .with_selection(Selection::all().with_model(masksearch::core::ModelId::new(1)));
    assert_eq!(
        session.execute(&sql).unwrap().mask_ids(),
        session.execute(&hand).unwrap().mask_ids()
    );
}

#[test]
fn sql_ratio_topk_matches_hand_built_query() {
    let session = session();
    let sql = compile(
        "SELECT mask_id, CP(mask, object, (0.85, 1.0)) / CP(mask, full, (0.85, 1.0)) AS r \
         FROM masks ORDER BY r ASC LIMIT 7",
    )
    .unwrap();
    let range = PixelRange::new(0.85, 1.0).unwrap();
    let hand = Query::top_k(
        Expr::cp_object(range).div(Expr::cp_full(range)),
        7,
        Order::Asc,
    );
    assert_eq!(
        session.execute(&sql).unwrap().mask_ids(),
        session.execute(&hand).unwrap().mask_ids()
    );
}

#[test]
fn sql_aggregation_matches_hand_built_query() {
    let session = session();
    let sql = compile(
        "SELECT image_id, AVG(CP(mask, object, (0.8, 1.0))) AS s \
         FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 8",
    )
    .unwrap();
    let hand = Query::aggregate(
        Expr::cp_object(PixelRange::new(0.8, 1.0).unwrap()),
        ScalarAgg::Avg,
    )
    .with_group_top_k(8, Order::Desc);
    assert_eq!(
        session.execute(&sql).unwrap().image_ids(),
        session.execute(&hand).unwrap().image_ids()
    );
}

#[test]
fn sql_mask_aggregation_matches_hand_built_query() {
    let session = session();
    let sql = compile(
        "SELECT image_id, CP(INTERSECT(mask > 0.7), object, (0.7, 1.0)) AS s \
         FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 6",
    )
    .unwrap();
    let hand = Query::mask_aggregate(
        MaskAgg::IntersectThreshold { threshold: 0.7 },
        CpTerm::object_roi(PixelRange::new(0.7, 1.0).unwrap()),
    )
    .with_group_top_k(6, Order::Desc);
    assert_eq!(
        session.execute(&sql).unwrap().image_ids(),
        session.execute(&hand).unwrap().image_ids()
    );
}
