//! End-to-end observability acceptance tests:
//!
//! 1. `EXPLAIN ANALYZE` counters equal the measured [`QueryStats`] exactly —
//!    at the session level (kernel on and off, pair queries included) and
//!    over the wire against both a single-node server and a 4-shard
//!    coordinator (whose plan carries one measured sub-tree per shard).
//! 2. `METRICS` emits Prometheus text exposition that passes
//!    [`masksearch::obs::prom::validate`] on both front ends.
//! 3. `STATS PROFILES` returns span trees for traced queries; a server with
//!    tracing disabled records nothing and answers queries with frames
//!    byte-identical (modulo wall time) to a tracing-enabled server's.
//! 4. Per-shape aggregate statistics persist at checkpoint and survive a
//!    database reopen.

use masksearch::cluster::{ClusterConfig, Coordinator, CoordinatorServer, ShardMap};
use masksearch::core::{ImageId, Mask, MaskId, MaskRecord, PixelRange, Roi};
use masksearch::db::{DbConfig, MaskDb};
use masksearch::index::ChiConfig;
use masksearch::obs::prom;
use masksearch::query::{
    CpTerm, Expr, IndexingMode, MaskJoin, Order, Query, Selection, Session, SessionConfig,
    TermSource,
};
use masksearch::service::{Client, Engine, Server, ServerHandle, ServiceConfig};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const W: u32 = 16;
const H: u32 = 16;

fn mask_for(id: u64) -> Mask {
    let mut state = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    Mask::from_fn(W, H, move |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f32) / (1u64 << 24) as f32
    })
}

fn record_for(id: u64) -> MaskRecord {
    MaskRecord::builder(MaskId::new(id))
        .image_id(ImageId::new(id / 2))
        .shape(W, H)
        .build()
}

fn session_config(kernel: bool) -> SessionConfig {
    SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
        .threads(2)
        .indexing_mode(IndexingMode::Eager)
        .tiled_kernel(kernel)
}

fn session_over(ids: &[u64], kernel: bool) -> Session {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for &id in ids {
        store.put(MaskId::new(id), &mask_for(id)).unwrap();
        catalog.insert(record_for(id));
    }
    Session::new(store as Arc<dyn MaskStore>, catalog, session_config(kernel)).unwrap()
}

fn filter_sql() -> String {
    format!(
        "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.5, 1.0)) > {}",
        W * H / 2
    )
}

/// `key=value` token lookup on one rendered plan/summary line.
fn token_value(line: &str, key: &str) -> Option<u64> {
    line.split_ascii_whitespace()
        .find_map(|t| t.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.parse().ok())
}

/// The counter `key` on the first plan line whose node name is `node`.
fn node_counter(lines: &[String], node: &str, key: &str) -> Option<u64> {
    lines
        .iter()
        .map(|l| l.trim_start())
        .find(|l| *l == node || l.starts_with(&format!("{node} ")))
        .and_then(|l| token_value(l, key))
}

/// Asserts an annotated plan's counters equal `stats` field for field.
fn assert_plan_matches_stats(
    plan: &masksearch::query::PlanNode,
    stats: &masksearch::query::QueryStats,
    rows: u64,
) {
    assert_eq!(plan.counter("candidates"), Some(stats.candidates));
    assert_eq!(plan.counter("rows"), Some(rows));
    assert_eq!(
        plan.counter("wall_us"),
        Some(stats.total_wall.as_micros() as u64)
    );
    let filter = plan.find("filter").expect("filter node");
    assert_eq!(filter.counter("pruned"), Some(stats.pruned));
    assert_eq!(
        filter.counter("accepted"),
        Some(stats.accepted_without_load)
    );
    assert_eq!(filter.counter("verified"), Some(stats.verified));
    assert_eq!(
        filter.counter("wall_us"),
        Some(stats.filter_wall.as_micros() as u64)
    );
    let verify = plan.find("verify").expect("verify node");
    assert_eq!(verify.counter("loaded"), Some(stats.masks_loaded));
    assert_eq!(verify.counter("bytes_read"), Some(stats.bytes_read));
    assert_eq!(verify.counter("indexes_built"), Some(stats.indexes_built));
    assert_eq!(verify.counter("tiles_pruned"), Some(stats.tiles_pruned));
    assert_eq!(verify.counter("tiles_hist"), Some(stats.tiles_hist));
    assert_eq!(verify.counter("tiles_scanned"), Some(stats.tiles_scanned));
}

#[test]
fn explain_analyze_counters_equal_query_stats_at_session_level() {
    let ids: Vec<u64> = (0..24).collect();
    let filter = Query::filter_cp_gt(
        Roi::new(0, 0, W, H).unwrap(),
        PixelRange::new(0.5, 1.0).unwrap(),
        (W * H / 2) as f64,
    );
    let pair = Query::pair_top_k(
        MaskJoin::new(Selection::all(), Selection::all()),
        Expr::Cp(
            CpTerm::full_mask(PixelRange::new(0.5, 1.0).unwrap()).with_source(TermSource::Left),
        ),
        5,
        Order::Desc,
    );
    for kernel in [true, false] {
        let session = session_over(&ids, kernel);
        for query in [&filter, &pair] {
            let (plan, output) = session.explain_analyze(query).expect("explain analyze");
            assert_plan_matches_stats(&plan, &output.stats, output.rows.len() as u64);
            if let Some(bind) = plan.find("pair.bind") {
                assert_eq!(bind.counter("pairs_bound"), Some(output.stats.pairs_bound));
            }
        }
    }
}

#[test]
fn explain_analyze_counters_equal_wire_summary_single_node() {
    for kernel in [true, false] {
        let engine = Engine::new(session_over(&(0..24).collect::<Vec<_>>(), kernel), {
            ServiceConfig::new(2)
        });
        let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        let sql = filter_sql();
        // Warm the mask cache so both executions below observe identical
        // load counts.
        client.query(&sql).unwrap();
        let summary = client.query(&sql).unwrap().summary;
        let plan = client.explain(true, &sql).unwrap();
        assert!(
            plan[0].starts_with("query kind=filter"),
            "got {:?}",
            plan[0]
        );
        assert_eq!(
            node_counter(&plan, "query", "candidates"),
            Some(summary.candidates)
        );
        assert_eq!(node_counter(&plan, "query", "rows"), Some(summary.rows));
        assert_eq!(
            node_counter(&plan, "filter", "pruned"),
            Some(summary.pruned)
        );
        assert_eq!(
            node_counter(&plan, "filter", "verified"),
            Some(summary.verified)
        );
        assert_eq!(
            node_counter(&plan, "verify", "loaded"),
            Some(summary.loaded)
        );

        // Plan-only EXPLAIN neither executes nor carries measured counters.
        let plan_only = client.explain(false, &sql).unwrap();
        assert!(plan_only[0].starts_with("query kind=filter"));
        assert_eq!(node_counter(&plan_only, "query", "candidates"), None);
        assert_eq!(node_counter(&plan_only, "query", "wall_us"), None);
        handle.shutdown();
    }
}

struct TestCluster {
    _servers: Vec<ServerHandle>,
    coordinator: Coordinator,
}

fn cluster(num_shards: usize, ids: &[u64]) -> TestCluster {
    let map = ShardMap::new(num_shards).unwrap();
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); num_shards];
    for &id in ids {
        per_shard[map.shard_for_record(&record_for(id))].push(id);
    }
    let servers: Vec<ServerHandle> = per_shard
        .iter()
        .map(|shard_ids| {
            let engine = Engine::new(session_over(shard_ids, true), ServiceConfig::new(2));
            Server::bind("127.0.0.1:0", engine).unwrap().spawn()
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let coordinator = Coordinator::connect(ClusterConfig::new(addrs)).unwrap();
    TestCluster {
        _servers: servers,
        coordinator,
    }
}

#[test]
fn cluster_explain_analyze_carries_one_measured_subtree_per_shard() {
    let ids: Vec<u64> = (0..40).collect();
    let test = cluster(4, &ids);
    let front = CoordinatorServer::bind("127.0.0.1:0", test.coordinator.clone())
        .unwrap()
        .spawn();
    let mut client = Client::connect(front.local_addr()).unwrap();
    let sql = filter_sql();
    // Warm every shard's cache so the explain below observes the same load
    // counts as the reference execution.
    client.query(&sql).unwrap();
    let summary = client.query(&sql).unwrap().summary;

    let plan = client.explain(true, &sql).unwrap();
    assert!(
        plan[0].starts_with("cluster shards=4 routing=broadcast"),
        "got {:?}",
        plan[0]
    );
    assert!(
        token_value(&plan[0], "wall_us").is_some(),
        "analyze roots carry wall time"
    );
    for shard in 0..4 {
        assert!(
            plan.iter()
                .any(|l| l.starts_with(&format!("  shard {shard} addr="))),
            "missing sub-tree for shard {shard}"
        );
    }
    // Each shard sub-tree is a measured single-node plan; their candidate
    // counts sum to exactly what the coordinated execution reported.
    let shard_roots: Vec<&String> = plan
        .iter()
        .filter(|l| l.trim_start().starts_with("query "))
        .collect();
    assert_eq!(shard_roots.len(), 4, "one query root per shard");
    let candidate_sum: u64 = shard_roots
        .iter()
        .map(|l| token_value(l, "candidates").expect("measured shard root"))
        .sum();
    assert_eq!(candidate_sum, summary.candidates);
    let loaded_sum: u64 = shard_roots
        .iter()
        .map(|l| {
            let indent = plan.iter().position(|p| p == *l).unwrap();
            node_counter(&plan[indent..], "verify", "loaded").expect("verify node")
        })
        .sum();
    assert_eq!(loaded_sum, summary.loaded);

    // Ranked routing is named on the root so the plan doesn't overstate
    // what each shard returns at execution time.
    let ranked = format!(
        "SELECT mask_id, CP(mask, (0, 0, {W}, {H}), (0.6, 1.0)) AS s \
         FROM masks ORDER BY s DESC LIMIT 5"
    );
    let ranked_plan = client.explain(false, &ranked).unwrap();
    assert!(
        ranked_plan[0].starts_with("cluster shards=4 routing=ranked_partial k=5"),
        "got {:?}",
        ranked_plan[0]
    );

    // EXPLAIN on writes fails without touching any shard.
    assert!(client
        .explain(false, "DELETE FROM masks WHERE mask_id IN (1)")
        .is_err());
    front.shutdown();
}

#[test]
fn metrics_expositions_validate_on_both_front_ends() {
    let ids: Vec<u64> = (0..24).collect();
    let engine = Engine::new(session_over(&ids, true), ServiceConfig::new(2));
    let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.query(&filter_sql()).unwrap();
    let text = client.metrics().unwrap();
    let samples = prom::validate(&text).expect("single-node exposition validates");
    assert!(
        samples > 20,
        "expected a rich exposition, got {samples} samples"
    );
    assert!(text.contains("# TYPE masksearch_queries_completed_total counter"));
    assert!(text.contains("# TYPE masksearch_query_latency_seconds histogram"));
    handle.shutdown();

    let test = cluster(4, &ids);
    let front = CoordinatorServer::bind("127.0.0.1:0", test.coordinator.clone())
        .unwrap()
        .spawn();
    let mut client = Client::connect(front.local_addr()).unwrap();
    client.query(&filter_sql()).unwrap();
    let text = client.metrics().unwrap();
    let samples = prom::validate(&text).expect("coordinator exposition validates");
    assert!(
        samples > 10,
        "expected cluster + global counters, got {samples}"
    );
    assert!(text.contains("masksearch_cluster_shards 4"));
    assert!(text.contains("# TYPE masksearch_cluster_queries_total counter"));
    assert!(text.contains("# TYPE masksearch_scatter_requests_total counter"));
    front.shutdown();
}

#[test]
fn profiles_record_span_trees_on_both_front_ends() {
    let ids: Vec<u64> = (0..24).collect();
    let engine = Engine::new(session_over(&ids, true), ServiceConfig::new(2));
    let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let sql = filter_sql();
    client.query(&sql).unwrap();
    client.query(&sql).unwrap();
    let profiles = client.profiles(8).unwrap();
    assert!(!profiles.is_empty());
    assert!(
        profiles[0].starts_with("profile seq="),
        "got {:?}",
        profiles[0]
    );
    assert!(
        profiles[0].contains(&format!("statement={sql}")),
        "profiles carry the statement"
    );
    assert!(
        profiles
            .iter()
            .any(|l| l.trim_start().starts_with("query ")),
        "profiles carry the span tree"
    );
    handle.shutdown();

    let test = cluster(4, &ids);
    let front = CoordinatorServer::bind("127.0.0.1:0", test.coordinator.clone())
        .unwrap()
        .spawn();
    let mut client = Client::connect(front.local_addr()).unwrap();
    client.query(&sql).unwrap();
    let profiles = client.profiles(4).unwrap();
    assert!(profiles[0].starts_with("profile seq="));
    assert!(
        profiles
            .iter()
            .any(|l| l.trim_start().starts_with("cluster_query")),
        "coordinator trace root present: {profiles:?}"
    );
    let scatter = profiles
        .iter()
        .find(|l| l.trim_start().starts_with("scatter"))
        .expect("scatter span under the trace");
    assert_eq!(token_value(scatter, "shards"), Some(4));
    front.shutdown();
}

/// Blanks the digits of every `wall_us=<n>` token (the only part of a query
/// frame that varies run to run).
fn normalize_wall(frame: &str) -> String {
    let mut out = String::with_capacity(frame.len());
    let mut rest = frame;
    while let Some(i) = rest.find("wall_us=") {
        let after = &rest[i + "wall_us=".len()..];
        let digits = after.chars().take_while(char::is_ascii_digit).count();
        out.push_str(&rest[..i + "wall_us=".len()]);
        out.push('N');
        rest = &after[digits..];
    }
    out.push_str(rest);
    out
}

/// One raw request → raw frame round trip, no client-side parsing.
fn raw_frame(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    writeln!(stream, "{request}").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut frame = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            panic!("connection closed mid-frame");
        }
        frame.push_str(&line);
        if line.trim_end() == "END" {
            return frame;
        }
    }
}

#[test]
fn tracing_disabled_server_is_byte_identical_and_records_nothing() {
    let ids: Vec<u64> = (0..24).collect();
    let sql = filter_sql();
    let mut frames = Vec::new();
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for tracing in [true, false] {
        let config = ServiceConfig::new(2).tracing(tracing);
        let engine = Engine::new(session_over(&ids, true), config);
        let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
        // Warm-up so both servers answer from identical cache state.
        raw_frame(handle.local_addr(), &sql);
        frames.push(raw_frame(handle.local_addr(), &sql));
        addrs.push(handle.local_addr());
        handles.push(handle);
    }
    assert_eq!(
        normalize_wall(&frames[0]),
        normalize_wall(&frames[1]),
        "tracing must not change the wire output"
    );
    // The tracing-enabled server recorded profiles; the disabled one none.
    let mut traced = Client::connect(addrs[0]).unwrap();
    assert!(!traced.profiles(4).unwrap().is_empty());
    let mut untraced = Client::connect(addrs[1]).unwrap();
    assert!(untraced.profiles(4).unwrap().is_empty());
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn slow_query_log_counts_over_threshold_statements() {
    let ids: Vec<u64> = (0..12).collect();
    let config = ServiceConfig::new(1).slow_query(Duration::ZERO);
    let engine = Engine::new(session_over(&ids, true), config);
    assert_eq!(engine.slow_log().logged(), 0);
    engine.execute_sql(&filter_sql()).unwrap();
    assert!(
        engine.slow_log().logged() >= 1,
        "zero threshold logs every query"
    );
}

#[test]
fn shape_stats_survive_checkpoint_and_reopen() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("masksearch-obs-shape-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db_config = DbConfig::default()
        .page_size(1024)
        .chi_config(ChiConfig::new(4, 4, 8).unwrap());
    let query = Query::filter_cp_gt(
        Roi::new(0, 0, W, H).unwrap(),
        PixelRange::new(0.5, 1.0).unwrap(),
        (W * H / 2) as f64,
    );
    let shape;
    let before;
    {
        let db = MaskDb::open(&dir, db_config).unwrap();
        let session = Session::with_store_maintained_index(
            db.mask_store(),
            db.catalog(),
            session_config(true).indexing_mode(IndexingMode::Incremental),
            db.chi_store(),
        );
        let batch: Vec<(MaskRecord, Mask)> =
            (0..12).map(|i| (record_for(i), mask_for(i))).collect();
        session.insert_masks(&batch).unwrap();
        session.execute(&query).unwrap();
        session.execute(&query).unwrap();
        shape = masksearch::query::shape_key(&query, session.config());
        before = session
            .shape_stats()
            .get(&shape)
            .expect("shape recorded after execution");
        assert_eq!(before.queries, 2);
        assert!(before.sums.candidates > 0);
        db.checkpoint().unwrap();
    }
    let db = MaskDb::open(&dir, db_config).unwrap();
    let session = Session::with_store_maintained_index(
        db.mask_store(),
        db.catalog(),
        session_config(true).indexing_mode(IndexingMode::Incremental),
        db.chi_store(),
    );
    let after = session
        .shape_stats()
        .get(&shape)
        .expect("shape statistics recovered from checkpoint");
    assert_eq!(after, before);
    // Recovered aggregates keep accumulating.
    session.execute(&query).unwrap();
    assert_eq!(session.shape_stats().get(&shape).unwrap().queries, 3);
    let _ = std::fs::remove_dir_all(&dir);
}
