//! End-to-end tests of the durable mask database behind the full stack:
//! session wiring, SQL DML over TCP, concurrent readers during live
//! ingestion checked against a serial oracle, and crash-free reopen.

use masksearch::core::{ImageId, Mask, MaskId, MaskRecord, PixelRange, Roi};
use masksearch::db::{DbConfig, MaskDb};
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Query, Session, SessionConfig};
use masksearch::service::{Client, Engine, Server, ServiceConfig};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const W: u32 = 16;
const H: u32 = 16;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "masksearch-durable-e2e-{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn db_config() -> DbConfig {
    DbConfig::default()
        .page_size(1024)
        .chi_config(ChiConfig::new(4, 4, 8).unwrap())
}

fn session_config() -> SessionConfig {
    SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap()).threads(2)
}

/// Even-id masks are bright (match high-threshold queries), odd-id masks
/// are dark.
fn mask_for(id: u64) -> Mask {
    let level = if id.is_multiple_of(2) { 0.9 } else { 0.1 };
    Mask::from_fn(W, H, move |x, y| {
        (level + ((x + y + id as u32) % 5) as f32 * 0.01).min(1.0)
    })
}

fn record_for(id: u64) -> MaskRecord {
    MaskRecord::builder(MaskId::new(id))
        .image_id(ImageId::new(id / 2))
        .shape(W, H)
        .build()
}

fn bright_query() -> Query {
    Query::filter_cp_gt(
        Roi::new(0, 0, W, H).unwrap(),
        PixelRange::new(0.5, 1.0).unwrap(),
        (W * H / 2) as f64,
    )
}

/// Builds a durable-db session sharing the db's store-maintained CHI.
fn db_session(db: &MaskDb) -> Session {
    Session::with_store_maintained_index(
        db.mask_store(),
        db.catalog(),
        session_config(),
        db.chi_store(),
    )
}

/// A memory-store oracle session holding masks `0..n`.
fn oracle_session(n: u64) -> Session {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for i in 0..n {
        store.put(MaskId::new(i), &mask_for(i)).unwrap();
        catalog.insert(record_for(i));
    }
    Session::new(
        store as Arc<dyn MaskStore>,
        catalog,
        session_config().indexing_mode(IndexingMode::Eager),
    )
    .unwrap()
}

#[test]
fn durable_session_matches_memory_oracle_and_survives_reopen() {
    let dir = temp_dir("oracle");
    {
        let db = MaskDb::open(&dir, db_config()).unwrap();
        let session = db_session(&db);
        let batch: Vec<(MaskRecord, Mask)> =
            (0..12).map(|i| (record_for(i), mask_for(i))).collect();
        session.insert_masks(&batch).unwrap();

        let expected = oracle_session(12).execute(&bright_query()).unwrap();
        let got = session.execute(&bright_query()).unwrap();
        assert_eq!(got.rows, expected.rows);

        // Deletes propagate through store, catalog, and CHI.
        session
            .delete_masks(&[MaskId::new(0), MaskId::new(2)])
            .unwrap();
        let got = session.execute(&bright_query()).unwrap();
        let expected_ids: Vec<MaskId> = expected
            .mask_ids()
            .into_iter()
            .filter(|id| id.raw() != 0 && id.raw() != 2)
            .collect();
        assert_eq!(got.mask_ids(), expected_ids);
        db.checkpoint().unwrap();
    }
    // Reopen: recovered store, catalog, and CHI answer identically.
    let db = MaskDb::open(&dir, db_config()).unwrap();
    assert_eq!(db.catalog().len(), 10);
    let session = db_session(&db);
    let got = session.execute(&bright_query()).unwrap();
    let expected_ids: Vec<MaskId> = oracle_session(12)
        .execute(&bright_query())
        .unwrap()
        .mask_ids()
        .into_iter()
        .filter(|id| id.raw() != 0 && id.raw() != 2)
        .collect();
    assert_eq!(got.mask_ids(), expected_ids);
    // Filtering really used the recovered CHI: some candidates were pruned
    // or accepted without loading.
    assert!(got.stats.pruned + got.stats.accepted_without_load > 0);
    // Verification-kernel ingest invariant: after inserts, deletes, and a
    // checkpoint + reopen, every surviving mask's tile summaries match its
    // pixels exactly.
    assert_eq!(db.verify_tile_summaries().unwrap(), 10);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance scenario: TCP clients keep querying while another TCP
/// client streams INSERT batches. Every result must equal the serial oracle
/// over some committed prefix of the ingestion history — readers never see
/// half a batch.
#[test]
fn concurrent_tcp_readers_match_the_serial_oracle_during_ingestion() {
    const BATCHES: u64 = 24;
    const BATCH: u64 = 4; // masks per INSERT statement

    let dir = temp_dir("concurrent");
    let db = MaskDb::open(&dir, db_config()).unwrap();
    let engine = Engine::new(db_session(&db), ServiceConfig::new(4));
    let server = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
    let addr = server.local_addr();

    let select = format!(
        "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.5, 1.0)) > {}",
        W * H / 2
    );
    let done = Arc::new(AtomicBool::new(false));

    // Readers: hammer the bright-mask query and validate every result
    // against the committed-prefix oracle.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let done = Arc::clone(&done);
        let select = select.clone();
        readers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut checked = 0u64;
            while !done.load(Ordering::Acquire) || checked == 0 {
                let response = client.query(&select).unwrap();
                let ids: Vec<u64> = response.mask_ids().iter().map(|id| id.raw()).collect();
                // Bright masks are the even ids; batches insert contiguous
                // id ranges atomically, so a valid snapshot holds exactly
                // the even ids below a batch boundary.
                assert!(
                    ids.len().is_multiple_of(BATCH as usize / 2),
                    "partial batch: {ids:?}"
                );
                let batches_seen = ids.len() as u64 / (BATCH / 2);
                assert!(batches_seen <= BATCHES);
                let expected: Vec<u64> = (0..batches_seen * BATCH)
                    .filter(|i| i.is_multiple_of(2))
                    .collect();
                assert_eq!(ids, expected, "snapshot is not a committed prefix");
                checked += 1;
            }
            client.quit().unwrap();
            checked
        }));
    }

    // Writer: stream the batches over a separate TCP connection.
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        for batch in 0..BATCHES {
            let tuples: Vec<String> = (batch * BATCH..(batch + 1) * BATCH)
                .map(|id| {
                    let mask = mask_for(id);
                    let pixels: Vec<String> = mask.data().iter().map(|v| format!("{v}")).collect();
                    format!("({id}, {}, {W}, {H}, ({}))", id / 2, pixels.join(","))
                })
                .collect();
            let insert = format!("INSERT INTO masks VALUES {}", tuples.join(", "));
            let response = client.query(&insert).unwrap();
            assert_eq!(response.summary.inserted, BATCH);
        }
        client.quit().unwrap();
    });

    writer.join().unwrap();
    done.store(true, Ordering::Release);
    let checks: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(checks > 0);

    // Final state equals the full serial oracle, and STATS reports the
    // ingestion counters.
    let mut client = Client::connect(addr).unwrap();
    let final_ids = client.query(&select).unwrap().mask_ids();
    let oracle = oracle_session(BATCHES * BATCH);
    assert_eq!(
        oracle.execute(&bright_query()).unwrap().mask_ids(),
        final_ids
    );
    let stats = client.stats().unwrap();
    assert!(
        stats.contains(&format!("inserted={}", BATCHES * BATCH)),
        "{stats}"
    );
    assert!(stats.contains("wal_bytes="), "{stats}");
    client.quit().unwrap();
    server.shutdown();

    // The whole ingested dataset survives a reopen, with tile summaries
    // consistent with the pixels for every live-ingested mask.
    let db = MaskDb::open(&dir, db_config()).unwrap();
    assert_eq!(db.catalog().len() as u64, BATCHES * BATCH);
    assert_eq!(db.verify_tile_summaries().unwrap() as u64, BATCHES * BATCH);
    let session = db_session(&db);
    assert_eq!(
        session.execute(&bright_query()).unwrap().mask_ids(),
        oracle.execute(&bright_query()).unwrap().mask_ids()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sql_deletes_over_tcp_hit_the_durable_store() {
    let dir = temp_dir("tcp-delete");
    let db = MaskDb::open(&dir, db_config()).unwrap();
    db.insert_masks(
        &(0..6)
            .map(|i| (record_for(i), mask_for(i)))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let engine = Engine::new(db_session(&db), ServiceConfig::new(2));
    let server = Server::bind("127.0.0.1:0", engine).unwrap().spawn();

    let mut client = Client::connect(server.local_addr()).unwrap();
    let response = client
        .query("DELETE FROM masks WHERE mask_id IN (0, 4)")
        .unwrap();
    assert_eq!(response.summary.deleted, 2);
    let select = format!(
        "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.5, 1.0)) > {}",
        W * H / 2
    );
    let ids = client.query(&select).unwrap().mask_ids();
    assert_eq!(ids, vec![MaskId::new(2)]);
    client.quit().unwrap();
    server.shutdown();

    // The deletes are durable.
    assert_eq!(db.catalog().len(), 4);
    drop(db);
    let db = MaskDb::open(&dir, db_config()).unwrap();
    assert!(!db.store().contains(MaskId::new(0)));
    assert!(!db.store().contains(MaskId::new(4)));
    assert_eq!(db.chi_store().len(), 4);
    assert_eq!(db.tile_store().len(), 4);
    assert_eq!(db.verify_tile_summaries().unwrap(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}
