//! The secondary-index differential oracle: every metadata-filtered query
//! shape — point equality, `IN` lists, conjunctions, ranked top-k,
//! aggregations, and pair joins with per-side bindings — returns rows
//! **byte-identical** with indexes on and off, on a single-node session and
//! through a live 4-shard cluster. The indexed runs must also *prove* they
//! probed indexes instead of scanning (`index_probes` / `planner_index_on`),
//! so the equality is between two genuinely different access paths.

use masksearch::cluster::{ClusterConfig, Coordinator, CoordinatorServer};
use masksearch::core::{ImageId, Label, Mask, MaskId, MaskRecord, MaskType, ModelId};
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Session, SessionConfig};
use masksearch::service::{Client, Engine, Server, ServiceConfig};
use masksearch::sql::{compile, compile_statement, Statement};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use std::sync::Arc;

const W: u32 = 8;
const H: u32 = 8;

/// Deterministic per-id metadata: three models, four mask types, five
/// labels — enough cardinality that every filter below is selective enough
/// for the planner's index gate, and pair-join sides bind different masks.
fn model_of(id: u64) -> u64 {
    id % 3 + 1
}

fn type_code_of(id: u64) -> u64 {
    id % 4 + 1 // from_code(0) is Other(0) which re-encodes as 16; skip it
}

fn label_of(id: u64) -> u64 {
    id % 5
}

/// Deterministic per-pixel noise so CP thresholds split the data non-trivially.
fn mask_for(id: u64) -> Mask {
    let mut state = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    Mask::from_fn(W, H, move |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f32) / (1u64 << 24) as f32
    })
}

fn session_config() -> SessionConfig {
    SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
        .threads(2)
        .indexing_mode(IndexingMode::Eager)
}

const CREATE_INDEXES: [&str; 3] = [
    "CREATE INDEX by_model ON masks (model_id)",
    "CREATE INDEX by_type ON masks (mask_type)",
    "CREATE INDEX by_label ON masks (predicted_label)",
];

const DROP_INDEXES: [&str; 3] = [
    "DROP INDEX by_model",
    "DROP INDEX by_type",
    "DROP INDEX by_label",
];

fn apply_sql(session: &Session, sql: &str) {
    match compile_statement(sql).unwrap() {
        Statement::Mutation(m) => {
            session.apply(&m).unwrap();
        }
        _ => unreachable!("{sql} must compile to a mutation"),
    }
}

/// A session over the given mask ids with the deterministic metadata
/// scheme, optionally with all three secondary indexes defined (via the
/// same SQL DDL the cluster test broadcasts).
fn session_over(ids: &[u64], indexed: bool) -> Session {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for &id in ids {
        store.put(MaskId::new(id), &mask_for(id)).unwrap();
        catalog.insert(
            MaskRecord::builder(MaskId::new(id))
                .image_id(ImageId::new(id / 2))
                .model_id(ModelId::new(model_of(id)))
                .mask_type(MaskType::from_code(type_code_of(id) as u16))
                .predicted_label(Label::new(label_of(id)))
                .shape(W, H)
                .build(),
        );
    }
    let session = Session::new(store as Arc<dyn MaskStore>, catalog, session_config()).unwrap();
    if indexed {
        for sql in CREATE_INDEXES {
            apply_sql(&session, sql);
        }
    }
    session
}

/// Every metadata-filtered query shape the planner can route through a
/// secondary index, each composed with CP work so the filter feeds a real
/// verification stage.
fn query_suite() -> Vec<String> {
    vec![
        // Point equality on each indexable column.
        "SELECT mask_id FROM masks WHERE CP(mask, full, (0.5, 1.0)) > 30 AND model_id = 1"
            .to_string(),
        format!(
            "SELECT mask_id FROM masks WHERE mask_type IN (1, 3) \
             AND CP(mask, (0, 0, 4, {H}), (0.25, 1.0)) > 22"
        ),
        // Ranked top-k over an indexed filter.
        "SELECT mask_id, CP(mask, full, (0.6, 1.0)) AS s FROM masks \
         WHERE predicted_label = 2 ORDER BY s DESC LIMIT 5"
            .to_string(),
        // Conjunction across two indexed columns: the planner picks the
        // cheaper posting list and re-verifies the full predicate.
        "SELECT mask_id FROM masks WHERE model_id = 3 AND predicted_label IN (1, 4) \
         AND CP(mask, full, (0.4, 1.0)) > 36"
            .to_string(),
        // Aggregations over indexed filters.
        "SELECT image_id, AVG(CP(mask, full, (0.5, 1.0))) AS s FROM masks \
         WHERE model_id = 2 GROUP BY image_id"
            .to_string(),
        "SELECT image_id, MAX(CP(mask, full, (0.5, 1.0))) AS s FROM masks \
         WHERE mask_type IN (2) GROUP BY image_id ORDER BY s DESC LIMIT 4"
            .to_string(),
        // Pair joins with per-side metadata bindings.
        "SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS s \
         FROM masks a JOIN masks b ON a.image_id = b.image_id \
         WHERE a.model_id = 1 AND b.model_id = 2 ORDER BY s DESC LIMIT 6"
            .to_string(),
        "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
         WHERE a.model_id = 2 AND b.model_id = 3 \
         AND CP(UNION(a.mask, b.mask), full, (0.5, 1.0)) > 46"
            .to_string(),
    ]
}

#[test]
fn metadata_shapes_byte_identical_with_indexes_on_and_off() {
    let ids: Vec<u64> = (0..96).collect();
    let indexed = session_over(&ids, true);
    let plain = session_over(&ids, false);

    let (mut probes_on, mut planned_on, mut probes_off, mut scans_off) = (0u64, 0u64, 0u64, 0u64);
    // Two repetitions: warmed caches and matured shape statistics must
    // never change rows either.
    for rep in 0..2 {
        for sql in query_suite() {
            let query = compile(&sql).unwrap();
            let a = indexed.execute(&query).unwrap();
            let b = plain.execute(&query).unwrap();
            assert_eq!(a.rows, b.rows, "[rep {rep}] divergence for {sql}");
            probes_on += a.stats.index_probes;
            planned_on += a.stats.planner_index_on;
            probes_off += b.stats.index_probes;
            scans_off += b.stats.planner_index_off;
        }
    }
    // The equality above compared two genuinely different access paths.
    assert!(probes_on > 0, "indexed session never probed an index");
    assert!(planned_on > 0, "planner never chose the index path");
    assert_eq!(probes_off, 0, "unindexed session probed an index");
    assert!(scans_off > 0, "unindexed session never scanned a filter");

    // Dropping the indexes flips the indexed session onto the scan path —
    // still byte-identical, and provably probe-free.
    for sql in DROP_INDEXES {
        apply_sql(&indexed, sql);
    }
    for sql in query_suite() {
        let query = compile(&sql).unwrap();
        let a = indexed.execute(&query).unwrap();
        let b = plain.execute(&query).unwrap();
        assert_eq!(a.rows, b.rows, "[after DROP INDEX] divergence for {sql}");
        assert_eq!(a.stats.index_probes, 0, "probe after DROP INDEX for {sql}");
    }
}

fn insert_sql(ids: std::ops::Range<u64>) -> String {
    let tuples: Vec<String> = ids
        .map(|id| {
            let mask = mask_for(id);
            let pixels: Vec<String> = mask.data().iter().map(|v| format!("{v}")).collect();
            format!("({id}, {}, {W}, {H}, ({}))", id / 2, pixels.join(","))
        })
        .collect();
    format!("INSERT INTO masks VALUES {}", tuples.join(", "))
}

fn stat_value(stats: &str, key: &str) -> u64 {
    stats
        .split_ascii_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("{key} missing from {stats}"))
        .parse()
        .unwrap()
}

/// The same suite through a live 4-shard cluster: metadata attached by
/// routed `UPDATE`s (owner-index resolution, no `LOOKUP` broadcasts),
/// indexes defined by broadcast DDL, rows byte-identical to both the
/// unindexed cluster and a single-node oracle.
#[test]
fn four_shard_cluster_indexed_metadata_shapes_byte_identical() {
    const N: u64 = 64;
    let shards: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::new(MemoryMaskStore::for_tests());
            let session = Session::new(
                store as Arc<dyn MaskStore>,
                Catalog::new(),
                session_config(),
            )
            .unwrap();
            Server::bind("127.0.0.1:0", Engine::new(session, ServiceConfig::new(2)))
                .unwrap()
                .spawn()
        })
        .collect();
    let coordinator = Coordinator::connect(ClusterConfig::new(
        shards.iter().map(|h| h.local_addr().to_string()).collect(),
    ))
    .unwrap();
    let front = CoordinatorServer::bind("127.0.0.1:0", coordinator.clone())
        .unwrap()
        .spawn();
    let mut client = Client::connect(front.local_addr()).unwrap();

    // Ingest metadata-free tuples, then attach the metadata scheme through
    // routed UPDATEs — each one resolved by the coordinator's owner index.
    for batch in 0..N / 16 {
        let response = client
            .query(&insert_sql(batch * 16..(batch + 1) * 16))
            .unwrap();
        assert_eq!(response.summary.inserted, 16);
    }
    for id in 0..N {
        let response = client
            .query(&format!(
                "UPDATE masks SET model_id = {}, mask_type = {}, predicted_label = {} \
                 WHERE mask_id = {id}",
                model_of(id),
                type_code_of(id),
                label_of(id)
            ))
            .unwrap();
        assert_eq!(response.summary.updated, 1, "UPDATE {id} did not apply");
    }
    // Deletes resolve from the owner index too.
    let doomed = [5u64, 17, 40, 63];
    let response = client
        .query("DELETE FROM masks WHERE mask_id IN (5, 17, 40, 63)")
        .unwrap();
    assert_eq!(response.summary.deleted, doomed.len() as u64);

    let ids: Vec<u64> = (0..N).filter(|id| !doomed.contains(id)).collect();
    let oracle = session_over(&ids, false);
    let suite = query_suite();

    // Indexes off: the cluster equals the single-node oracle.
    let baseline: Vec<_> = suite
        .iter()
        .map(|sql| {
            let rows = client.query(sql).unwrap().rows;
            let expected = oracle.execute(&compile(sql).unwrap()).unwrap().rows;
            assert_eq!(
                rows, expected,
                "[cluster, indexes off] divergence for {sql}"
            );
            rows
        })
        .collect();

    // Broadcast the DDL, then every shape must stay byte-identical.
    for sql in CREATE_INDEXES {
        client.query(sql).unwrap();
    }
    for (sql, rows) in suite.iter().zip(&baseline) {
        assert_eq!(
            &client.query(sql).unwrap().rows,
            rows,
            "[cluster, indexes on] divergence for {sql}"
        );
    }

    // The shards really probed: the aggregated STATS line sums shard-side
    // index counters.
    let stats = client.stats().unwrap();
    assert!(stat_value(&stats, "index_probes") > 0, "{stats}");
    assert!(stat_value(&stats, "planner_index_on") > 0, "{stats}");

    // Steady-state writes never broadcast LOOKUP: the owner index resolved
    // every UPDATE and DELETE target.
    let metrics = coordinator.metrics();
    assert_eq!(metrics.lookup_broadcasts, 0, "{metrics:?}");
    assert!(
        metrics.owner_resolutions >= N + doomed.len() as u64,
        "{metrics:?}"
    );
    assert_eq!(metrics.masks_updated, N, "{metrics:?}");
    assert_eq!(metrics.masks_deleted, doomed.len() as u64, "{metrics:?}");

    client.quit().unwrap();
    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}
