//! Differential oracle for multi-mask (pair) queries: every composed query —
//! `CP` over ∩ / ∪ / △ in WHERE, mixed single-side terms, and `IOU` top-k —
//! executed with CHI pruning and the composed tile kernel **on** must be
//! byte-identical (rows, values, ordering, tie-breaks) to the
//! load-everything [`BruteForce`] reference scan, in every indexing mode and
//! with the kernel on or off. The SQL surface is exercised through
//! `compile_statement` so the parser → lowering → executor path is covered
//! end to end.

use masksearch::baselines::BruteForce;
use masksearch::core::{ImageId, Mask, MaskId, MaskOp, MaskRecord, ModelId, PixelRange, Roi};
use masksearch::index::ChiConfig;
use masksearch::query::{
    Expr, IndexingMode, MaskJoin, Order, Predicate, Query, ResultRow, RoiSpec, Selection, Session,
    SessionConfig, TermSource,
};
use masksearch::sql::{compile_statement, Statement};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use std::sync::Arc;

const W: u32 = 48;
const H: u32 = 40;

/// Two models' masks per image, with deliberate irregularities:
/// * every 5th image lacks the model-2 mask (must be skipped),
/// * every 7th image has *two* model-1 masks (smallest id must bind),
/// * every 3rd image's masks are identical (CP(DIFF) = 0 / IoU = 1 ties),
/// * image 11 has empty binarisations at 0.5 (IoU = 0/0 = NaN).
fn build_db(n: u64) -> (Arc<MemoryMaskStore>, Catalog) {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    let mut next_id = 0u64;
    let mut add = |store: &Arc<MemoryMaskStore>,
                   catalog: &mut Catalog,
                   image: u64,
                   model: u64,
                   mask: &Mask| {
        let id = MaskId::new(next_id);
        next_id += 1;
        store.put(id, mask).unwrap();
        catalog.insert(
            MaskRecord::builder(id)
                .image_id(ImageId::new(image))
                .model_id(ModelId::new(model))
                .shape(W, H)
                .object_box(Roi::new(8, 8, 40, 32).unwrap())
                .build(),
        );
    };
    for i in 0..n {
        let blob = |cx: f32, cy: f32, peak: f32| {
            Mask::from_fn(W, H, move |x, y| {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                (peak * (-(dx * dx + dy * dy) / 50.0).exp()).min(0.999)
            })
        };
        let peak = if i == 11 { 0.3 } else { 0.95 }; // image 11: nothing ≥ 0.5
        let a = blob(20.0, 20.0, peak);
        let b = if i % 3 == 0 {
            a.clone()
        } else {
            blob(20.0 + (i % 9) as f32, 17.0, peak)
        };
        add(&store, &mut catalog, i, 1, &a);
        if i % 7 == 0 {
            // A second, larger-id model-1 mask that must NOT bind.
            add(&store, &mut catalog, i, 1, &blob(5.0, 5.0, 0.9));
        }
        if i % 5 != 0 {
            add(&store, &mut catalog, i, 2, &b);
        }
    }
    (store, catalog)
}

fn join() -> MaskJoin {
    MaskJoin::new(
        Selection::all().with_model(ModelId::new(1)),
        Selection::all().with_model(ModelId::new(2)),
    )
}

fn oracle_rows(store: &MemoryMaskStore, catalog: &Catalog, query: &Query) -> Vec<ResultRow> {
    let mut bf = BruteForce::new(catalog, query);
    for id in store.ids() {
        let mask = store.get(id).unwrap();
        bf.consume(id, &mask).unwrap();
    }
    bf.finish().unwrap()
}

fn queries() -> Vec<(String, Query)> {
    let roi = Roi::new(4, 4, 44, 36).unwrap();
    let range = PixelRange::new(0.5, 1.0).unwrap();
    let mut queries = Vec::new();
    for op in [MaskOp::Intersect, MaskOp::Union, MaskOp::Diff] {
        for threshold in [0.0, 10.0, 120.0, 5000.0] {
            queries.push((
                format!("filter {op} > {threshold}"),
                Query::pair_filter(
                    join(),
                    Predicate::gt(
                        Expr::cp_composed(op, RoiSpec::Constant(roi), range),
                        threshold,
                    ),
                ),
            ));
        }
        for (k, order) in [(1, Order::Desc), (6, Order::Asc), (100, Order::Desc)] {
            queries.push((
                format!("topk {op} k={k} {order:?}"),
                Query::pair_top_k(
                    join(),
                    Expr::cp_composed(op, RoiSpec::FullMask, range),
                    k,
                    order,
                ),
            ));
        }
    }
    // IoU top-k in both directions (NaN image 11 must rank last under both).
    for order in [Order::Asc, Order::Desc] {
        queries.push((
            format!("iou topk {order:?}"),
            Query::pair_top_k(join(), Expr::iou(RoiSpec::FullMask, range), 8, order),
        ));
    }
    // Mixed side and composed terms, with object-box ROIs.
    queries.push((
        "mixed sides".to_string(),
        Query::pair_filter(
            join(),
            Predicate::gt(
                Expr::cp_composed(MaskOp::Diff, RoiSpec::ObjectBox, range).sub(
                    Expr::cp_side(TermSource::Left, RoiSpec::ObjectBox, range)
                        .mul(Expr::Const(0.25)),
                ),
                0.0,
            )
            .and(Predicate::gt(
                Expr::cp_side(TermSource::Right, RoiSpec::FullMask, range),
                1.0,
            )),
        ),
    ));
    // Outer selection restricting the image set.
    queries.push((
        "outer selection".to_string(),
        Query::pair_filter(
            join(),
            Predicate::ge(
                Expr::cp_composed(MaskOp::Union, RoiSpec::FullMask, range),
                1.0,
            ),
        )
        .with_selection(Selection::all().with_image_ids((0..10).map(ImageId::new).collect())),
    ));
    queries
}

#[test]
fn pair_queries_match_the_load_everything_oracle() {
    let (store, catalog) = build_db(30);
    for mode in [
        IndexingMode::Eager,
        IndexingMode::Incremental,
        IndexingMode::Disabled,
    ] {
        for kernel in [true, false] {
            let session = Session::new(
                Arc::clone(&store) as Arc<dyn MaskStore>,
                catalog.clone(),
                SessionConfig::new(ChiConfig::new(8, 8, 16).unwrap())
                    .threads(3)
                    .indexing_mode(mode)
                    .tiled_kernel(kernel),
            )
            .unwrap();
            for (name, query) in queries() {
                let expected = oracle_rows(&store, &catalog, &query);
                let got = session.execute(&query).unwrap();
                assert_eq!(
                    got.rows, expected,
                    "{name} diverged (mode {mode:?}, kernel {kernel})"
                );
            }
        }
    }
}

#[test]
fn pair_queries_prune_without_losing_exactness() {
    // Eager + kernel on: the composed bound algebra must actually avoid
    // loading masks on a selective predicate while staying byte-identical.
    let (store, catalog) = build_db(40);
    let session = Session::new(
        Arc::clone(&store) as Arc<dyn MaskStore>,
        catalog.clone(),
        SessionConfig::new(ChiConfig::new(8, 8, 16).unwrap())
            .threads(2)
            .indexing_mode(IndexingMode::Eager),
    )
    .unwrap();
    store.io_stats().reset();
    let range = PixelRange::new(0.5, 1.0).unwrap();
    // Far above any possible union count of two concentrated blobs.
    let query = Query::pair_filter(
        join(),
        Predicate::gt(
            Expr::cp_composed(MaskOp::Diff, RoiSpec::FullMask, range),
            1500.0,
        ),
    );
    let expected = oracle_rows(&store, &catalog, &query);
    let got = session.execute(&query).unwrap();
    assert_eq!(got.rows, expected);
    assert!(expected.is_empty());
    assert_eq!(
        got.stats.masks_loaded, 0,
        "composed bounds should prune every pair: {:?}",
        got.stats
    );
    assert!(got.stats.pairs_bound > 0);
}

#[test]
fn sql_pair_statements_execute_end_to_end() {
    let (store, catalog) = build_db(24);
    let session = Session::new(
        Arc::clone(&store) as Arc<dyn MaskStore>,
        catalog.clone(),
        SessionConfig::new(ChiConfig::new(8, 8, 16).unwrap())
            .threads(2)
            .indexing_mode(IndexingMode::Eager),
    )
    .unwrap();
    let statements = [
        // Model-regression audit: images where v2 disagrees most with v1.
        "SELECT image_id, CP(DIFF(a.mask, b.mask), full, (0.5, 1.0)) AS d \
         FROM masks a JOIN masks b ON a.image_id = b.image_id \
         WHERE a.model_id = 1 AND b.model_id = 2 ORDER BY d DESC LIMIT 10",
        // Agreement filter over the object box.
        "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
         WHERE a.model_id = 1 AND b.model_id = 2 \
         AND CP(INTERSECT(a.mask, b.mask), object, (0.5, 1.0)) > 50",
        // IoU ranking ascending (most disagreement first).
        "SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS agreement \
         FROM masks a JOIN masks b ON a.image_id = b.image_id \
         WHERE a.model_id = 1 AND b.model_id = 2 ORDER BY agreement ASC LIMIT 6",
    ];
    for sql in statements {
        let Statement::Query(query) = compile_statement(sql).unwrap() else {
            panic!("expected a query for {sql}");
        };
        let expected = oracle_rows(&store, &catalog, &query);
        let got = session.execute(&query).unwrap();
        assert_eq!(got.rows, expected, "SQL diverged: {sql}");
        assert!(!got.rows.is_empty(), "degenerate (empty) SQL case: {sql}");
    }
}
