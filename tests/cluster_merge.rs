//! Property tests of partition-merge semantics: executing any query over an
//! arbitrary image-respecting partition of the catalog and merging the
//! partial outputs is **identical** to single-node `Session` execution —
//! rows, values, and ordering (including ranked tie-breaking) — for
//! aggregation, filter, and top-k query shapes.
//!
//! The partition is arbitrary per case: each image is assigned to a random
//! shard (shards may be empty), which is exactly the family of partitions a
//! `ShardMap` can produce. Ranked queries run through the same distributed
//! threshold driver the coordinator uses, so the bound/refinement logic is
//! covered without any networking.

use masksearch::cluster::distributed_topk;
use masksearch::core::{
    ImageId, Mask, MaskAgg, MaskId, MaskOp, MaskRecord, ModelId, PixelRange, Roi,
};
use masksearch::index::ChiConfig;
use masksearch::query::merge;
use masksearch::query::{
    CmpOp, CpTerm, Expr, IndexingMode, MaskJoin, Order, Predicate, Query, RoiSpec, ScalarAgg,
    Selection, Session, SessionConfig,
};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use proptest::prelude::*;
use std::sync::Arc;

const W: u32 = 16;
const H: u32 = 16;

/// Deterministic pseudo-random mask. Odd-id masks duplicate their even
/// sibling every third image, seeding value ties that exercise the ranked
/// id tie-break across partitions.
fn mask_for(id: u64, seed: u64) -> Mask {
    let image = id / 2;
    let key = if id % 2 == 1 && (image + seed).is_multiple_of(3) {
        id - 1
    } else {
        id
    };
    let mut state = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed) | 1;
    Mask::from_fn(W, H, move |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f32) / (1u64 << 24) as f32
    })
}

fn session_over(mask_ids: &[u64], seed: u64) -> Session {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for &id in mask_ids {
        store.put(MaskId::new(id), &mask_for(id, seed)).unwrap();
        catalog.insert(
            MaskRecord::builder(MaskId::new(id))
                .image_id(ImageId::new(id / 2))
                .model_id(ModelId::new(id % 2 + 1))
                .shape(W, H)
                .object_box(Roi::new(2, 2, 12, 14).unwrap())
                .build(),
        );
    }
    Session::new(
        store as Arc<dyn MaskStore>,
        catalog,
        SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
            .threads(1)
            .indexing_mode(IndexingMode::Eager),
    )
    .unwrap()
}

/// Builds the single-node oracle and the partition's shard sessions from an
/// image → shard assignment (2 masks per image).
fn build(assignment: &[usize], seed: u64) -> (Session, Vec<Session>) {
    let shards = assignment.iter().copied().max().unwrap_or(0) + 1;
    let all: Vec<u64> = (0..assignment.len() as u64 * 2).collect();
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for &id in &all {
        per_shard[assignment[(id / 2) as usize]].push(id);
    }
    (
        session_over(&all, seed),
        per_shard
            .iter()
            .map(|ids| session_over(ids, seed))
            .collect(),
    )
}

fn assert_unordered_merges(oracle: &Session, shards: &[Session], query: &Query) {
    let expected = oracle.execute(query).unwrap();
    let partials: Vec<_> = shards.iter().map(|s| s.execute(query).unwrap()).collect();
    let merged = merge::merge_unordered(partials);
    assert_eq!(merged.rows, expected.rows, "unordered merge diverged");
}

fn assert_ranked_merges(
    oracle: &Session,
    shards: &[Session],
    query: &Query,
    k: usize,
    order: Order,
) {
    let expected = oracle.execute(query).unwrap();
    // Both planner modes — threshold refinement and single-round — must
    // reproduce single-node rows exactly.
    for single_round in [false, true] {
        let run = distributed_topk::<std::convert::Infallible>(
            k,
            order,
            shards.len(),
            single_round,
            |requests| {
                Ok(requests
                    .iter()
                    .map(|&(shard, k_shard)| {
                        shards[shard]
                            .execute_topk_partial(query, Some(k_shard))
                            .unwrap()
                    })
                    .collect())
            },
        )
        .unwrap();
        assert_eq!(
            run.output.rows, expected.rows,
            "ranked merge diverged (single_round={single_round})"
        );
        if single_round {
            assert_eq!(run.rounds, 1, "single-round mode refined");
        }
    }
}

fn range(lo: f32, hi: f32) -> PixelRange {
    PixelRange::new(lo, hi).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partitioned_execution_merges_to_single_node_results(
        assignment in proptest::collection::vec(0usize..4, 3..14),
        seed in any::<u64>(),
        k in 1usize..9,
        threshold_steps in 0u32..8,
        desc in any::<bool>(),
    ) {
        let (oracle, shards) = build(&assignment, seed);
        let order = if desc { Order::Desc } else { Order::Asc };
        let roi = Roi::new(1, 1, 13, 15).unwrap();
        let threshold = f64::from(threshold_steps) * (W * H) as f64 / 16.0;

        // Filter.
        let filter = Query::filter_cp_gt(roi, range(0.5, 1.0), threshold);
        assert_unordered_merges(&oracle, &shards, &filter);
        let filter_lt = Query::filter_cp_lt(roi, range(0.0, 0.4), threshold);
        assert_unordered_merges(&oracle, &shards, &filter_lt);

        // Plain aggregation (every group, exact values).
        let avg = Query::aggregate(Expr::cp(roi, range(0.5, 1.0)), ScalarAgg::Avg);
        assert_unordered_merges(&oracle, &shards, &avg);

        // HAVING aggregation (bound-accepted groups keep their None values
        // on both sides because shard and oracle share CHI config + eager
        // indexing).
        let having = Query::aggregate(Expr::cp(roi, range(0.6, 1.0)), ScalarAgg::Sum)
            .with_having(CmpOp::Gt, threshold);
        assert_unordered_merges(&oracle, &shards, &having);

        // Mask-level top-k, plus the ratio form (NaN-prone denominator).
        let topk = Query::top_k_cp(roi, range(0.5, 1.0), k, order);
        assert_ranked_merges(&oracle, &shards, &topk, k, order);
        let ratio = Query::top_k(
            Expr::cp(roi, range(0.8, 1.0)).div(Expr::cp_full(range(0.8, 1.0))),
            k,
            order,
        );
        assert_ranked_merges(&oracle, &shards, &ratio, k, order);

        // Grouped top-k (scalar aggregate) and mask-aggregation top-k.
        let grouped = Query::aggregate(Expr::cp(roi, range(0.5, 1.0)), ScalarAgg::Max)
            .with_group_top_k(k, order);
        assert_ranked_merges(&oracle, &shards, &grouped, k, order);
        let mask_agg = Query::mask_aggregate(
            MaskAgg::IntersectThreshold { threshold: 0.5 },
            CpTerm::constant_roi(roi, range(0.5, 1.0)),
        )
        .with_group_top_k(k, order);
        assert_ranked_merges(&oracle, &shards, &mask_agg, k, order);

        // Pair (multi-mask) shapes: model-1 vs model-2 per image. The
        // every-third-image duplicate siblings make CP(DIFF) = 0 ties, so
        // the ranked merge's image-id tie-break is exercised too.
        let join = MaskJoin::new(
            Selection::all().with_model(ModelId::new(1)),
            Selection::all().with_model(ModelId::new(2)),
        );
        let pair_filter = Query::pair_filter(
            join.clone(),
            Predicate::gt(
                Expr::cp_composed(MaskOp::Diff, RoiSpec::Constant(roi), range(0.5, 1.0)),
                threshold,
            ),
        );
        assert_unordered_merges(&oracle, &shards, &pair_filter);
        let pair_union = Query::pair_filter(
            join.clone(),
            Predicate::lt(
                Expr::cp_composed(MaskOp::Union, RoiSpec::FullMask, range(0.5, 1.0)),
                threshold,
            ),
        );
        assert_unordered_merges(&oracle, &shards, &pair_union);
        let pair_iou = Query::pair_top_k(join.clone(), Expr::iou(RoiSpec::FullMask, range(0.5, 1.0)), k, order);
        assert_ranked_merges(&oracle, &shards, &pair_iou, k, order);
        let pair_intersect_topk = Query::pair_top_k(
            join,
            Expr::cp_composed(MaskOp::Intersect, RoiSpec::Constant(roi), range(0.5, 1.0)),
            k,
            order,
        );
        assert_ranked_merges(&oracle, &shards, &pair_intersect_topk, k, order);

        // Mask-aggregation with HAVING merges unordered.
        let mask_agg_having = Query::mask_aggregate(
            MaskAgg::UnionThreshold { threshold: 0.6 },
            CpTerm::constant_roi(roi, range(0.5, 1.0)),
        )
        .with_having(CmpOp::Lt, threshold);
        assert_unordered_merges(&oracle, &shards, &mask_agg_having);
    }
}
