//! Property tests of the v6 multiplexed wire framing: the tagged-frame
//! reader must never panic on arbitrary bytes, must never mis-attribute a
//! frame to the wrong tag under interleaving or duplication, and must
//! reject torn frames instead of inventing content.

use masksearch::service::protocol::{self, Frame};
use masksearch::service::ServiceError;
use proptest::prelude::*;

/// The frame kinds a v6 server can answer a tagged request with.
#[derive(Debug, Clone, Copy)]
enum FrameKind {
    Rows,
    Error,
    Plan,
    Record,
}

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    (0u8..4).prop_map(|k| match k {
        0 => FrameKind::Rows,
        1 => FrameKind::Error,
        2 => FrameKind::Plan,
        _ => FrameKind::Record,
    })
}

/// Renders one tagged frame whose payload encodes its own tag, so a reader
/// that mixes frames up is caught by content, not just by bookkeeping.
fn render_frame(tag: u64, kind: FrameKind) -> Vec<u8> {
    match kind {
        FrameKind::Rows => format!("@{tag} OK 2\nmask {tag}\nimage {tag} 0.5\nEND\n"),
        FrameKind::Error => format!("@{tag} ERR boom for {tag}\nEND\n"),
        FrameKind::Plan => format!("@{tag} PLAN 2\nFilter tag={tag}\n  Scan\nEND\n"),
        FrameKind::Record => {
            format!("@{tag} RECORD active=0 path=- records={tag} bytes=0 dropped=0\nEND\n")
        }
    }
    .into_bytes()
}

/// Asserts a parsed frame carries the payload rendered for `tag`.
fn assert_payload_matches(tag: u64, kind: FrameKind, result: Result<Frame, ServiceError>) {
    match (kind, result) {
        (FrameKind::Rows, Ok(Frame::Rows(response))) => {
            assert_eq!(response.summary.rows, 2);
            assert_eq!(
                response.mask_ids(),
                vec![masksearch::core::MaskId::new(tag)],
                "rows frame mis-routed"
            );
        }
        (FrameKind::Error, Err(ServiceError::Remote(msg))) => {
            assert_eq!(msg, format!("boom for {tag}"), "error frame mis-routed");
        }
        (FrameKind::Plan, Ok(Frame::Plan(lines))) => {
            assert_eq!(
                lines[0],
                format!("Filter tag={tag}"),
                "plan frame mis-routed"
            );
        }
        (FrameKind::Record, Ok(Frame::Control(line))) => {
            assert!(
                line.contains(&format!("records={tag}")),
                "control frame mis-routed: {line}"
            );
        }
        (kind, other) => panic!("frame kind {kind:?} parsed as {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the reader; it consumes input and
    /// terminates with either parsed frames or an error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = &bytes[..];
        for _ in 0..bytes.len() + 1 {
            match protocol::read_tagged_frame(&mut reader) {
                Ok(_) => continue,
                Err(_) => break,
            }
        }
    }

    /// Mostly-line-shaped printable garbage (the adversarial case for a
    /// line protocol: fake headers, fake tags, fake counts) never panics.
    #[test]
    fn line_shaped_garbage_never_panics(raw in prop::collection::vec(any::<u8>(), 0..512)) {
        // Map bytes onto printable ASCII with occasional newlines, so the
        // stream parses as plausible-looking header lines.
        let bytes: Vec<u8> = raw
            .iter()
            .map(|&b| {
                let v = b % 97;
                if v == 96 {
                    b'\n'
                } else {
                    b' ' + v
                }
            })
            .collect();
        let mut reader = &bytes[..];
        for _ in 0..bytes.len() + 1 {
            match protocol::read_tagged_frame(&mut reader) {
                Ok(_) => continue,
                Err(_) => break,
            }
        }
    }

    /// Frames interleaved in arbitrary completion order — with arbitrary
    /// duplication — always come back attributed to their own tag, with
    /// their own payload.
    #[test]
    fn interleaved_and_duplicated_frames_never_misroute(
        kinds in prop::collection::vec(arb_kind(), 1..12),
        order in prop::collection::vec(any::<usize>(), 1..24),
    ) {
        // `order` picks frames with replacement: out-of-order AND repeated.
        let tagged: Vec<(u64, FrameKind)> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| (i as u64 + 1, k))
            .collect();
        let mut stream = Vec::new();
        let mut expect = Vec::new();
        for pick in &order {
            let (tag, kind) = tagged[pick % tagged.len()];
            stream.extend_from_slice(&render_frame(tag, kind));
            expect.push((tag, kind));
        }
        let mut reader = &stream[..];
        for (tag, kind) in expect {
            let (got_tag, result) = protocol::read_tagged_frame(&mut reader)
                .expect("well-formed frame stream");
            prop_assert_eq!(got_tag, Some(tag));
            assert_payload_matches(tag, kind, result);
        }
    }

    /// A torn (truncated) frame is rejected or — when the tear happens to
    /// fall at a frame boundary — parsed *identically* to the original;
    /// the reader never delivers altered content under a valid tag.
    #[test]
    fn torn_frames_never_deliver_altered_content(
        tag in 1u64..1_000_000,
        kind in arb_kind(),
        cut in any::<usize>(),
    ) {
        let full = render_frame(tag, kind);
        let cut = cut % full.len();
        let mut reader = &full[..cut];
        // The only acceptable success is the complete frame: content
        // identical to what the writer rendered. (This happens when only
        // the trailing newline of END was torn off.) Any error is fine.
        if let Ok((got_tag, result)) = protocol::read_tagged_frame(&mut reader) {
            prop_assert_eq!(got_tag, Some(tag));
            assert_payload_matches(tag, kind, result);
        }
    }
}
