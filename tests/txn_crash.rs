//! Torn-transaction torture test: a `BEGIN … COMMIT` script spanning
//! INSERT, UPDATE, and DELETE lands in **one** WAL commit frame, so killing
//! the log at *every* byte boundary recovers either none or all of each
//! transaction — never an intra-transaction state.

use masksearch::core::{Mask, MaskId};
use masksearch::db::{DbConfig, DurableMaskStore, MaskDb, CHI_FILE, DB_FILE, TILES_FILE, WAL_FILE};
use masksearch::index::ChiConfig;
use masksearch::query::{Mutation, Session, SessionConfig};
use masksearch::sql::Statement;
use masksearch::storage::MaskStore;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

const W: u32 = 4;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "masksearch-txn-crash-{}-{}",
        name,
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config() -> DbConfig {
    DbConfig::default()
        .page_size(128)
        .pool_pages(64)
        .chi_config(ChiConfig::new(2, 2, 4).unwrap())
        .checkpoint_wal_bytes(0)
}

fn mask(seed: u32) -> Mask {
    Mask::from_fn(W, W, move |x, y| {
        ((x * 5 + y * 3 + seed) % 11) as f32 / 11.0
    })
}

fn pixels(seed: u32) -> String {
    let m = mask(seed);
    let values: Vec<String> = m.data().iter().map(|v| format!("{v}")).collect();
    values.join(", ")
}

fn tuple(id: u64, seed: u32) -> String {
    format!("({id}, {}, {W}, {W}, ({}))", id / 2, pixels(seed))
}

fn db_session(db: &MaskDb) -> Session {
    Session::with_store_maintained_index(
        db.mask_store(),
        db.catalog(),
        SessionConfig::new(ChiConfig::new(2, 2, 4).unwrap()).threads(1),
        db.chi_store(),
    )
}

/// Compiles a `BEGIN; …; COMMIT` script and applies its mutations as one
/// atomic transaction — the exact path the served `BEGIN … COMMIT` script
/// takes below the protocol layer.
fn apply_script(session: &Session, sql: &str) {
    let mutations: Vec<Mutation> = masksearch::sql::compile_script(sql)
        .unwrap()
        .into_iter()
        .filter_map(|statement| match statement {
            Statement::Mutation(m) => Some(m),
            _ => None,
        })
        .collect();
    session.apply_transaction(&mutations).unwrap();
}

/// Runs a three-transaction history (the second and third span INSERT,
/// UPDATE, and DELETE in one script) and returns the expected state after
/// each commit, index 0 = empty database. Asserts every transaction cost
/// exactly one storage commit.
fn run_history(dir: &Path) -> Vec<BTreeMap<MaskId, Mask>> {
    let db = MaskDb::open(dir, config()).unwrap();
    let session = db_session(&db);
    let commits_at = || db.mask_store().ingest_stats().unwrap().commits;
    let mut model: BTreeMap<MaskId, Mask> = BTreeMap::new();
    let mut steps = vec![model.clone()];
    let base = commits_at();

    apply_script(
        &session,
        &format!(
            "BEGIN; INSERT INTO masks VALUES {}, {}, {}; COMMIT",
            tuple(0, 0),
            tuple(1, 1),
            tuple(2, 2)
        ),
    );
    for (id, seed) in [(0, 0), (1, 1), (2, 2)] {
        model.insert(MaskId::new(id), mask(seed));
    }
    steps.push(model.clone());
    assert_eq!(commits_at(), base + 1, "txn 1 must be one commit frame");

    apply_script(
        &session,
        &format!(
            "BEGIN; \
             INSERT INTO masks VALUES {}, {}; \
             UPDATE masks SET pixels = ({}) WHERE mask_id = 0; \
             DELETE FROM masks WHERE mask_id IN (1); \
             COMMIT",
            tuple(3, 3),
            tuple(4, 4),
            pixels(7)
        ),
    );
    model.insert(MaskId::new(3), mask(3));
    model.insert(MaskId::new(4), mask(4));
    model.insert(MaskId::new(0), mask(7));
    model.remove(&MaskId::new(1));
    steps.push(model.clone());
    assert_eq!(commits_at(), base + 2, "txn 2 must be one commit frame");

    apply_script(
        &session,
        &format!(
            "BEGIN; \
             UPDATE masks SET pixels = ({}) WHERE mask_id = 2; \
             INSERT INTO masks VALUES {}; \
             DELETE FROM masks WHERE mask_id IN (3); \
             COMMIT",
            pixels(8),
            tuple(5, 5)
        ),
    );
    model.insert(MaskId::new(2), mask(8));
    model.insert(MaskId::new(5), mask(5));
    model.remove(&MaskId::new(3));
    steps.push(model.clone());
    assert_eq!(commits_at(), base + 3, "txn 3 must be one commit frame");

    steps
}

/// Copies the database directory with the WAL truncated to `cut` bytes.
fn crashed_copy(src: &Path, dst: &Path, cut: usize) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for file in [DB_FILE, CHI_FILE, TILES_FILE] {
        if src.join(file).exists() {
            fs::copy(src.join(file), dst.join(file)).unwrap();
        }
    }
    let wal = fs::read(src.join(WAL_FILE)).unwrap();
    fs::write(dst.join(WAL_FILE), &wal[..cut.min(wal.len())]).unwrap();
}

/// The index of the transaction boundary the recovered state equals,
/// panicking if it matches none (i.e. a transaction was torn).
fn matching_step(store: &DurableMaskStore, steps: &[BTreeMap<MaskId, Mask>]) -> usize {
    let ids = store.ids();
    for (i, step) in steps.iter().enumerate() {
        if step.keys().copied().collect::<Vec<_>>() == ids
            && step.iter().all(|(id, m)| &store.get(*id).unwrap() == m)
        {
            // The recovered index structures describe exactly this state.
            let mut chi_ids = store.chi_store().ids();
            chi_ids.sort_unstable();
            assert_eq!(chi_ids, ids, "CHI holds a different mask set");
            assert_eq!(store.verify_tile_summaries().unwrap(), ids.len());
            return i;
        }
    }
    panic!("recovered ids {ids:?} match no transaction boundary — a transaction was torn");
}

#[test]
fn killing_a_transaction_script_at_every_byte_is_all_or_nothing() {
    let src = temp_dir("src");
    let steps = run_history(&src);
    let wal_len = fs::read(src.join(WAL_FILE)).unwrap().len();

    let crash_dir = temp_dir("crash");
    let mut last = 0usize;
    let mut reached = std::collections::BTreeSet::new();
    for cut in 0..=wal_len {
        crashed_copy(&src, &crash_dir, cut);
        let store = DurableMaskStore::open(&crash_dir, config()).unwrap();
        let step = matching_step(&store, &steps);
        assert!(
            step >= last,
            "cut {cut} recovered boundary {step} after {last}"
        );
        last = step;
        reached.insert(step);
    }
    // Every transaction boundary is reachable — and nothing in between.
    assert_eq!(reached, (0..steps.len()).collect());

    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&crash_dir).unwrap();
}
