//! End-to-end conformance of the tiled verification kernel: the same query
//! workload — filter, top-k (with exact ties), and HAVING aggregates —
//! executed over TCP against the same `masksearch-db` store must produce
//! **byte-identical** result frames with the kernel enabled and disabled,
//! including row order, tie-breaks, float formatting, and every
//! deterministic summary counter. Only the `wall_us=` timing token is
//! masked before comparison.

use masksearch::core::{ImageId, Mask, MaskId, MaskRecord};
use masksearch::db::{DbConfig, MaskDb};
use masksearch::index::ChiConfig;
use masksearch::query::{Session, SessionConfig};
use masksearch::service::{Engine, Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

const W: u32 = 48;
const H: u32 = 48;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "masksearch-kernel-conformance-{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Blob masks with varying radius; ids `i` and `i + 1` of every even pair
/// with the same radius are pixel-identical, forcing exact top-k ties that
/// only the deterministic id tie-break can order.
fn mask_for(id: u64) -> Mask {
    let radius = 3.0 + ((id / 2) * 5 % 13) as f32;
    Mask::from_fn(W, H, move |x, y| {
        let dx = x as f32 - 22.0;
        let dy = y as f32 - 26.0;
        if (dx * dx + dy * dy).sqrt() < radius {
            0.91
        } else {
            0.04 + ((x + y) % 3) as f32 * 0.01
        }
    })
}

fn record_for(id: u64) -> MaskRecord {
    MaskRecord::builder(MaskId::new(id))
        .image_id(ImageId::new(id / 2))
        .model_id(masksearch::core::ModelId::new(id % 2 + 1))
        .shape(W, H)
        .object_box(masksearch::core::Roi::new(10, 12, 36, 40).unwrap())
        .build()
}

fn workload() -> Vec<String> {
    vec![
        // Filter: selective range, compound predicate.
        format!(
            "SELECT mask_id FROM masks WHERE CP(mask, (5, 5, 40, 40), (0.5, 1.0)) > 60 \
             AND CP(mask, full, (0.0, 0.5)) > 100"
        ),
        // Filter with a bin-straddling range (histogram cannot answer).
        format!("SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.03, 0.91)) > 900"),
        // Top-k with exact ties (duplicate masks) in both directions.
        format!(
            "SELECT mask_id, CP(mask, object, (0.5, 1.0)) AS s FROM masks \
             ORDER BY s DESC LIMIT 9"
        ),
        format!(
            "SELECT mask_id, CP(mask, object, (0.5, 1.0)) / CP(mask, full, (0.5, 1.0)) AS r \
             FROM masks ORDER BY r ASC LIMIT 7"
        ),
        // HAVING aggregate over groups.
        format!(
            "SELECT image_id, AVG(CP(mask, object, (0.5, 1.0))) AS s FROM masks \
             GROUP BY image_id HAVING s > 120"
        ),
        // Grouped top-k aggregate.
        format!(
            "SELECT image_id, SUM(CP(mask, full, (0.5, 1.0))) AS s FROM masks \
             GROUP BY image_id ORDER BY s DESC LIMIT 5"
        ),
        // Mask aggregation.
        format!(
            "SELECT image_id, CP(INTERSECT(mask > 0.5), object, (0.5, 1.0)) AS s FROM masks \
             GROUP BY image_id ORDER BY s DESC LIMIT 4"
        ),
    ]
}

/// Reads one response frame (through the `END` marker) as raw lines.
fn read_frame(reader: &mut impl BufRead) -> Vec<String> {
    let mut frame = Vec::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection closed mid-frame"
        );
        let line = line.trim_end_matches(['\r', '\n']).to_string();
        let done = line == "END";
        frame.push(line);
        if done {
            return frame;
        }
    }
}

/// Masks the only nondeterministic token (`wall_us=<n>`) in a frame line.
fn normalize(line: &str) -> String {
    line.split_ascii_whitespace()
        .map(|token| {
            if token.starts_with("wall_us=") {
                "wall_us=X"
            } else {
                token
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Opens the store in `dir`, serves it over TCP with the kernel enabled or
/// disabled, runs the workload on a raw socket, and returns the normalized
/// frames.
fn run_workload(dir: &Path, kernel: bool) -> Vec<Vec<String>> {
    let db = MaskDb::open(dir, db_config()).unwrap();
    let session = Session::with_store_maintained_index(
        db.mask_store(),
        db.catalog(),
        SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap())
            .threads(2)
            .cache_bytes(1 << 20)
            .tiled_kernel(kernel),
        db.chi_store(),
    );
    let engine = Engine::new(session, ServiceConfig::new(2));
    let server = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut frames = Vec::new();
    for statement in workload() {
        writeln!(&stream, "{statement}").unwrap();
        (&stream).flush().unwrap();
        let frame = read_frame(&mut reader);
        frames.push(frame.iter().map(|l| normalize(l)).collect());
    }
    writeln!(&stream, "QUIT").unwrap();
    drop(stream);
    server.shutdown();
    frames
}

fn db_config() -> DbConfig {
    DbConfig::default()
        .page_size(4096)
        .chi_config(ChiConfig::new(8, 8, 8).unwrap())
}

#[test]
fn kernel_enabled_and_disabled_produce_byte_identical_frames() {
    let dir = temp_dir("frames");
    // Ingest once; both runs then open the same durable store.
    {
        let db = MaskDb::open(&dir, db_config()).unwrap();
        let batch: Vec<(MaskRecord, Mask)> =
            (0..24).map(|i| (record_for(i), mask_for(i))).collect();
        db.insert_masks(&batch).unwrap();
        db.checkpoint().unwrap();
    }

    let enabled = run_workload(&dir, true);
    let disabled = run_workload(&dir, false);

    assert_eq!(enabled.len(), disabled.len());
    for (i, (a, b)) in enabled.iter().zip(&disabled).enumerate() {
        assert_eq!(a, b, "statement {i} produced differing frames");
        // Sanity: the frames carry real results, not errors.
        assert!(a[0].starts_with("OK "), "statement {i}: {}", a[0]);
        assert!(a.len() > 1, "statement {i} returned no rows");
    }

    // The kernel actually engaged: re-run one verification-heavy query with
    // the kernel forced on (the auto planner may legitimately choose the
    // scan for this shape) and confirm the serving metrics counted tiles.
    let db = MaskDb::open(&dir, db_config()).unwrap();
    let session = Session::with_store_maintained_index(
        db.mask_store(),
        db.catalog(),
        SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap())
            .threads(2)
            .tiled_kernel(true),
        db.chi_store(),
    );
    let engine = Engine::new(session, ServiceConfig::new(1));
    let response = engine
        .execute_sql(&format!(
            "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.03, 0.91)) > 900"
        ))
        .unwrap();
    let stats = response.output.stats;
    assert!(
        stats.tiles_pruned + stats.tiles_hist + stats.tiles_scanned > 0,
        "kernel never classified a tile: {stats:?}"
    );
    let metrics = engine.metrics();
    assert_eq!(
        metrics.tiles_pruned + metrics.tiles_hist + metrics.tiles_scanned,
        stats.tiles_pruned + stats.tiles_hist + stats.tiles_scanned
    );
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
