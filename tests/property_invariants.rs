//! Property-based tests of the system's core invariants:
//!
//! 1. CHI bounds always bracket the exact `CP` value, for arbitrary masks,
//!    ROIs, pixel ranges, and grid configurations.
//! 2. The filter–verification executor returns exactly the brute-force
//!    result set, for arbitrary data and thresholds.
//! 3. Top-k execution equals brute-force top-k.
//! 4. Storage round trips (mask files, compression, CHI persistence) are
//!    identity functions.
//! 5. Eq. 2 additivity: region histograms equal direct scans.

use masksearch::core::{cp, Mask, MaskId, MaskRecord, PixelRange, Roi};
use masksearch::index::{Chi, ChiConfig, ChiStore};
use masksearch::query::{IndexingMode, Order, Query, Session, SessionConfig};
use masksearch::storage::{format, Catalog, MaskEncoding, MaskStore, MemoryMaskStore};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: an arbitrary mask of bounded size with a mixture of smooth and
/// noisy content.
fn arb_mask() -> impl Strategy<Value = Mask> {
    (4u32..40, 4u32..40, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut state = seed | 1;
        Mask::from_fn(w, h, move |x, y| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 33) as f32) / (u32::MAX as f32) * 0.3;
            let blob = {
                let dx = x as f32 - w as f32 / 3.0;
                let dy = y as f32 - h as f32 / 2.0;
                0.7 * (-(dx * dx + dy * dy) / (2.0 * (w.min(h) as f32 / 4.0).powi(2)).max(1.0))
                    .exp()
            };
            (noise + blob).min(0.999)
        })
    })
}

fn arb_roi(max: u32) -> impl Strategy<Value = Roi> {
    (0u32..max, 0u32..max, 1u32..=max, 1u32..=max)
        .prop_filter_map("non-degenerate roi", move |(x0, y0, w, h)| {
            Roi::new(x0, y0, x0 + w, y0 + h).ok()
        })
}

fn arb_range() -> impl Strategy<Value = PixelRange> {
    (0u32..90, 1u32..=100).prop_filter_map("non-empty range", |(lo, width)| {
        let lo = lo as f32 / 100.0;
        let hi = (lo + width as f32 / 100.0).min(1.0);
        PixelRange::new(lo, hi).ok()
    })
}

fn arb_config() -> impl Strategy<Value = ChiConfig> {
    (1u32..16, 1u32..16, 1u32..32).prop_filter_map("valid config", |(cw, ch, bins)| {
        ChiConfig::new(cw, ch, bins)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chi_bounds_always_bracket_exact_cp(
        mask in arb_mask(),
        roi in arb_roi(48),
        range in arb_range(),
        config in arb_config(),
    ) {
        let chi = Chi::build(&mask, &config);
        let bounds = chi.cp_bounds(&roi, &range);
        let exact = cp(&mask, &roi, &range);
        prop_assert!(bounds.lower <= exact, "lower {} > exact {exact}", bounds.lower);
        prop_assert!(exact <= bounds.upper, "exact {exact} > upper {}", bounds.upper);
        prop_assert!(bounds.upper <= bounds.roi_area);
    }

    #[test]
    fn region_histograms_match_direct_scans(
        mask in arb_mask(),
        config in arb_config(),
    ) {
        let chi = Chi::build(&mask, &config);
        // Probe a handful of available regions including the full mask.
        let cx = chi.cells_x();
        let cy = chi.cells_y();
        let probes = [
            (0, 0, cx, cy),
            (0, 0, cx.div_ceil(2).max(1), cy),
            (cx / 2, cy / 2, cx, cy),
        ];
        for &(bx0, by0, bx1, by1) in &probes {
            if bx0 >= bx1 || by0 >= by1 {
                continue;
            }
            let hist = chi.region_hist(bx0, by0, bx1, by1);
            let roi = Roi::new(
                chi.x_boundary(bx0),
                chi.y_boundary(by0),
                chi.x_boundary(bx1),
                chi.y_boundary(by1),
            ).unwrap();
            for (b, &count) in hist.iter().enumerate() {
                let lo = ((b as f64) * config.delta()).min(0.999_999) as f32;
                let expected = mask.count_pixels(&roi, &PixelRange::new(lo, 1.0).unwrap());
                prop_assert_eq!(count, expected);
            }
        }
    }

    #[test]
    fn mask_file_and_compression_round_trip(
        mask in arb_mask(),
        compressed in any::<bool>(),
    ) {
        let encoding = if compressed { MaskEncoding::Compressed } else { MaskEncoding::Raw };
        let bytes = format::encode_mask(MaskId::new(7), &mask, encoding);
        let (header, decoded) = format::decode_mask(&bytes).unwrap();
        prop_assert_eq!(header.mask_id, MaskId::new(7));
        prop_assert_eq!(decoded, mask);
    }

    #[test]
    fn chi_store_round_trip(
        mask in arb_mask(),
        config in arb_config(),
    ) {
        let store = ChiStore::new(config);
        store.index_mask(MaskId::new(3), &mask);
        let decoded = ChiStore::from_bytes(&store.to_bytes()).unwrap();
        prop_assert_eq!(decoded.len(), 1);
        prop_assert_eq!(&*decoded.get(MaskId::new(3)).unwrap(), &*store.get(MaskId::new(3)).unwrap());
    }

    /// CHI bounds stay sound on masks carrying NaN / ±∞ / −0.0 /
    /// out-of-domain pixels (reachable through the unchecked constructor,
    /// e.g. from hostile compressed blobs): ingest skips uncountable pixels,
    /// so the filter stage must still bracket the exact (NaN-never-in-range)
    /// scan.
    #[test]
    fn chi_bounds_bracket_special_pixel_masks(
        shape in (4u32..40, 4u32..40),
        seed in any::<u64>(),
        roi in arb_roi(48),
        range in arb_range(),
        config in arb_config(),
    ) {
        let (w, h) = shape;
        let mask = special_pixel_mask(w, h, seed);
        let chi = Chi::build(&mask, &config);
        let bounds = chi.cp_bounds(&roi, &range);
        let exact = cp(&mask, &roi, &range);
        prop_assert!(bounds.lower <= exact, "lower {} > exact {exact}", bounds.lower);
        prop_assert!(exact <= bounds.upper, "exact {exact} > upper {}", bounds.upper);
    }

    /// Composed (pair) bounds bracket the exact composed count for every
    /// operator, on ordinary and special-pixel masks alike.
    #[test]
    fn composed_bounds_bracket_exact_composed_cp(
        shape in (4u32..40, 4u32..40),
        seeds in (any::<u64>(), any::<u64>()),
        special in any::<bool>(),
        roi in arb_roi(48),
        range in arb_range(),
        config in arb_config(),
        op_pick in 0u32..3,
    ) {
        use masksearch::core::{cp_composed, MaskOp};
        use masksearch::index::composed_cp_bounds;
        let (w, h) = shape;
        let make = |seed: u64| if special {
            special_pixel_mask(w, h, seed)
        } else {
            special_pixel_mask(w, h, seed).clamped_copy()
        };
        let a = make(seeds.0);
        let b = make(seeds.1);
        let op = [MaskOp::Intersect, MaskOp::Union, MaskOp::Diff][op_pick as usize];
        let chi_a = Chi::build(&a, &config);
        let chi_b = Chi::build(&b, &config);
        let bounds = composed_cp_bounds(&chi_a, &chi_b, op, &roi, &range);
        let exact = cp_composed(&a, &b, op, &roi, &range).unwrap();
        prop_assert!(
            bounds.lower <= exact && exact <= bounds.upper,
            "{}: exact {} outside [{}, {}]", op, exact, bounds.lower, bounds.upper
        );
    }
}

/// A mask with NaN / ±∞ / −0.0 / out-of-domain pixels sprinkled into hash
/// noise (about one in eight pixels is special).
fn special_pixel_mask(w: u32, h: u32, seed: u64) -> Mask {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    let data: Vec<f32> = (0..(w as usize) * (h as usize))
        .map(|_| {
            let r = next();
            if r % 8 == 0 {
                match (r >> 8) % 6 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    3 => -0.0,
                    4 => 2.5,
                    _ => -0.75,
                }
            } else {
                ((r >> 33) as f32) / (u32::MAX as f32 + 1.0)
            }
        })
        .collect();
    Mask::from_data_unchecked(w, h, data).expect("shape matches")
}

/// Small helper: an in-domain copy of a mask (specials clamped) for the
/// mixed special/plain composed-bounds property.
trait ClampedCopy {
    fn clamped_copy(&self) -> Mask;
}

impl ClampedCopy for Mask {
    fn clamped_copy(&self) -> Mask {
        Mask::from_data_clamped(self.width(), self.height(), self.data().to_vec())
            .expect("shape matches")
    }
}

/// A small randomized database for the executor-equivalence properties.
fn build_db(masks: &[Mask]) -> (Arc<MemoryMaskStore>, Catalog) {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for (i, mask) in masks.iter().enumerate() {
        let id = MaskId::new(i as u64);
        store.put(id, mask).unwrap();
        let (w, h) = mask.shape();
        catalog.insert(
            MaskRecord::builder(id)
                .image_id(masksearch::core::ImageId::new(i as u64 / 2))
                .shape(w, h)
                .object_box(Roi::new(w / 4, h / 4, (w * 3 / 4).max(1), (h * 3 / 4).max(1)).unwrap())
                .build(),
        );
    }
    (store, catalog)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn filter_execution_equals_brute_force(
        seeds in prop::collection::vec(any::<u64>(), 6..20),
        range in arb_range(),
        threshold_frac in 0.0f64..0.3,
        config in arb_config(),
    ) {
        // All masks share one shape so the dataset resembles a real one.
        let masks: Vec<Mask> = seeds
            .iter()
            .map(|&seed| {
                let mut state = seed | 1;
                Mask::from_fn(24, 24, move |_, _| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                    ((state >> 40) as f32 / (1u32 << 24) as f32).min(0.999)
                })
            })
            .collect();
        let (store, catalog) = build_db(&masks);
        let session = Session::new(
            Arc::clone(&store) as Arc<dyn MaskStore>,
            catalog.clone(),
            SessionConfig::new(config).indexing_mode(IndexingMode::Eager),
        ).unwrap();

        let roi = Roi::new(3, 5, 20, 19).unwrap();
        let threshold = threshold_frac * (24.0 * 24.0);
        let query = Query::filter_cp_gt(roi, range, threshold);
        let got = session.execute(&query).unwrap().mask_ids();
        let expected: Vec<MaskId> = masks
            .iter()
            .enumerate()
            .filter(|(_, m)| (cp(m, &roi, &range) as f64) > threshold)
            .map(|(i, _)| MaskId::new(i as u64))
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn topk_execution_equals_brute_force(
        seeds in prop::collection::vec(any::<u64>(), 8..24),
        range in arb_range(),
        k in 1usize..8,
        desc in any::<bool>(),
    ) {
        let masks: Vec<Mask> = seeds
            .iter()
            .map(|&seed| {
                let mut state = seed | 1;
                Mask::from_fn(20, 20, move |_, _| {
                    state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    ((state >> 40) as f32 / (1u32 << 24) as f32).min(0.999)
                })
            })
            .collect();
        let (store, catalog) = build_db(&masks);
        let session = Session::new(
            Arc::clone(&store) as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(5, 5, 8).unwrap())
                .indexing_mode(IndexingMode::Eager),
        ).unwrap();

        let order = if desc { Order::Desc } else { Order::Asc };
        let roi = Roi::new(2, 2, 18, 18).unwrap();
        let query = Query::top_k_cp(roi, range, k, order);
        let got = session.execute(&query).unwrap().mask_ids();

        let mut rows: Vec<(f64, MaskId)> = masks
            .iter()
            .enumerate()
            .map(|(i, m)| (cp(m, &roi, &range) as f64, MaskId::new(i as u64)))
            .collect();
        rows.sort_by(|a, b| {
            let cmp = match order {
                Order::Desc => b.0.partial_cmp(&a.0),
                Order::Asc => a.0.partial_cmp(&b.0),
            }
            .unwrap();
            cmp.then_with(|| a.1.cmp(&b.1))
        });
        rows.truncate(k);
        let expected: Vec<MaskId> = rows.into_iter().map(|(_, id)| id).collect();
        prop_assert_eq!(got, expected);
    }
}
