//! The cluster acceptance test: a 4-shard cluster — each shard a real
//! `masksearch-db`-backed server — serving concurrent SQL clients during
//! live ingestion, returning results byte-identical to a single-node oracle
//! session (including distributed top-k), while one shard is killed and
//! restarted (WAL recovery) mid-test and survived via client reconnect.
//!
//! Each shard sits behind a tiny in-test TCP proxy whose listener lives for
//! the whole test: "killing" a shard severs every proxied connection and
//! holds new ones, the shard process state is torn down and re-opened from
//! its directory (crash recovery path), and the proxy then forwards to the
//! reborn server's fresh port. This models a process restart without
//! rebinding a port out from under TIME_WAIT sockets.

use masksearch::cluster::{ClusterConfig, Coordinator, CoordinatorServer, ReplicaShard};
use masksearch::core::{ImageId, Mask, MaskId, MaskRecord};
use masksearch::db::{DbConfig, MaskDb};
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Session, SessionConfig};
use masksearch::service::{Client, Engine, Server, ServerHandle, ServiceConfig};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const W: u32 = 16;
const H: u32 = 16;
const SHARDS: usize = 4;
const BATCHES: u64 = 12;
const BATCH: u64 = 8; // masks per INSERT statement (4 images x 2 masks)

// ---------------------------------------------------------------------------
// A pausable TCP proxy with a persistent listener.
// ---------------------------------------------------------------------------

struct ProxyState {
    upstream: Mutex<SocketAddr>,
    paused: Mutex<bool>,
    unpaused: Condvar,
    conns: Mutex<Vec<TcpStream>>,
    shutdown: AtomicBool,
}

struct Proxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
}

impl Proxy {
    fn start(upstream: SocketAddr) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let state = Arc::new(ProxyState {
            upstream: Mutex::new(upstream),
            paused: Mutex::new(false),
            unpaused: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(client) = stream else { continue };
                let state = Arc::clone(&accept_state);
                std::thread::spawn(move || proxy_connection(client, &state));
            }
        });
        Proxy { addr, state }
    }

    /// Severs every proxied connection and holds new ones until `resume`.
    fn pause(&self) {
        *self.state.paused.lock().unwrap() = true;
        let mut conns = self.state.conns.lock().unwrap();
        for stream in conns.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Reconnects the proxy to a (possibly new) upstream and releases held
    /// connections.
    fn resume(&self, upstream: SocketAddr) {
        *self.state.upstream.lock().unwrap() = upstream;
        *self.state.paused.lock().unwrap() = false;
        self.state.unpaused.notify_all();
    }
}

fn proxy_connection(client: TcpStream, state: &Arc<ProxyState>) {
    // Hold the connection while the shard is "down".
    let upstream = {
        let mut paused = state.paused.lock().unwrap();
        while *paused {
            paused = state.unpaused.wait(paused).unwrap();
        }
        *state.upstream.lock().unwrap()
    };
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    {
        let mut conns = state.conns.lock().unwrap();
        conns.push(client.try_clone().unwrap());
        conns.push(server.try_clone().unwrap());
    }
    let client_to_server = (client.try_clone().unwrap(), server.try_clone().unwrap());
    std::thread::spawn(move || pump(client_to_server.0, client_to_server.1));
    pump(server, client);
}

fn pump(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------------
// Shard lifecycle.
// ---------------------------------------------------------------------------

fn db_config() -> DbConfig {
    DbConfig::default()
        .page_size(1024)
        .chi_config(ChiConfig::new(4, 4, 8).unwrap())
}

fn session_config() -> SessionConfig {
    SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap()).threads(2)
}

struct Shard {
    dir: PathBuf,
    db: Option<MaskDb>,
    handle: Option<ServerHandle>,
}

impl Shard {
    fn start(dir: PathBuf) -> Shard {
        Shard::start_with(dir, db_config())
    }

    fn start_with(dir: PathBuf, config: DbConfig) -> Shard {
        let db = MaskDb::open(&dir, config).unwrap();
        let session = Session::with_store_maintained_index(
            db.mask_store(),
            db.catalog(),
            session_config(),
            db.chi_store(),
        );
        let engine = Engine::new(session, ServiceConfig::new(2));
        let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
        Shard {
            dir,
            db: Some(db),
            handle: Some(handle),
        }
    }

    fn addr(&self) -> SocketAddr {
        self.handle.as_ref().unwrap().local_addr()
    }

    /// Tears the shard down (no checkpoint — the reopen takes the WAL
    /// recovery path) and starts a fresh instance from the same directory.
    fn restart(&mut self) {
        let handle = self.handle.take().unwrap();
        // Severed connections drain quickly; wait so no stale thread still
        // holds the old engine (and with it the old pager) when we reopen.
        let deadline = Instant::now() + Duration::from_secs(10);
        while handle.active_connections() > 0 {
            assert!(
                Instant::now() < deadline,
                "old shard connections failed to drain"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.shutdown();
        self.db = None; // drop the old database before reopening its files
        *self = Shard::start(std::mem::take(&mut self.dir));
    }
}

// ---------------------------------------------------------------------------
// Data + oracle.
// ---------------------------------------------------------------------------

fn mask_for(id: u64) -> Mask {
    let mut state = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    Mask::from_fn(W, H, move |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f32) / (1u64 << 24) as f32
    })
}

fn insert_sql(ids: std::ops::Range<u64>) -> String {
    let tuples: Vec<String> = ids
        .map(|id| {
            let mask = mask_for(id);
            let pixels: Vec<String> = mask.data().iter().map(|v| format!("{v}")).collect();
            format!("({id}, {}, {W}, {H}, ({}))", id / 2, pixels.join(","))
        })
        .collect();
    format!("INSERT INTO masks VALUES {}", tuples.join(", "))
}

fn oracle_session(ids: &[u64]) -> Session {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for &id in ids {
        store.put(MaskId::new(id), &mask_for(id)).unwrap();
        catalog.insert(
            MaskRecord::builder(MaskId::new(id))
                .image_id(ImageId::new(id / 2))
                .shape(W, H)
                .build(),
        );
    }
    Session::new(
        store as Arc<dyn MaskStore>,
        catalog,
        session_config().indexing_mode(IndexingMode::Eager),
    )
    .unwrap()
}

fn query_suite() -> Vec<String> {
    vec![
        format!(
            "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.5, 1.0)) > {}",
            W * H / 2
        ),
        format!(
            "SELECT mask_id, CP(mask, (0, 0, {W}, {H}), (0.6, 1.0)) AS s \
             FROM masks ORDER BY s DESC LIMIT 7"
        ),
        format!(
            "SELECT mask_id, CP(mask, (0, 0, 8, {H}), (0.5, 1.0)) / CP(mask, full, (0.5, 1.0)) AS r \
             FROM masks ORDER BY r ASC LIMIT 5"
        ),
        format!(
            "SELECT image_id, AVG(CP(mask, full, (0.5, 1.0))) AS s FROM masks GROUP BY image_id"
        ),
        format!(
            "SELECT image_id, SUM(CP(mask, full, (0.7, 1.0))) AS s \
             FROM masks GROUP BY image_id HAVING s > 120"
        ),
        format!(
            "SELECT image_id, MAX(CP(mask, full, (0.5, 1.0))) AS s \
             FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 4"
        ),
        // Pair (self-join) shapes: with no per-model metadata both sides
        // bind each image's smallest mask id, which makes every IoU exactly
        // 1.0 — an all-ties ranked merge, the hardest case for the
        // distributed top-k tie-break — while the composed filter behaves
        // like a per-image CP and must broadcast-merge exactly.
        format!(
            "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE CP(UNION(a.mask, b.mask), full, (0.5, 1.0)) > {}",
            W * H / 2
        ),
        format!(
            "SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS s \
             FROM masks a JOIN masks b ON a.image_id = b.image_id \
             ORDER BY s DESC LIMIT 5"
        ),
        format!(
            "SELECT image_id, CP(DIFF(a.mask, b.mask), (0, 0, 8, {H}), (0.25, 1.0)) AS d \
             FROM masks a JOIN masks b ON a.image_id = b.image_id \
             ORDER BY d ASC LIMIT 6"
        ),
    ]
}

fn assert_cluster_matches_oracle(client: &mut Client, oracle: &Session, context: &str) {
    for sql in query_suite() {
        let expected = oracle
            .execute(&masksearch::sql::compile(&sql).unwrap())
            .unwrap();
        let got = client.query(&sql).unwrap();
        assert_eq!(got.rows, expected.rows, "[{context}] divergence for {sql}");
    }
}

// ---------------------------------------------------------------------------
// The test.
// ---------------------------------------------------------------------------

#[test]
fn four_shard_cluster_with_live_ingestion_and_shard_restart() {
    let base = std::env::temp_dir().join(format!("masksearch-cluster-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // 4 durable shards, each behind a pausable proxy.
    let mut shards: Vec<Shard> = (0..SHARDS)
        .map(|i| Shard::start(base.join(format!("shard-{i}"))))
        .collect();
    let proxies: Vec<Proxy> = shards.iter().map(|s| Proxy::start(s.addr())).collect();
    let coordinator = Coordinator::connect(ClusterConfig::new(
        proxies.iter().map(|p| p.addr.to_string()).collect(),
    ))
    .unwrap();
    let front = CoordinatorServer::bind("127.0.0.1:0", coordinator.clone())
        .unwrap()
        .spawn();
    let addr = front.local_addr();

    let done = Arc::new(AtomicBool::new(false));

    // Readers: hammer an everything-matches filter through the coordinator
    // and assert per-image write atomicity: each image's two masks appear
    // together or not at all, even though a cross-shard INSERT statement is
    // only atomic per shard.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let everything = format!(
                "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.0, 1.0)) > 0"
            );
            let mut client = Client::connect(addr).unwrap();
            let mut checked = 0u64;
            while !done.load(Ordering::Acquire) || checked == 0 {
                let ids: BTreeSet<u64> = client
                    .query(&everything)
                    .unwrap()
                    .mask_ids()
                    .iter()
                    .map(|id| id.raw())
                    .collect();
                assert!(ids.len() as u64 <= BATCHES * BATCH);
                for &id in &ids {
                    assert!(id < BATCHES * BATCH);
                    let sibling = id ^ 1;
                    assert!(
                        ids.contains(&sibling),
                        "image {} torn: saw {id} without {sibling}",
                        id / 2
                    );
                }
                checked += 1;
            }
            client.quit().unwrap();
            checked
        }));
    }

    // Writer: stream the first half of the batches.
    let mut writer = Client::connect(addr).unwrap();
    for batch in 0..BATCHES / 2 {
        let response = writer
            .query(&insert_sql(batch * BATCH..(batch + 1) * BATCH))
            .unwrap();
        assert_eq!(response.summary.inserted, BATCH);
    }

    // Mid-test shard kill + restart (WAL recovery), with readers live. The
    // proxy severs every connection, the shard is torn down and reopened
    // from its directory, and the coordinator's pooled clients reconnect.
    let victim = 1;
    proxies[victim].pause();
    shards[victim].restart();
    proxies[victim].resume(shards[victim].addr());

    // Second half of the ingestion, through the restarted cluster.
    for batch in BATCHES / 2..BATCHES {
        let response = writer
            .query(&insert_sql(batch * BATCH..(batch + 1) * BATCH))
            .unwrap();
        assert_eq!(response.summary.inserted, BATCH);
    }

    done.store(true, Ordering::Release);
    let checks: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(checks > 0);

    // Quiescent: every query shape byte-identical to the single-node oracle,
    // including the data that lived through the shard restart.
    let all_ids: Vec<u64> = (0..BATCHES * BATCH).collect();
    let oracle = oracle_session(&all_ids);
    assert_cluster_matches_oracle(&mut writer, &oracle, "after ingestion + restart");

    // Deletes route across shards and stay byte-identical.
    let delete = "DELETE FROM masks WHERE mask_id IN (0, 1, 10, 11, 40, 41)";
    let response = writer.query(delete).unwrap();
    assert_eq!(response.summary.deleted, 6);
    match masksearch::sql::compile_statement(delete).unwrap() {
        masksearch::sql::Statement::Mutation(m) => {
            oracle.apply(&m).unwrap();
        }
        _ => unreachable!(),
    }
    assert_cluster_matches_oracle(&mut writer, &oracle, "after delete");

    // The aggregated STATS line reports the cluster shape and refinements.
    let stats = writer.stats().unwrap();
    assert!(
        stats.starts_with(&format!("STATS shards={SHARDS}")),
        "{stats}"
    );
    assert!(stats.contains("cluster_queries="), "{stats}");
    writer.quit().unwrap();

    // A restarted-from-disk cluster (all shards) still equals the oracle:
    // the ingested catalog is durable on every shard.
    front.shutdown();
    for (shard, proxy) in shards.iter_mut().zip(&proxies) {
        proxy.pause();
        shard.restart();
        proxy.resume(shard.addr());
    }
    let coordinator = Coordinator::connect(ClusterConfig::new(
        proxies.iter().map(|p| p.addr.to_string()).collect(),
    ))
    .unwrap();
    let front = CoordinatorServer::bind("127.0.0.1:0", coordinator)
        .unwrap()
        .spawn();
    let mut client = Client::connect(front.local_addr()).unwrap();
    assert_cluster_matches_oracle(&mut client, &oracle, "after full cluster restart");
    client.quit().unwrap();
    front.shutdown();

    std::fs::remove_dir_all(&base).unwrap();
}

/// The zero-downtime replication test: a 2-shard cluster where each shard
/// has a WAL-tailing read replica. One primary is killed outright (its
/// server shut down, no proxy — redials fail fast) while reader threads
/// hammer the coordinator; every read must keep succeeding, byte-identical
/// to a single-node oracle, served through the surviving replica. Writes to
/// the dead shard must fail (failover is reads-only).
#[test]
fn primary_kill_fails_over_to_replicas_with_reads_served_throughout() {
    const REPL_SHARDS: usize = 2;
    let base =
        std::env::temp_dir().join(format!("masksearch-cluster-replica-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Primaries keep their WAL growing (no checkpoints) so replicas can
    // tail it.
    let replicated_db_config = || db_config().checkpoint_wal_bytes(0);
    let mut shards: Vec<Shard> = (0..REPL_SHARDS)
        .map(|i| Shard::start_with(base.join(format!("primary-{i}")), replicated_db_config()))
        .collect();
    let replicas: Vec<ReplicaShard> = (0..REPL_SHARDS)
        .map(|i| {
            ReplicaShard::start(
                shards[i].dir.clone(),
                base.join(format!("replica-{i}")),
                replicated_db_config(),
                session_config(),
                ServiceConfig::new(2),
            )
            .unwrap()
        })
        .collect();
    let coordinator = Coordinator::connect(
        ClusterConfig::new(shards.iter().map(|s| s.addr().to_string()).collect()).replicas(
            replicas
                .iter()
                .map(|r| vec![r.addr().to_string()])
                .collect(),
        ),
    )
    .unwrap();
    let front = CoordinatorServer::bind("127.0.0.1:0", coordinator.clone())
        .unwrap()
        .spawn();
    let addr = front.local_addr();

    // Ingest through the coordinator, then wait until both replicas have
    // applied every committed transaction.
    let mut writer = Client::connect(addr).unwrap();
    for batch in 0..BATCHES {
        let response = writer
            .query(&insert_sql(batch * BATCH..(batch + 1) * BATCH))
            .unwrap();
        assert_eq!(response.summary.inserted, BATCH);
    }
    for (shard, replica) in shards.iter().zip(&replicas) {
        let target = shard.db.as_ref().unwrap().store().wal_bytes();
        assert!(
            replica.wait_applied(target, Duration::from_secs(20)),
            "replica failed to catch up: {:?}",
            replica.tailer_error()
        );
    }

    let all_ids: Vec<u64> = (0..BATCHES * BATCH).collect();
    let oracle = oracle_session(&all_ids);
    assert_cluster_matches_oracle(&mut writer, &oracle, "before kill");

    // Precompute the oracle's answers so reader threads can verify without
    // sharing the session.
    let expected: Arc<Vec<(String, Vec<masksearch::query::ResultRow>)>> = Arc::new(
        query_suite()
            .into_iter()
            .map(|sql| {
                let rows = oracle
                    .execute(&masksearch::sql::compile(&sql).unwrap())
                    .unwrap()
                    .rows;
                (sql, rows)
            })
            .collect(),
    );

    // Readers: loop the whole suite, asserting every read succeeds and is
    // byte-identical — before, during, and after the kill.
    let done = Arc::new(AtomicBool::new(false));
    let passes: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let readers: Vec<_> = passes
        .iter()
        .map(|pass| {
            let done = Arc::clone(&done);
            let pass = Arc::clone(pass);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                while !done.load(Ordering::Acquire) {
                    for (sql, rows) in expected.iter() {
                        let got = client.query(sql).unwrap();
                        assert_eq!(&got.rows, rows, "read diverged during failover for {sql}");
                    }
                    pass.fetch_add(1, Ordering::Release);
                }
                client.quit().unwrap();
            })
        })
        .collect();

    // Wait for at least one full pass each, then kill primary 0 under load.
    let deadline = Instant::now() + Duration::from_secs(60);
    while passes.iter().any(|p| p.load(Ordering::Acquire) == 0) {
        assert!(Instant::now() < deadline, "readers never completed a pass");
        std::thread::sleep(Duration::from_millis(2));
    }
    let victim = 0;
    shards[victim].handle.take().unwrap().kill();
    shards[victim].db = None;

    // Every reader must complete at least two more full passes — ensuring
    // at least one pass ran entirely against the killed-primary cluster.
    let marks: Vec<u64> = passes.iter().map(|p| p.load(Ordering::Acquire)).collect();
    while passes
        .iter()
        .zip(&marks)
        .any(|(p, &mark)| p.load(Ordering::Acquire) < mark + 2)
    {
        assert!(
            Instant::now() < deadline,
            "readers stalled after the primary kill"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    done.store(true, Ordering::Release);
    for reader in readers {
        reader.join().unwrap();
    }

    // The main connection reads byte-identically too, and a write touching
    // the dead shard fails: failover is reads-only. Pick mask ids whose
    // image hashes to the killed shard so the insert must route there.
    assert_cluster_matches_oracle(&mut writer, &oracle, "after primary kill");
    let map = masksearch::cluster::ShardMap::new(REPL_SHARDS).unwrap();
    let doomed_image = (BATCHES * BATCH / 2..)
        .find(|&img| map.shard_for_image(ImageId::new(img)) == victim)
        .unwrap();
    let more = doomed_image * 2..doomed_image * 2 + 2;
    assert!(
        writer.query(&insert_sql(more)).is_err(),
        "a write to a dead primary must fail"
    );
    assert_cluster_matches_oracle(&mut writer, &oracle, "after failed write");
    writer.quit().unwrap();

    let metrics = coordinator.metrics();
    assert!(metrics.failovers > 0, "no failover recorded: {metrics:?}");
    assert!(
        metrics.replica_reads > metrics.failovers,
        "round-robin replica reads should outnumber failovers: {metrics:?}"
    );
    for replica in &replicas {
        assert_eq!(replica.tailer_error(), None);
    }

    front.shutdown();
    drop(replicas);
    drop(shards);
    std::fs::remove_dir_all(&base).unwrap();
}

// ---------------------------------------------------------------------------
// Transaction scripts.
// ---------------------------------------------------------------------------

/// A memory-backed shard server: transaction routing is a coordinator
/// concern, so these tests need live wire round trips but not durability.
fn memory_shard() -> ServerHandle {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let session = Session::new(
        store as Arc<dyn MaskStore>,
        Catalog::new(),
        session_config().indexing_mode(IndexingMode::Eager),
    )
    .unwrap();
    Server::bind("127.0.0.1:0", Engine::new(session, ServiceConfig::new(2)))
        .unwrap()
        .spawn()
}

fn tuple_for(id: u64, image: u64) -> String {
    let mask = mask_for(id);
    let pixels: Vec<String> = mask.data().iter().map(|v| format!("{v}")).collect();
    format!("({id}, {image}, {W}, {H}, ({}))", pixels.join(","))
}

/// Transactions through the coordinator: a `BEGIN; …; COMMIT` script whose
/// statements all land on one shard applies atomically there (later
/// statements observing earlier ones, exactly like a single node); a
/// `ROLLBACK` script touches no shard; and anything unroutable — a script
/// spanning shards, DDL inside a script, an unknown mask id, a bare
/// control statement — is rejected loudly before any side effect.
#[test]
fn transaction_scripts_route_to_one_shard_and_reject_cross_shard() {
    let shards: Vec<ServerHandle> = (0..2).map(|_| memory_shard()).collect();
    let coordinator = Coordinator::connect(ClusterConfig::new(
        shards.iter().map(|h| h.local_addr().to_string()).collect(),
    ))
    .unwrap();
    let front = CoordinatorServer::bind("127.0.0.1:0", coordinator.clone())
        .unwrap()
        .spawn();
    let mut client = Client::connect(front.local_addr()).unwrap();

    let map = masksearch::cluster::ShardMap::new(2).unwrap();
    let mut images_on_0 = (0u64..).filter(|&i| map.shard_for_image(ImageId::new(i)) == 0);
    let img0 = images_on_0.next().unwrap();
    let img0b = images_on_0.next().unwrap();
    let img1 = (0u64..)
        .find(|&i| map.shard_for_image(ImageId::new(i)) == 1)
        .unwrap();
    let ids = |raw: &[u64]| raw.iter().map(|&id| MaskId::new(id)).collect::<Vec<_>>();

    // Seed a committed mask on shard 0.
    let seed = format!("INSERT INTO masks VALUES {}", tuple_for(1, img0));
    assert_eq!(client.query(&seed).unwrap().summary.inserted, 1);

    // One script: INSERT two masks, UPDATE the committed one, DELETE one of
    // the masks inserted *by this script* — all on shard 0, one atomic
    // commit, with later statements observing earlier ones.
    let script = format!(
        "BEGIN; INSERT INTO masks VALUES {}, {}; \
         UPDATE masks SET predicted_label = 9 WHERE mask_id = 1; \
         DELETE FROM masks WHERE mask_id IN (3); COMMIT",
        tuple_for(2, img0b),
        tuple_for(3, img0),
    );
    let applied = client.query(&script).unwrap();
    assert_eq!(applied.summary.inserted, 2);
    assert_eq!(applied.summary.updated, 1);
    assert_eq!(applied.summary.deleted, 1);
    assert_eq!(client.lookup(&ids(&[1, 2, 3])).unwrap(), ids(&[1, 2]));

    // A ROLLBACK script answers zero without touching any shard.
    let rolled = client
        .query("BEGIN; DELETE FROM masks WHERE mask_id IN (1); ROLLBACK")
        .unwrap();
    assert_eq!(rolled.summary.deleted, 0);
    assert_eq!(client.lookup(&ids(&[1, 2, 3])).unwrap(), ids(&[1, 2]));

    // A script whose statements land on two shards is rejected before any
    // side effect.
    let split = format!(
        "BEGIN; INSERT INTO masks VALUES {}; INSERT INTO masks VALUES {}; COMMIT",
        tuple_for(10, img0),
        tuple_for(11, img1),
    );
    let e = client
        .query(&split)
        .expect_err("cross-shard script must fail");
    assert!(format!("{e}").contains("cross-shard transaction"), "{e}");
    assert_eq!(client.lookup(&ids(&[10, 11])).unwrap(), ids(&[]));

    // DDL cannot ride inside a script (it must broadcast to every shard).
    let e = client
        .query("BEGIN; CREATE INDEX by_model ON masks (model_id); COMMIT")
        .expect_err("DDL in a script must fail");
    assert!(format!("{e}").contains("DDL inside a transaction"), "{e}");

    // An unknown mask id fails the whole script; resolving it cost the one
    // LOOKUP broadcast the owner index could not answer.
    let e = client
        .query("BEGIN; DELETE FROM masks WHERE mask_id IN (99); COMMIT")
        .expect_err("unknown mask must fail the script");
    assert!(format!("{e}").contains("99"), "{e}");

    // Interactive control statements do not route on a cluster.
    let e = client.query("BEGIN").expect_err("bare BEGIN must fail");
    assert!(format!("{e}").contains("BEGIN"), "{e}");

    let metrics = coordinator.metrics();
    assert_eq!(metrics.transactions, 1, "{metrics:?}");
    assert_eq!(metrics.masks_updated, 1, "{metrics:?}");
    assert_eq!(metrics.lookup_broadcasts, 1, "{metrics:?}");
    assert!(metrics.owner_resolutions >= 1, "{metrics:?}");

    client.quit().unwrap();
    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}
