//! End-to-end temporal-observability acceptance tests:
//!
//! 1. A mixed workload (filter, top-k, aggregation, pair — with the tiled
//!    kernel on and off) captured over TCP by the flight recorder replays
//!    against a checkpointed-and-reopened store with every response digest
//!    and per-shape counter sum reproduced exactly.
//! 2. Replayed statements produce result frames byte-identical to the
//!    captured run (only `wall_us` masked), and a recorder-enabled server's
//!    wire output is byte-identical to a recorder-off server's.
//! 3. `MONITOR` metric deltas summed over a subscription equal the final
//!    cumulative `STATS` counters — on a single node and through a 4-shard
//!    coordinator.
//! 4. `METRICS WINDOW <secs>` emits validating Prometheus gauges on both
//!    front ends, and the windowed gauges fold into the full `METRICS`
//!    exposition.
//! 5. The slow-query log writes JSON lines to its configured file.

use masksearch::cluster::{ClusterConfig, Coordinator, CoordinatorServer, ShardMap};
use masksearch::core::{ImageId, Mask, MaskId, MaskRecord};
use masksearch::db::{DbConfig, MaskDb};
use masksearch::index::ChiConfig;
use masksearch::obs::{keys, prom, read_recording, RecordedQuery};
use masksearch::query::{IndexingMode, Session, SessionConfig};
use masksearch::service::protocol::{self, Frame};
use masksearch::service::{Client, Engine, Server, ServerHandle, ServiceConfig, ServiceError};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const W: u32 = 16;
const H: u32 = 16;

fn mask_for(id: u64) -> Mask {
    let mut state = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    Mask::from_fn(W, H, move |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f32) / (1u64 << 24) as f32
    })
}

fn record_for(id: u64) -> MaskRecord {
    MaskRecord::builder(MaskId::new(id))
        .image_id(ImageId::new(id / 2))
        .shape(W, H)
        .build()
}

fn session_config(kernel: bool) -> SessionConfig {
    SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
        .threads(2)
        .indexing_mode(IndexingMode::Eager)
        .tiled_kernel(kernel)
}

fn session_over(ids: &[u64], kernel: bool) -> Session {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for &id in ids {
        store.put(MaskId::new(id), &mask_for(id)).unwrap();
        catalog.insert(record_for(id));
    }
    Session::new(store as Arc<dyn MaskStore>, catalog, session_config(kernel)).unwrap()
}

fn filter_sql() -> String {
    format!(
        "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.5, 1.0)) > {}",
        W * H / 2
    )
}

fn topk_sql() -> String {
    "SELECT mask_id, CP(mask, (0, 0, 8, 8), (0.5, 1.0)) AS s \
     FROM masks ORDER BY s DESC LIMIT 5"
        .to_string()
}

fn insert_sql(mask_id: u64) -> String {
    let pixels: Vec<String> = (0..16).map(|i| format!("{}", i as f32 / 16.0)).collect();
    format!(
        "INSERT INTO masks VALUES ({mask_id}, 424242, 4, 4, ({}))",
        pixels.join(", ")
    )
}

/// `key=value` token lookup on one rendered control/metric line.
fn token_value(line: &str, key: &str) -> Option<u64> {
    line.split_ascii_whitespace()
        .find_map(|t| t.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.parse().ok())
}

/// Blanks the digits of every `wall_us=<n>` token (the only part of a
/// response frame that varies run to run).
fn normalize_wall(frame: &str) -> String {
    let mut out = String::with_capacity(frame.len());
    let mut rest = frame;
    while let Some(i) = rest.find("wall_us=") {
        let after = &rest[i + "wall_us=".len()..];
        let digits = after.chars().take_while(char::is_ascii_digit).count();
        out.push_str(&rest[..i + "wall_us=".len()]);
        out.push('N');
        rest = &after[digits..];
    }
    out.push_str(rest);
    out
}

/// One raw request → raw frame round trip, no client-side parsing.
fn raw_frame(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    writeln!(stream, "{request}").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut frame = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            panic!("connection closed mid-frame");
        }
        frame.push_str(&line);
        if line.trim_end() == "END" {
            return frame;
        }
    }
}

/// Digest of a replayed response, mirroring the server-side recorder.
/// `Remote` carries the peer's wire message verbatim, which is exactly what
/// the server digested for an error.
fn replay_digest(result: &Result<Frame, ServiceError>) -> Option<u64> {
    match result {
        Ok(Frame::Rows(wire)) => Some(protocol::digest_wire_response(wire)),
        Ok(Frame::Plan(lines)) => Some(protocol::digest_plan_lines(lines)),
        Ok(_) => None,
        Err(ServiceError::Remote(msg)) => Some(protocol::digest_error_message(msg)),
        Err(_) => None,
    }
}

/// Counter summary of a replayed frame in recorder order
/// (`candidates, pruned, verified, loaded, inserted, deleted`).
fn replay_counters(result: &Result<Frame, ServiceError>) -> [u64; 6] {
    match result {
        Ok(Frame::Rows(wire)) => [
            wire.summary.candidates,
            wire.summary.pruned,
            wire.summary.verified,
            wire.summary.loaded,
            wire.summary.inserted,
            wire.summary.deleted,
        ],
        _ => [0; 6],
    }
}

/// The request line that re-issues a recorded statement (tokened mutations
/// get a fresh token so the dedup registry can't answer for the replay).
fn request_line(record: &RecordedQuery, fresh_token: u64) -> String {
    match record.kind {
        masksearch::obs::RecordKind::Statement => record.sql.clone(),
        masksearch::obs::RecordKind::Tokened => format!("TOKEN {fresh_token} {}", record.sql),
        masksearch::obs::RecordKind::Partial => format!("PARTIAL K={} {}", record.aux, record.sql),
    }
}

/// Replays `records` in order on one connection; asserts every digest
/// matches and accumulates replayed counters per recorded shape.
fn replay_and_check(
    records: &[RecordedQuery],
    addr: SocketAddr,
    shape_sums: &mut BTreeMap<String, [u64; 6]>,
) {
    let mut client = Client::connect(addr).unwrap();
    for (i, record) in records.iter().enumerate() {
        let line = request_line(record, 0x5EED_0000 + i as u64);
        let result = client.round_trip_raw(&line);
        assert_eq!(
            replay_digest(&result),
            Some(record.digest),
            "digest diverged for {:?} [{}]",
            record.shape,
            record.sql
        );
        let entry = shape_sums.entry(record.shape.clone()).or_default();
        for (slot, v) in entry.iter_mut().zip(replay_counters(&result)) {
            *slot += v;
        }
    }
}

/// A session over the durable database's own store, catalog, and CHI store.
fn durable_session(db: &MaskDb, kernel: bool) -> Session {
    Session::with_store_maintained_index(
        db.mask_store(),
        db.catalog(),
        session_config(kernel),
        db.chi_store(),
    )
}

fn db_config() -> DbConfig {
    DbConfig::default()
        .page_size(1024)
        .chi_config(ChiConfig::new(4, 4, 8).unwrap())
}

/// The acceptance cycle: capture a mixed workload (kernel on, then kernel
/// off appended to the same recording) against a durable store over TCP,
/// checkpoint and reopen the store, and replay both segments — every
/// response digest and per-shape counter sum must be reproduced exactly.
#[test]
fn captured_workload_replays_exactly_against_reopened_store() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("masksearch-flight-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let flight = std::env::temp_dir().join(format!(
        "masksearch-flight-e2e-{}.flight",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&flight);

    let pair_sql = "SELECT image_id, CP(INTERSECT(mask > 0.7), full, (0.7, 1.0)) AS s \
                    FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 5";
    let agg_sql = format!(
        "SELECT image_id, AVG(CP(mask, (0, 0, {W}, {H}), (0.5, 1.0))) AS s \
         FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 4"
    );
    // Mutations net to zero within each segment so the store that capture
    // leaves behind equals the store each statement saw at capture time.
    let kernel_on_workload = vec![
        filter_sql(),
        topk_sql(),
        pair_sql.to_string(),
        agg_sql.clone(),
        format!("EXPLAIN ANALYZE {}", filter_sql()),
        format!("TOKEN 7001 {}", insert_sql(999_983)),
        "TOKEN 7002 DELETE FROM masks WHERE mask_id IN (999983)".to_string(),
        format!("PARTIAL K=3 {}", topk_sql()),
        "SELECT bogus FROM masks".to_string(),
    ];
    let kernel_off_workload = vec![
        format!(
            "SELECT mask_id FROM masks WHERE CP(mask, (4, 4, 12, 12), (0.6, 1.0)) > {}",
            W * H / 8
        ),
        pair_sql.to_string(),
        format!("EXPLAIN {}", filter_sql()),
        insert_sql(999_991),
        "DELETE FROM masks WHERE mask_id IN (999991)".to_string(),
    ];

    let mut seeded = false;
    let mut segment_lens = Vec::new();
    {
        let db = MaskDb::open(&dir, db_config()).unwrap();
        for (kernel, workload) in [(true, &kernel_on_workload), (false, &kernel_off_workload)] {
            let session = durable_session(&db, kernel);
            if !seeded {
                let batch: Vec<(MaskRecord, Mask)> =
                    (0..24).map(|i| (record_for(i), mask_for(i))).collect();
                session.insert_masks(&batch).unwrap();
                seeded = true;
            }
            let engine = Engine::new(session, ServiceConfig::new(2));
            let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
            let mut client = Client::connect(handle.local_addr()).unwrap();
            client.record_start(Some(flight.to_str().unwrap())).unwrap();
            for sql in workload {
                let _ = client.round_trip_raw(sql); // the bogus statement errs
            }
            let status = client.record_stop().unwrap();
            assert_eq!(token_value(&status, "dropped"), Some(0));
            segment_lens.push(workload.len());
            handle.shutdown();
        }
        db.checkpoint().unwrap();
    }

    let records = read_recording(&flight).unwrap();
    assert_eq!(
        records.len(),
        kernel_on_workload.len() + kernel_off_workload.len(),
        "the second RECORD START must append to the recording"
    );
    let mut recorded_sums: BTreeMap<String, [u64; 6]> = BTreeMap::new();
    for record in &records {
        let entry = recorded_sums.entry(record.shape.clone()).or_default();
        for (slot, v) in entry.iter_mut().zip(record.counters) {
            *slot += v;
        }
    }
    // The mixed workload covers every shape class the recorder names.
    for shape in ["explain", "insert", "delete", "error"] {
        assert!(recorded_sums.contains_key(shape), "missing shape {shape}");
    }

    // Replay each segment against a cold server over the reopened store,
    // with the kernel setting the segment was captured under, so the replay
    // observes the same cache and index state capture did.
    let db = MaskDb::open(&dir, db_config()).unwrap();
    let mut replayed_sums: BTreeMap<String, [u64; 6]> = BTreeMap::new();
    let (seg1, seg2) = records.split_at(segment_lens[0]);
    for (kernel, segment) in [(true, seg1), (false, seg2)] {
        let engine = Engine::new(durable_session(&db, kernel), ServiceConfig::new(2));
        let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
        replay_and_check(segment, handle.local_addr(), &mut replayed_sums);
        handle.shutdown();
    }
    assert_eq!(
        replayed_sums, recorded_sums,
        "per-shape counter sums must be reproduced"
    );

    drop(db);
    let _ = std::fs::remove_file(&flight);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replaying a recording against an identically seeded cold server yields
/// result frames byte-identical to the captured run, `wall_us` aside.
#[test]
fn replayed_frames_are_byte_identical_modulo_wall_time() {
    let ids: Vec<u64> = (0..24).collect();
    let flight = std::env::temp_dir().join(format!(
        "masksearch-flight-bytes-{}.flight",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&flight);
    let workload = [
        filter_sql(),
        topk_sql(),
        insert_sql(999_987),
        "DELETE FROM masks WHERE mask_id IN (999987)".to_string(),
        format!("EXPLAIN ANALYZE {}", topk_sql()),
    ];

    let engine = Engine::new(session_over(&ids, true), ServiceConfig::new(2));
    let capture = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
    let mut client = Client::connect(capture.local_addr()).unwrap();
    client.record_start(Some(flight.to_str().unwrap())).unwrap();
    let captured: Vec<String> = workload
        .iter()
        .map(|sql| raw_frame(capture.local_addr(), sql))
        .collect();
    client.record_stop().unwrap();
    capture.shutdown();

    let records = read_recording(&flight).unwrap();
    assert_eq!(records.len(), workload.len());
    let engine = Engine::new(session_over(&ids, true), ServiceConfig::new(2));
    let replay = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
    for (record, captured_frame) in records.iter().zip(&captured) {
        let replayed_frame = raw_frame(replay.local_addr(), &record.sql);
        assert_eq!(
            normalize_wall(&replayed_frame),
            normalize_wall(captured_frame),
            "frame diverged for {}",
            record.sql
        );
    }
    replay.shutdown();
    let _ = std::fs::remove_file(&flight);
}

/// A recorder-enabled server answers with wire output byte-identical to a
/// recorder-off server's — capture must not perturb what clients see.
#[test]
fn recorder_leaves_wire_output_byte_identical() {
    let ids: Vec<u64> = (0..24).collect();
    let sql = filter_sql();
    let record_path = std::env::temp_dir().join(format!(
        "masksearch-flight-ident-{}.flight",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&record_path);
    let mut frames = Vec::new();
    for recording in [true, false] {
        let mut config = ServiceConfig::new(2);
        if recording {
            config = config.record_to(&record_path);
        }
        let engine = Engine::new(session_over(&ids, true), config);
        let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
        // Warm-up so both servers answer from identical cache state.
        raw_frame(handle.local_addr(), &sql);
        frames.push((
            raw_frame(handle.local_addr(), &sql),
            raw_frame(handle.local_addr(), "SELECT bogus FROM masks"),
        ));
        handle.shutdown();
    }
    assert_eq!(normalize_wall(&frames[0].0), normalize_wall(&frames[1].0));
    assert_eq!(frames[0].1, frames[1].1, "error frames are timing-free");
    // And the recorder did capture the recorded server's traffic.
    let records = read_recording(&record_path).unwrap();
    assert_eq!(records.len(), 3);
    let _ = std::fs::remove_file(&record_path);
}

/// Sums one `MONITOR` subscription's deltas per key.
fn sum_deltas(frames: &[(u64, Vec<(String, u64)>)]) -> BTreeMap<String, u64> {
    let mut sums = BTreeMap::new();
    for (i, (seq, deltas)) in frames.iter().enumerate() {
        assert_eq!(*seq, i as u64, "delta frames arrive in sequence");
        for (key, value) in deltas {
            *sums.entry(key.clone()).or_insert(0) += value;
        }
    }
    sums
}

fn assert_deltas_equal_stats(sums: &BTreeMap<String, u64>, stats: &str) {
    for key in keys::MONITOR_DELTA_KEYS {
        assert_eq!(
            sums.get(key).copied().unwrap_or(0),
            token_value(stats, key).unwrap_or_else(|| panic!("{key} missing from {stats}")),
            "summed MONITOR deltas diverge from STATS for {key}"
        );
    }
}

#[test]
fn monitor_deltas_sum_to_final_stats_single_node() {
    let engine = Engine::new(session_over(&(0..24).collect::<Vec<_>>(), true), {
        ServiceConfig::new(2)
    });
    let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.query(&filter_sql()).unwrap();
    client.query(&topk_sql()).unwrap();
    client.query(&insert_sql(999_985)).unwrap();
    client
        .query("DELETE FROM masks WHERE mask_id IN (999985)")
        .unwrap();
    // A second delete of the same id fails at execution time, so the
    // `failed` counter moves too (a parse error never reaches a worker).
    let _ = client.round_trip_raw("DELETE FROM masks WHERE mask_id IN (999985)");

    // The subscription baseline is server-zero, so frame 0 carries the
    // cumulative counters and later (quiescent) frames all-zero deltas —
    // the sum equals the final STATS exactly.
    let frames = client.monitor(3, 10).unwrap();
    let sums = sum_deltas(&frames);
    assert!(sums.get(keys::COMPLETED).copied().unwrap_or(0) >= 2);
    assert!(sums.get(keys::MUTATIONS).copied().unwrap_or(0) >= 2);
    assert!(sums.get(keys::FAILED).copied().unwrap_or(0) >= 1);
    assert_eq!(sums.get(keys::INSERTED).copied(), Some(1));
    assert_eq!(sums.get(keys::DELETED).copied(), Some(1));
    let stats = client.stats().unwrap();
    assert_deltas_equal_stats(&sums, &stats);
    handle.shutdown();
}

struct TestCluster {
    _servers: Vec<ServerHandle>,
    coordinator: Coordinator,
}

fn cluster(num_shards: usize, ids: &[u64]) -> TestCluster {
    let map = ShardMap::new(num_shards).unwrap();
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); num_shards];
    for &id in ids {
        per_shard[map.shard_for_record(&record_for(id))].push(id);
    }
    let servers: Vec<ServerHandle> = per_shard
        .iter()
        .map(|shard_ids| {
            let engine = Engine::new(session_over(shard_ids, true), ServiceConfig::new(2));
            Server::bind("127.0.0.1:0", engine).unwrap().spawn()
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let coordinator = Coordinator::connect(ClusterConfig::new(addrs)).unwrap();
    TestCluster {
        _servers: servers,
        coordinator,
    }
}

#[test]
fn monitor_deltas_sum_to_final_stats_across_a_cluster() {
    let ids: Vec<u64> = (0..40).collect();
    let test = cluster(4, &ids);
    let front = CoordinatorServer::bind("127.0.0.1:0", test.coordinator.clone())
        .unwrap()
        .spawn();
    let mut client = Client::connect(front.local_addr()).unwrap();
    client.query(&filter_sql()).unwrap();
    client.query(&topk_sql()).unwrap();

    let frames = client.monitor(2, 10).unwrap();
    let sums = sum_deltas(&frames);
    // Each broadcast touched all 4 shards; the cluster-wide counter is the
    // shard sum.
    assert!(sums.get(keys::COMPLETED).copied().unwrap_or(0) >= 8);
    let stats = client.stats().unwrap();
    assert_deltas_equal_stats(&sums, &stats);
    front.shutdown();
}

#[test]
fn metrics_window_exposes_windowed_gauges_on_both_front_ends() {
    let ids: Vec<u64> = (0..24).collect();
    let engine = Engine::new(session_over(&ids, true), ServiceConfig::new(2));
    let handle = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    for _ in 0..3 {
        client.query(&filter_sql()).unwrap();
    }
    let text = client.metrics_window(60).unwrap();
    prom::validate(&text).expect("windowed exposition validates");
    let queries_line = text
        .lines()
        .find(|l| l.starts_with("masksearch_window_queries{window_s=\"60\"}"))
        .expect("windowed query count gauge");
    let count: f64 = queries_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(
        count >= 3.0,
        "window covers the statements just run: {text}"
    );
    // The windowed gauges also fold into the full exposition.
    let full = client.metrics().unwrap();
    prom::validate(&full).expect("full exposition still validates");
    assert!(full.contains("masksearch_window_qps{window_s=\"60\"}"));
    assert!(full.contains("masksearch_window_qps{window_s=\"300\"}"));
    handle.shutdown();

    let test = cluster(4, &ids);
    let front = CoordinatorServer::bind("127.0.0.1:0", test.coordinator.clone())
        .unwrap()
        .spawn();
    let mut client = Client::connect(front.local_addr()).unwrap();
    client.query(&filter_sql()).unwrap();
    let text = client.metrics_window(60).unwrap();
    prom::validate(&text).expect("coordinator windowed exposition validates");
    assert!(text.contains("masksearch_window_queries{window_s=\"60\"}"));
    front.shutdown();
}

#[test]
fn slow_query_log_writes_to_configured_file() {
    let path =
        std::env::temp_dir().join(format!("masksearch-slowlog-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = ServiceConfig::new(1)
        .slow_query(Duration::ZERO)
        .slow_query_path(&path);
    let engine = Engine::new(session_over(&(0..12).collect::<Vec<_>>(), true), config);
    engine.execute_sql(&filter_sql()).unwrap();
    assert!(engine.slow_log().logged() >= 1);
    let written = std::fs::read_to_string(&path).unwrap();
    let line = written.lines().next().expect("one JSON line per entry");
    assert!(line.starts_with("{\"slow_query\":true,"), "got {line}");
    assert!(line.contains("\"statement\":\"SELECT mask_id FROM masks"));
    assert!(line.contains("\"counters\":{"));
    let _ = std::fs::remove_file(&path);
}
