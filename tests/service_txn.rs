//! Interactive transactions over the wire (protocol v7): a bare `BEGIN`
//! opens a per-connection buffer, DML buffers into it without touching the
//! store, `COMMIT` applies everything as one atomic transaction, and
//! `ROLLBACK` — or the connection dropping for any reason — discards it.

use masksearch::core::{Mask, MaskId};
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Session, SessionConfig};
use masksearch::service::{Client, Engine, Server, ServerHandle, ServiceConfig};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use std::sync::Arc;

const W: u32 = 4;

fn spawn_server() -> ServerHandle {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let session = Session::new(
        store as Arc<dyn MaskStore>,
        Catalog::new(),
        SessionConfig::new(ChiConfig::new(2, 2, 4).unwrap())
            .threads(1)
            .indexing_mode(IndexingMode::Eager),
    )
    .unwrap();
    Server::bind("127.0.0.1:0", Engine::new(session, ServiceConfig::new(2)))
        .unwrap()
        .spawn()
}

fn tuple(id: u64) -> String {
    let mask = Mask::from_fn(W, W, move |x, y| {
        ((x * 5 + y * 3 + id as u32) % 7) as f32 / 7.0
    });
    let pixels: Vec<String> = mask.data().iter().map(|v| format!("{v}")).collect();
    format!("({id}, {}, {W}, {W}, ({}))", id / 2, pixels.join(", "))
}

fn insert(id: u64) -> String {
    format!("INSERT INTO masks VALUES {}", tuple(id))
}

fn present(client: &mut Client, upto: u64) -> Vec<u64> {
    let ids: Vec<MaskId> = (0..upto).map(MaskId::new).collect();
    client
        .lookup(&ids)
        .unwrap()
        .into_iter()
        .map(|id| id.raw())
        .collect()
}

fn err_of(result: masksearch::service::ServiceResult<impl std::fmt::Debug>) -> String {
    format!("{}", result.expect_err("statement must be rejected"))
}

#[test]
fn interactive_transactions_buffer_commit_and_roll_back() {
    let server = spawn_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Buffered statements acknowledge with a zero outcome; nothing is
    // visible before COMMIT.
    assert_eq!(client.query("BEGIN").unwrap().summary.inserted, 0);
    assert_eq!(client.query(&insert(0)).unwrap().summary.inserted, 0);
    assert_eq!(client.query(&insert(1)).unwrap().summary.inserted, 0);

    // The buffer rejects what cannot run inside a transaction, and stays
    // open across those errors.
    let e = err_of(client.query("SELECT mask_id FROM masks WHERE CP(mask, full, (0.0, 1.0)) > 0"));
    assert!(e.contains("queries are not allowed"), "{e}");
    let e = err_of(client.query("BEGIN"));
    assert!(e.contains("transactions do not nest"), "{e}");
    let e = err_of(client.query(&format!("{}; {}", insert(2), insert(3))));
    assert!(e.contains("finish the open transaction"), "{e}");

    // COMMIT applies the whole buffer; its outcome is the transaction's sum.
    let commit = client.query("COMMIT").unwrap();
    assert_eq!(commit.summary.inserted, 2);
    assert_eq!(present(&mut client, 8), vec![0, 1]);

    // Control statements without an open transaction fail loudly.
    let e = err_of(client.query("COMMIT"));
    assert!(e.contains("no open transaction"), "{e}");
    let e = err_of(client.query("ROLLBACK"));
    assert!(e.contains("no open transaction"), "{e}");

    // ROLLBACK discards the buffer without touching the store.
    client.query("BEGIN").unwrap();
    client.query(&insert(4)).unwrap();
    client
        .query("DELETE FROM masks WHERE mask_id IN (0)")
        .unwrap();
    assert_eq!(client.query("ROLLBACK").unwrap().summary.deleted, 0);
    assert_eq!(present(&mut client, 8), vec![0, 1]);

    // A transaction mixing INSERT, UPDATE, and DELETE commits its net
    // effect atomically — later statements observe earlier ones.
    client.query("BEGIN").unwrap();
    client.query(&insert(4)).unwrap();
    client
        .query("UPDATE masks SET model_id = 7 WHERE mask_id = 4")
        .unwrap();
    client
        .query("DELETE FROM masks WHERE mask_id IN (1)")
        .unwrap();
    let commit = client.query("COMMIT").unwrap();
    assert_eq!(commit.summary.inserted, 1);
    assert_eq!(commit.summary.updated, 1);
    assert_eq!(commit.summary.deleted, 1);
    assert_eq!(present(&mut client, 8), vec![0, 4]);

    // One-line `BEGIN; …; COMMIT` scripts take the engine's atomic script
    // path when no interactive transaction is open.
    let script = format!("BEGIN; {}; {}; COMMIT", insert(5), insert(6));
    assert_eq!(client.query(&script).unwrap().summary.inserted, 2);
    assert_eq!(present(&mut client, 8), vec![0, 4, 5, 6]);

    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn dropping_the_connection_rolls_an_open_transaction_back() {
    let server = spawn_server();

    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.query(&insert(0)).unwrap().summary.inserted, 1);
    client.query("BEGIN").unwrap();
    client.query(&insert(1)).unwrap();
    client
        .query("DELETE FROM masks WHERE mask_id IN (0)")
        .unwrap();
    // QUIT with the transaction still open: rollback by default.
    client.quit().unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(present(&mut client, 4), vec![0]);

    // A severed socket (no QUIT) rolls back the same way.
    let mut doomed = Client::connect(server.local_addr()).unwrap();
    doomed.query("BEGIN").unwrap();
    doomed.query(&insert(2)).unwrap();
    drop(doomed);
    assert_eq!(present(&mut client, 4), vec![0]);

    client.quit().unwrap();
    server.shutdown();
}
