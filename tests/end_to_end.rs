//! End-to-end integration tests spanning every crate: dataset generation,
//! indexing, all four query shapes, every engine, persistence, and the
//! incremental-indexing session lifecycle.

use masksearch::baselines::{BruteForce, MaskSearchEngine, QueryEngine};
use masksearch::core::{MaskAgg, PixelRange, Roi};
use masksearch::datagen::{DatasetSpec, ExplorationWorkload, RandomQueryGenerator};
use masksearch::index::ChiConfig;
use masksearch::query::{
    CpTerm, Expr, IndexingMode, Order, Query, ScalarAgg, Selection, Session, SessionConfig,
};
use masksearch::storage::{DiskProfile, MaskEncoding, MaskStore, MemoryMaskStore};
use std::sync::Arc;

struct TestDb {
    store: Arc<MemoryMaskStore>,
    dataset: masksearch::datagen::GeneratedDataset,
    chi: ChiConfig,
}

fn test_db(images: u64, side: u32) -> TestDb {
    let spec = DatasetSpec {
        name: "integration".to_string(),
        num_images: images,
        models: 2,
        mask_width: side,
        mask_height: side,
        num_classes: 6,
        seed: 31,
        focus_probability: 0.7,
    };
    let store = Arc::new(MemoryMaskStore::new(
        MaskEncoding::Raw,
        DiskProfile::unthrottled(),
    ));
    let dataset = spec.generate_into(store.as_ref()).unwrap();
    TestDb {
        store,
        dataset,
        chi: ChiConfig::new((side / 8).max(1), (side / 8).max(1), 16).unwrap(),
    }
}

impl TestDb {
    fn session(&self, mode: IndexingMode) -> Session {
        Session::new(
            Arc::clone(&self.store) as Arc<dyn MaskStore>,
            self.dataset.catalog.clone(),
            SessionConfig::new(self.chi).indexing_mode(mode),
        )
        .unwrap()
    }

    /// Brute-force oracle: evaluates the query by loading every mask.
    fn oracle(&self, query: &Query) -> Vec<masksearch::query::ResultRow> {
        let mut bf = BruteForce::new(&self.dataset.catalog, query);
        for id in self.dataset.catalog.mask_ids() {
            if bf.is_candidate(id) {
                let mask = self.store.get(id).unwrap();
                bf.consume(id, &mask).unwrap();
            }
        }
        bf.finish().unwrap()
    }
}

fn paper_style_queries(side: u32) -> Vec<(&'static str, Query)> {
    let area = (side * side) as f64;
    let roi = Roi::new(side / 5, side / 5, side * 4 / 5, side * 4 / 5).unwrap();
    vec![
        (
            "q1_filter_constant_roi",
            Query::filter_cp_gt(roi, PixelRange::new(0.6, 1.0).unwrap(), area * 0.05),
        ),
        (
            "q2_filter_object_roi",
            Query::filter_object_cp_gt(PixelRange::new(0.8, 1.0).unwrap(), area * 0.01),
        ),
        (
            "q3_topk_constant_roi",
            Query::top_k_cp(roi, PixelRange::new(0.8, 1.0).unwrap(), 10, Order::Desc),
        ),
        (
            "q4_topk_images_by_mean",
            Query::aggregate(
                Expr::cp_object(PixelRange::new(0.8, 1.0).unwrap()),
                ScalarAgg::Avg,
            )
            .with_group_top_k(10, Order::Desc),
        ),
        (
            "q5_topk_images_by_intersection",
            Query::mask_aggregate(
                MaskAgg::IntersectThreshold { threshold: 0.8 },
                CpTerm::object_roi(PixelRange::new(0.8, 1.0).unwrap()),
            )
            .with_group_top_k(10, Order::Desc),
        ),
        (
            "ratio_topk_ascending",
            Query::top_k(
                Expr::cp_object(PixelRange::new(0.85, 1.0).unwrap())
                    .div(Expr::cp_full(PixelRange::new(0.85, 1.0).unwrap())),
                10,
                Order::Asc,
            ),
        ),
    ]
}

#[test]
fn masksearch_matches_the_oracle_on_all_query_shapes() {
    let db = test_db(40, 48);
    let eager = db.session(IndexingMode::Eager);
    let incremental = db.session(IndexingMode::Incremental);
    for (label, query) in paper_style_queries(48) {
        let expected: Vec<_> = db.oracle(&query).iter().map(|r| r.key).collect();
        let got_eager: Vec<_> = eager
            .execute(&query)
            .unwrap()
            .rows
            .iter()
            .map(|r| r.key)
            .collect();
        assert_eq!(got_eager, expected, "eager session diverged on {label}");
        let got_incr: Vec<_> = incremental
            .execute(&query)
            .unwrap()
            .rows
            .iter()
            .map(|r| r.key)
            .collect();
        assert_eq!(
            got_incr, expected,
            "incremental session diverged on {label}"
        );
    }
}

#[test]
fn all_engines_agree_and_masksearch_loads_fewer_masks() {
    let db = test_db(30, 48);
    let ms = MaskSearchEngine::new(db.session(IndexingMode::Eager));
    let numpy = masksearch::baselines::NumpyEngine::new(
        Arc::clone(&db.store) as Arc<dyn MaskStore>,
        db.dataset.catalog.clone(),
    );
    let tmp = std::env::temp_dir().join(format!("masksearch-it-{}", std::process::id()));
    let heap = masksearch::baselines::copy_to_row_store(
        db.store.as_ref(),
        tmp.with_extension("heap"),
        DiskProfile::unthrottled(),
    )
    .unwrap();
    let pg = masksearch::baselines::PostgresEngine::new(heap, db.dataset.catalog.clone());
    let array = masksearch::baselines::copy_to_array_store(
        db.store.as_ref(),
        tmp.with_extension("arr"),
        DiskProfile::unthrottled(),
    )
    .unwrap();
    let tiledb = masksearch::baselines::TileDbEngine::new(array, db.dataset.catalog.clone());

    for (label, query) in paper_style_queries(48) {
        let reference = numpy.execute(&query).unwrap();
        let reference_keys: Vec<_> = reference.output.rows.iter().map(|r| r.key).collect();
        for engine in [&ms as &dyn QueryEngine, &pg, &tiledb] {
            let report = engine.execute(&query).unwrap();
            let keys: Vec<_> = report.output.rows.iter().map(|r| r.key).collect();
            assert_eq!(
                keys,
                reference_keys,
                "{} diverged on {label}",
                engine.name()
            );
        }
        let ms_report = ms.execute(&query).unwrap();
        assert!(
            ms_report.stats().masks_loaded <= reference.stats().masks_loaded,
            "{label}: MaskSearch loaded more masks than NumPy"
        );
    }

    let _ = std::fs::remove_file(tmp.with_extension("heap"));
    let _ = std::fs::remove_file(tmp.with_extension("arr"));
    let _ = std::fs::remove_file(format!("{}.dir", tmp.with_extension("arr").display()));
}

#[test]
fn index_persists_across_sessions() {
    let db = test_db(12, 32);
    let query = Query::filter_object_cp_gt(PixelRange::new(0.8, 1.0).unwrap(), 10.0);

    // Session 1: incremental indexing, run a query, persist the index.
    let session1 = db.session(IndexingMode::Incremental);
    let first = session1.execute(&query).unwrap();
    assert_eq!(first.stats.masks_loaded, 24);
    let path = std::env::temp_dir().join(format!("masksearch-it-index-{}.idx", std::process::id()));
    session1.persist_index(&path).unwrap();

    // Session 2: load the persisted index; the same query now loads fewer
    // masks and returns the same result.
    let chi = Session::load_index_file(&path).unwrap();
    assert_eq!(chi.len(), 24);
    let session2 = Session::with_index(
        Arc::clone(&db.store) as Arc<dyn MaskStore>,
        db.dataset.catalog.clone(),
        SessionConfig::new(db.chi).indexing_mode(IndexingMode::Incremental),
        chi,
    );
    let second = session2.execute(&query).unwrap();
    assert_eq!(second.mask_ids(), first.mask_ids());
    assert!(second.stats.masks_loaded < first.stats.masks_loaded);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn exploration_workload_results_are_mode_independent() {
    let db = test_db(25, 32);
    let all = db.dataset.catalog.mask_ids();
    let mut generator = RandomQueryGenerator::new(2, 32, 32);
    let workload = ExplorationWorkload::generate("w", &all, 12, 0.5, &mut generator, 9);

    let eager = db.session(IndexingMode::Eager);
    let incremental = db.session(IndexingMode::Incremental);
    let disabled = db.session(IndexingMode::Disabled);
    let mut incremental_loads = 0;
    let mut disabled_loads = 0;
    for wq in &workload.queries {
        let a = eager.execute(&wq.query).unwrap();
        let b = incremental.execute(&wq.query).unwrap();
        let c = disabled.execute(&wq.query).unwrap();
        assert_eq!(a.mask_ids(), b.mask_ids());
        assert_eq!(a.mask_ids(), c.mask_ids());
        incremental_loads += b.stats.masks_loaded;
        disabled_loads += c.stats.masks_loaded;
    }
    // Incremental indexing pays off across the workload: repeated targets are
    // answered from the index instead of being re-loaded.
    assert!(incremental_loads < disabled_loads);
}

#[test]
fn selections_compose_with_query_execution() {
    let db = test_db(20, 32);
    let session = db.session(IndexingMode::Eager);
    let model1 = Selection::all().with_model(masksearch::core::ModelId::new(1));
    let query = Query::filter_cp_gt(Roi::new(0, 0, 32, 32).unwrap(), PixelRange::full(), -1.0)
        .with_selection(model1);
    let out = session.execute(&query).unwrap();
    // Every model-1 mask trivially satisfies CP > -1.
    assert_eq!(out.len(), 20);
    assert_eq!(out.stats.candidates, 20);
    for id in out.mask_ids() {
        assert_eq!(
            db.dataset.catalog.get(id).unwrap().model_id,
            masksearch::core::ModelId::new(1)
        );
    }
}
