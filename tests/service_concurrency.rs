//! Concurrent-correctness tests for the serving layer (the acceptance
//! criteria of the `masksearch-service` subsystem):
//!
//! 1. N client threads issuing a mixed filter / top-k / aggregation workload
//!    against one `Engine` produce results identical to executing the same
//!    workload serially against a fresh `Session` — under both `Eager` and
//!    `Incremental` indexing.
//! 2. The TCP front end serves ≥ 8 concurrent clients running SQL-dialect
//!    queries with results identical to single-threaded `Session` execution.
//! 3. The batched multi-query API returns the same rows as serial execution
//!    while loading each shared mask once.

use masksearch::datagen::{DatasetSpec, RandomQueryGenerator};
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Query, QueryOutput, Session, SessionConfig};
use masksearch::service::{Client, Engine, Server, ServiceConfig};
use masksearch::storage::{MaskStore, MemoryMaskStore};
use std::sync::Arc;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 6;

/// Builds a fresh session over a deterministically generated dataset.
fn fresh_session(mode: IndexingMode) -> Session {
    let spec = DatasetSpec {
        name: "service-test".to_string(),
        num_images: 24,
        models: 2,
        mask_width: 32,
        mask_height: 32,
        num_classes: 4,
        seed: 1234,
        focus_probability: 0.7,
    };
    let store = Arc::new(MemoryMaskStore::for_tests());
    let dataset = spec
        .generate_into(store.as_ref())
        .expect("generate dataset");
    Session::new(
        store as Arc<dyn MaskStore>,
        dataset.catalog,
        SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap())
            .threads(2)
            .indexing_mode(mode),
    )
    .expect("session")
}

/// The mixed workload: per client, a deterministic sequence of filter,
/// top-k, and aggregation queries.
fn client_workloads() -> Vec<Vec<Query>> {
    (0..CLIENTS)
        .map(|client| {
            let mut generator = RandomQueryGenerator::new(100 + client as u64, 32, 32);
            (0..QUERIES_PER_CLIENT)
                .map(|i| match i % 3 {
                    0 => generator.filter_query(),
                    1 => generator.topk_query(),
                    _ => generator.aggregation_query(),
                })
                .collect()
        })
        .collect()
}

/// Serial reference: all queries in client order on one fresh session.
fn serial_reference(mode: IndexingMode, workloads: &[Vec<Query>]) -> Vec<Vec<QueryOutput>> {
    let session = fresh_session(mode);
    workloads
        .iter()
        .map(|queries| {
            queries
                .iter()
                .map(|q| session.execute(q).expect("serial query"))
                .collect()
        })
        .collect()
}

fn assert_concurrent_matches_serial(mode: IndexingMode) {
    let workloads = client_workloads();
    let expected = serial_reference(mode, &workloads);

    let engine = Engine::new(fresh_session(mode), ServiceConfig::new(4));
    let mut handles = Vec::new();
    for (client, queries) in workloads.into_iter().enumerate() {
        let engine = engine.clone();
        handles.push(std::thread::spawn(move || {
            let outputs: Vec<QueryOutput> = queries
                .iter()
                .map(|q| engine.execute(q).expect("served query").output)
                .collect();
            (client, outputs)
        }));
    }
    for handle in handles {
        let (client, outputs) = handle.join().expect("client thread");
        assert_eq!(outputs.len(), expected[client].len());
        for (i, (got, want)) in outputs.iter().zip(&expected[client]).enumerate() {
            assert_eq!(
                got.rows, want.rows,
                "client {client} query {i} diverged under {mode:?}"
            );
        }
    }
    let metrics = engine.metrics();
    assert_eq!(metrics.completed, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    assert_eq!(metrics.failed, 0);
    engine.shutdown();
}

#[test]
fn concurrent_engine_matches_serial_eager() {
    assert_concurrent_matches_serial(IndexingMode::Eager);
}

#[test]
fn concurrent_engine_matches_serial_incremental() {
    assert_concurrent_matches_serial(IndexingMode::Incremental);
}

/// The SQL statements the TCP clients run, parameterized per client so the
/// eight connections exercise different plans concurrently.
fn sql_workload(client: usize) -> Vec<String> {
    let t = 40 + 15 * client;
    let lo = [0.5f32, 0.6, 0.7, 0.8][client % 4];
    vec![
        format!(
            "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, 32, 32), ({lo}, 1.0)) > {t}"
        ),
        format!(
            "SELECT mask_id FROM masks WHERE CP(mask, (8, 8, 24, 24), ({lo}, 1.0)) > 20 AND model_id = {}",
            1 + client % 2
        ),
        format!(
            "SELECT mask_id, CP(mask, object, ({lo}, 1.0)) AS s FROM masks ORDER BY s DESC LIMIT {}",
            5 + client
        ),
        format!(
            "SELECT image_id, AVG(CP(mask, object, ({lo}, 1.0))) AS s FROM masks \
             GROUP BY image_id ORDER BY s DESC LIMIT {}",
            4 + client
        ),
    ]
}

#[test]
fn tcp_server_serves_eight_concurrent_sql_clients_correctly() {
    // Single-threaded reference: compile each statement and run it directly.
    let reference_session = fresh_session(IndexingMode::Eager);
    let expected: Vec<Vec<QueryOutput>> = (0..CLIENTS)
        .map(|client| {
            sql_workload(client)
                .iter()
                .map(|sql| {
                    let query = masksearch::sql::compile(sql).expect("compile");
                    reference_session.execute(&query).expect("reference query")
                })
                .collect()
        })
        .collect();

    let engine = Engine::new(fresh_session(IndexingMode::Eager), ServiceConfig::new(4));
    let server = Server::bind("127.0.0.1:0", engine).expect("bind").spawn();
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for client_id in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client.ping().expect("ping");
            let responses: Vec<_> = sql_workload(client_id)
                .iter()
                .map(|sql| client.query(sql).expect("query over tcp"))
                .collect();
            client.quit().expect("quit");
            (client_id, responses)
        }));
    }
    for handle in handles {
        let (client_id, responses) = handle.join().expect("tcp client thread");
        for (i, (got, want)) in responses.iter().zip(&expected[client_id]).enumerate() {
            assert_eq!(
                got.rows, want.rows,
                "tcp client {client_id} statement {i} diverged"
            );
            assert_eq!(got.summary.candidates, want.stats.candidates);
        }
    }

    let served = server.engine().metrics();
    assert_eq!(served.completed, (CLIENTS * 4) as u64);
    assert_eq!(served.failed, 0);
    server.shutdown();
}

#[test]
fn tcp_server_reports_sql_errors_without_dropping_the_connection() {
    let engine = Engine::new(fresh_session(IndexingMode::Eager), ServiceConfig::new(1));
    let server = Server::bind("127.0.0.1:0", engine).expect("bind").spawn();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(client.query("SELECT gibberish FROM nowhere").is_err());
    // The connection survives the error and serves the next query.
    let ok = client
        .query("SELECT mask_id FROM masks WHERE CP(mask, (0, 0, 32, 32), (0.0, 1.0)) > 0")
        .expect("query after error");
    assert!(!ok.rows.is_empty());
    let stats_line = client.stats().expect("stats");
    assert!(stats_line.starts_with("STATS "));
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn batched_workload_matches_serial_and_shares_loads() {
    // A batch of overlapping filter queries on a cold incremental session:
    // batching must load each needed mask at most once.
    let mut generator = RandomQueryGenerator::new(77, 32, 32);
    let queries: Vec<Query> = (0..6).map(|_| generator.filter_query()).collect();

    let serial_session = fresh_session(IndexingMode::Incremental);
    let expected: Vec<QueryOutput> = queries
        .iter()
        .map(|q| serial_session.execute(q).expect("serial"))
        .collect();

    let engine = Engine::new(
        fresh_session(IndexingMode::Incremental),
        ServiceConfig::new(2),
    );
    let batch = engine.execute_batch(queries).expect("batch");
    for (i, (got, want)) in batch.outputs.iter().zip(&expected).enumerate() {
        assert_eq!(got.rows, want.rows, "batched query {i} diverged");
    }
    // Sharing bound: the batch never loads more than the whole database.
    let total_masks = engine.session().catalog().len() as u64;
    assert!(batch.stats.masks_loaded <= total_masks);
    engine.shutdown();
}
