//! Differential property tests of the cost-based planner: for arbitrary
//! data and query shapes, a session planning in `Auto` mode must return
//! rows **byte-identical** to every fixed-strategy session (kernel forced
//! on/off × pair bounds-first/load-first), and repeated execution — which
//! feeds the shape-statistics registry and can flip the planner's choices
//! mid-stream — must never change a result.
//!
//! This is the executable form of the planner's core contract: every plan
//! choice is a cost decision, never a semantic one.

use masksearch::core::{
    ImageId, Mask, MaskId, MaskOp, MaskRecord, ModelId, PixelRange, Roi, TILE_BINS,
};
use masksearch::index::ChiConfig;
use masksearch::query::{
    CmpOp, Expr, IndexingMode, KernelMode, MaskJoin, Order, PairMode, Predicate, Query, RoiSpec,
    ScalarAgg, Selection, Session, SessionConfig,
};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use proptest::prelude::*;
use std::sync::Arc;

const W: u32 = 24;
const H: u32 = 24;
/// Executions per query per session: enough that the feedback loop matures
/// (`MIN_FEEDBACK_QUERIES = 3`) and planner choices can flip mid-run.
const REPS: usize = 5;

/// Deterministic per-id mask. Even ids are smooth blobs (tight CHI bounds,
/// kernel-friendly), odd ids are per-pixel noise (loose bounds, where the
/// planner should prefer the scan) — so auto kernel routing genuinely
/// diverges across masks within one query.
fn mask_for(id: u64, seed: u64) -> Mask {
    if id.is_multiple_of(2) {
        let r = 3.0 + ((id / 2 + seed) % 9) as f32;
        Mask::from_fn(W, H, move |x, y| {
            let dx = x as f32 - W as f32 / 2.0;
            let dy = y as f32 - H as f32 / 2.0;
            if (dx * dx + dy * dy).sqrt() < r {
                0.9
            } else {
                0.05
            }
        })
    } else {
        let mut state = id.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed) | 1;
        Mask::from_fn(W, H, move |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32) / (1u64 << 24) as f32
        })
    }
}

fn session_over(images: u64, seed: u64, kernel: KernelMode, pair: PairMode) -> Session {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for id in 0..images * 2 {
        store.put(MaskId::new(id), &mask_for(id, seed)).unwrap();
        catalog.insert(
            MaskRecord::builder(MaskId::new(id))
                .image_id(ImageId::new(id / 2))
                .model_id(ModelId::new(id % 2 + 1))
                .shape(W, H)
                .object_box(Roi::new(4, 4, 20, 20).unwrap())
                .build(),
        );
    }
    Session::new(
        store as Arc<dyn MaskStore>,
        catalog,
        SessionConfig::new(ChiConfig::new(6, 6, 8).unwrap())
            .threads(1)
            .indexing_mode(IndexingMode::Eager)
            .kernel_mode(kernel)
            .pair_mode(pair),
    )
    .unwrap()
}

/// A pixel range that is tile-bin aligned (`i / TILE_BINS`) when `aligned`,
/// arbitrary hundredths otherwise — both planner branches of decision (b).
fn arb_range() -> impl Strategy<Value = PixelRange> {
    (any::<bool>(), 0u32..12, 1u32..=8).prop_filter_map(
        "non-empty range",
        |(aligned, lo_step, width)| {
            if aligned {
                let lo = lo_step.min(TILE_BINS as u32 - 1) as f32 / TILE_BINS as f32;
                let hi = ((lo_step + width).min(TILE_BINS as u32)) as f32 / TILE_BINS as f32;
                PixelRange::new(lo, hi).ok()
            } else {
                let lo = lo_step as f32 * 0.07;
                let hi = (lo + width as f32 * 0.09).min(1.0);
                PixelRange::new(lo, hi).ok()
            }
        },
    )
}

fn arb_roi() -> impl Strategy<Value = Roi> {
    (0u32..W - 4, 0u32..H - 4, 4u32..=W, 4u32..=H)
        .prop_filter_map("non-degenerate roi", |(x0, y0, w, h)| {
            Roi::new(x0, y0, (x0 + w).min(W), (y0 + h).min(H)).ok()
        })
}

/// A comparison over one CP term (constant or object-box ROI).
fn arb_comparison() -> impl Strategy<Value = Predicate> {
    (
        arb_roi(),
        arb_range(),
        any::<bool>(),
        0u32..6,
        any::<bool>(),
    )
        .prop_map(|(roi, range, object, steps, gt)| {
            let threshold = f64::from(steps) * (W * H) as f64 / 12.0;
            let expr = if object {
                Expr::cp_object(range)
            } else {
                Expr::cp(roi, range)
            };
            if gt {
                Predicate::gt(expr, threshold)
            } else {
                Predicate::lt(expr, threshold)
            }
        })
}

/// 1–3 comparisons combined with AND / OR / NOT: multi-term predicates give
/// the term-reordering decision (a) something to reorder.
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (
        (arb_comparison(), arb_comparison(), arb_comparison()),
        (0u32..3, any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(|((first, second, third), (extra, and2, and3, neg))| {
            let mut p = first;
            if extra >= 1 {
                p = if and2 { p.and(second) } else { p.or(second) };
            }
            if extra >= 2 {
                p = if and3 { p.and(third) } else { p.or(third) };
            }
            if neg {
                p = p.negate();
            }
            p
        })
}

/// The fixed-strategy grid the planner must match byte-for-byte.
fn fixed_modes() -> [(KernelMode, PairMode); 4] {
    [
        (KernelMode::ForceOn, PairMode::ForceBounds),
        (KernelMode::ForceOn, PairMode::ForceLoad),
        (KernelMode::ForceOff, PairMode::ForceBounds),
        (KernelMode::ForceOff, PairMode::ForceLoad),
    ]
}

/// Runs `query` `REPS` times on the auto session and once per fixed
/// session; every result's rows must equal the first fixed baseline.
fn assert_planner_matches_fixed(images: u64, seed: u64, queries: &[Query]) {
    let auto = session_over(images, seed, KernelMode::Auto, PairMode::Auto);
    let fixed: Vec<Session> = fixed_modes()
        .iter()
        .map(|&(k, p)| session_over(images, seed, k, p))
        .collect();
    for query in queries {
        let baseline = fixed[0].execute(query).unwrap();
        for session in &fixed[1..] {
            let out = session.execute(query).unwrap();
            assert_eq!(
                out.rows, baseline.rows,
                "fixed strategies diverged on {query:?}"
            );
        }
        // Repeated auto executions: the registry matures between runs, so
        // the planner may reorder terms, flip the kernel, or switch a pair
        // query to load-first mid-sequence — rows must never move.
        for rep in 0..REPS {
            let out = auto.execute(query).unwrap();
            assert_eq!(
                out.rows,
                baseline.rows,
                "auto plan diverged from fixed strategies on rep {rep} of {query:?} \
                 (plan: {})",
                auto.plan_signature(query)
            );
        }
    }
}

fn range(lo: f32, hi: f32) -> PixelRange {
    PixelRange::new(lo, hi).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn filter_plans_are_byte_identical_to_every_fixed_strategy(
        images in 3u64..10,
        seed in any::<u64>(),
        predicate in arb_predicate(),
    ) {
        let queries = [Query::filter(predicate)];
        assert_planner_matches_fixed(images, seed, &queries);
    }

    #[test]
    fn topk_and_aggregate_plans_are_byte_identical(
        images in 3u64..10,
        seed in any::<u64>(),
        roi in arb_roi(),
        r in arb_range(),
        k in 1usize..7,
        desc in any::<bool>(),
        steps in 0u32..6,
    ) {
        let order = if desc { Order::Desc } else { Order::Asc };
        let threshold = f64::from(steps) * (W * H) as f64 / 12.0;
        let queries = [
            Query::top_k_cp(roi, r, k, order),
            Query::top_k(
                Expr::cp(roi, r).div(Expr::cp_full(range(0.0, 1.0))),
                k,
                order,
            ),
            Query::aggregate(Expr::cp(roi, r), ScalarAgg::Avg).with_group_top_k(k, order),
            Query::aggregate(Expr::cp(roi, r), ScalarAgg::Sum)
                .with_having(CmpOp::Gt, threshold),
        ];
        assert_planner_matches_fixed(images, seed, &queries);
    }

    #[test]
    fn pair_plans_are_byte_identical(
        images in 3u64..9,
        seed in any::<u64>(),
        roi in arb_roi(),
        r in arb_range(),
        k in 1usize..6,
        desc in any::<bool>(),
        steps in 0u32..6,
    ) {
        let order = if desc { Order::Desc } else { Order::Asc };
        let threshold = f64::from(steps) * (W * H) as f64 / 12.0;
        let join = || MaskJoin::new(
            Selection::all().with_model(ModelId::new(1)),
            Selection::all().with_model(ModelId::new(2)),
        );
        let queries = [
            Query::pair_filter(
                join(),
                Predicate::gt(
                    Expr::cp_composed(MaskOp::Diff, RoiSpec::Constant(roi), r),
                    threshold,
                ),
            ),
            Query::pair_filter(
                join(),
                Predicate::lt(
                    Expr::cp_composed(MaskOp::Union, RoiSpec::FullMask, r),
                    threshold,
                ),
            ),
            Query::pair_top_k(join(), Expr::iou(RoiSpec::FullMask, r), k, order),
            Query::pair_top_k(
                join(),
                Expr::cp_composed(MaskOp::Intersect, RoiSpec::Constant(roi), r),
                k,
                order,
            ),
        ];
        assert_planner_matches_fixed(images, seed, &queries);
    }
}

/// Deterministic (non-proptest) check that the feedback loop actually flips
/// a pair query to load-first and the rows still match: a predicate no
/// bounds pass can ever decide forces `verified_fraction = 1`, which crosses
/// `LOAD_FIRST_THRESHOLD` once the shape matures.
#[test]
fn load_first_flip_mid_sequence_keeps_rows_identical() {
    // All-noise masks on both join sides: composed CHI bounds over noise
    // are loose, so a mid-distribution threshold is never decided by the
    // bounds pass and every pair verifies (verified fraction = 1.0).
    let noisy_session = |kernel: KernelMode, pair: PairMode| {
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        for id in 0..12u64 {
            store
                .put(MaskId::new(id), &mask_for(id * 2 + 1, 7))
                .unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(id))
                    .image_id(ImageId::new(id / 2))
                    .model_id(ModelId::new(id % 2 + 1))
                    .shape(W, H)
                    .object_box(Roi::new(4, 4, 20, 20).unwrap())
                    .build(),
            );
        }
        Session::new(
            store.clone() as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(6, 6, 8).unwrap())
                .threads(1)
                .indexing_mode(IndexingMode::Eager)
                .kernel_mode(kernel)
                .pair_mode(pair),
        )
        .unwrap()
    };
    let auto = noisy_session(KernelMode::Auto, PairMode::Auto);
    let bounds = noisy_session(KernelMode::Auto, PairMode::ForceBounds);
    let join = MaskJoin::new(
        Selection::all().with_model(ModelId::new(1)),
        Selection::all().with_model(ModelId::new(2)),
    );
    // Expected CP(min(a,b) in (0.3, 0.7)) over two uniform-noise masks is
    // ~0.40 of the area; a threshold there sits inside every pair's bound
    // interval.
    let query = Query::pair_filter(
        join,
        Predicate::gt(
            Expr::cp_composed(MaskOp::Intersect, RoiSpec::FullMask, range(0.3, 0.7)),
            (W * H) as f64 * 0.40,
        ),
    );
    let expected = bounds.execute(&query).unwrap();
    let mut saw_load_first = false;
    for rep in 0..8 {
        let plan = auto.plan_query(&query);
        saw_load_first |= plan.load_first();
        let out = auto.execute(&query).unwrap();
        assert_eq!(out.rows, expected.rows, "rows moved on rep {rep}");
    }
    assert!(
        saw_load_first,
        "feedback never flipped the pair query to load-first"
    );
}
