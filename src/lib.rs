//! # MaskSearch
//!
//! A Rust reproduction of **"MaskSearch: Querying Image Masks at Scale"**
//! (He, Zhang, Daum, Ratner, Balazinska — ICDE 2025).
//!
//! MaskSearch retrieves images and their masks (saliency maps, segmentation
//! maps, depth maps, ...) from large mask databases based on properties of
//! the masks — counts of pixels within regions of interest and pixel-value
//! ranges — using a **Cumulative Histogram Index (CHI)** and a
//! **filter–verification** execution framework that avoids loading most
//! masks from disk.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`core`](mod@masksearch_core) — masks, ROIs, pixel ranges, the exact `CP`
//!   function, mask aggregation.
//! * [`storage`](mod@masksearch_storage) — mask stores, catalog, compression,
//!   buffer cache, and the disk cost model.
//! * [`index`](mod@masksearch_index) — the Cumulative Histogram Index.
//! * [`db`](mod@masksearch_db) — the durable, mutable mask database: pager +
//!   WAL, crash recovery, atomic insert/delete batches, live CHI
//!   maintenance, checkpointing.
//! * [`query`](mod@masksearch_query) — query model, filter–verification
//!   execution, top-k, aggregation, sessions with incremental indexing and
//!   a snapshot-consistent write path.
//! * [`sql`](mod@masksearch_sql) — the SQL front end for the paper's dialect.
//! * [`service`](mod@masksearch_service) — the concurrent query-serving layer:
//!   engine handle, worker pool with admission control and deadlines,
//!   batched multi-query execution, metrics, and a TCP front end.
//! * [`cluster`](mod@masksearch_cluster) — sharded scatter-gather execution:
//!   the serializable shard map, the coordinator with its own TCP front end,
//!   and the distributed top-k threshold algorithm.
//! * [`obs`](mod@masksearch_obs) — the zero-dependency observability layer:
//!   hierarchical query traces, the shared metric-name registry, Prometheus
//!   text exposition, query profiles, slow-query logging, and per-shape
//!   aggregate statistics.
//! * [`baselines`](mod@masksearch_baselines) — NumPy-, PostgreSQL-, and
//!   TileDB-like comparison engines.
//! * [`datagen`](mod@masksearch_datagen) — synthetic dataset and workload
//!   generators used by the evaluation harness.

pub use masksearch_baselines as baselines;
pub use masksearch_cluster as cluster;
pub use masksearch_core as core;
pub use masksearch_datagen as datagen;
pub use masksearch_db as db;
pub use masksearch_index as index;
pub use masksearch_obs as obs;
pub use masksearch_query as query;
pub use masksearch_service as service;
pub use masksearch_sql as sql;
pub use masksearch_storage as storage;

pub use masksearch_core::{cp, Mask, MaskId, MaskRecord, MaskType, PixelRange, Roi};
