//! Regions of interest (ROIs): axis-aligned bounding boxes over mask pixels.

use crate::error::{Error, Result};
use std::fmt;

/// An axis-aligned, half-open pixel rectangle `[x0, x1) × [y0, y1)`.
///
/// The paper specifies ROIs as pairs of inclusive 1-based corner coordinates
/// (upper-left, lower-right); this type uses the more idiomatic 0-based
/// half-open convention internally and provides
/// [`Roi::from_inclusive_corners`] for converting paper-style coordinates.
///
/// ROIs are query-time values: they are either constant across all masks or
/// mask-specific (e.g. the bounding box of the foreground object of each
/// image). They are never persisted with the masks themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Roi {
    x0: u32,
    y0: u32,
    x1: u32,
    y1: u32,
}

impl Roi {
    /// Creates an ROI from half-open bounds `[x0, x1) × [y0, y1)`.
    ///
    /// Returns an error if the rectangle is empty or inverted.
    pub fn new(x0: u32, y0: u32, x1: u32, y1: u32) -> Result<Self> {
        if x0 >= x1 || y0 >= y1 {
            return Err(Error::InvalidRoi { x0, y0, x1, y1 });
        }
        Ok(Self { x0, y0, x1, y1 })
    }

    /// Creates an ROI from the paper's convention: inclusive 1-based corner
    /// coordinates `(x_ul, y_ul)` and `(x_lr, y_lr)`.
    ///
    /// For example the paper's Q1 ROI `((50, 50), (200, 200))` covers pixels
    /// 50..=200 in both dimensions (151 pixels per side).
    pub fn from_inclusive_corners(upper_left: (u32, u32), lower_right: (u32, u32)) -> Result<Self> {
        let (ulx, uly) = upper_left;
        let (lrx, lry) = lower_right;
        if ulx == 0 || uly == 0 {
            return Err(Error::InvalidRoi {
                x0: ulx,
                y0: uly,
                x1: lrx,
                y1: lry,
            });
        }
        if lrx < ulx || lry < uly {
            return Err(Error::InvalidRoi {
                x0: ulx,
                y0: uly,
                x1: lrx,
                y1: lry,
            });
        }
        // 1-based inclusive -> 0-based half-open.
        Self::new(ulx - 1, uly - 1, lrx, lry)
    }

    /// Left edge (inclusive).
    #[inline]
    pub fn x0(&self) -> u32 {
        self.x0
    }

    /// Top edge (inclusive).
    #[inline]
    pub fn y0(&self) -> u32 {
        self.y0
    }

    /// Right edge (exclusive).
    #[inline]
    pub fn x1(&self) -> u32 {
        self.x1
    }

    /// Bottom edge (exclusive).
    #[inline]
    pub fn y1(&self) -> u32 {
        self.y1
    }

    /// Width of the ROI in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.x1 - self.x0
    }

    /// Height of the ROI in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.y1 - self.y0
    }

    /// Number of pixels covered by the ROI.
    #[inline]
    pub fn area(&self) -> u64 {
        (self.width() as u64) * (self.height() as u64)
    }

    /// Returns `true` if `(x, y)` lies inside the ROI.
    #[inline]
    pub fn contains_point(&self, x: u32, y: u32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Returns `true` if `other` is entirely contained in `self`.
    pub fn contains(&self, other: &Roi) -> bool {
        self.x0 <= other.x0 && self.y0 <= other.y0 && self.x1 >= other.x1 && self.y1 >= other.y1
    }

    /// Intersection of two ROIs, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Roi) -> Option<Roi> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        if x0 < x1 && y0 < y1 {
            Some(Roi { x0, y0, x1, y1 })
        } else {
            None
        }
    }

    /// Smallest ROI containing both `self` and `other`.
    pub fn union_bounds(&self, other: &Roi) -> Roi {
        Roi {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Returns `true` if the two ROIs overlap in at least one pixel.
    pub fn overlaps(&self, other: &Roi) -> bool {
        self.intersect(other).is_some()
    }

    /// Clamps the ROI to fit within a `width × height` mask, returning `None`
    /// if nothing remains.
    pub fn clamp_to(&self, width: u32, height: u32) -> Option<Roi> {
        if width == 0 || height == 0 {
            return None;
        }
        let bounds = Roi {
            x0: 0,
            y0: 0,
            x1: width,
            y1: height,
        };
        self.intersect(&bounds)
    }
}

impl fmt::Display for Roi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}) x [{}, {})", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty_and_inverted() {
        assert!(Roi::new(0, 0, 0, 5).is_err());
        assert!(Roi::new(5, 0, 3, 5).is_err());
        assert!(Roi::new(0, 0, 1, 1).is_ok());
    }

    #[test]
    fn inclusive_corner_conversion_matches_paper_convention() {
        // The paper's ((50,50),(200,200)) box covers 151x151 pixels.
        let roi = Roi::from_inclusive_corners((50, 50), (200, 200)).unwrap();
        assert_eq!(roi.width(), 151);
        assert_eq!(roi.height(), 151);
        assert_eq!(roi.x0(), 49);
        assert_eq!(roi.x1(), 200);

        // A single-pixel box.
        let px = Roi::from_inclusive_corners((3, 7), (3, 7)).unwrap();
        assert_eq!(px.area(), 1);
        assert!(px.contains_point(2, 6));

        assert!(Roi::from_inclusive_corners((0, 1), (3, 3)).is_err());
        assert!(Roi::from_inclusive_corners((5, 5), (4, 9)).is_err());
    }

    #[test]
    fn geometry_accessors() {
        let roi = Roi::new(2, 3, 10, 7).unwrap();
        assert_eq!(roi.width(), 8);
        assert_eq!(roi.height(), 4);
        assert_eq!(roi.area(), 32);
        assert!(roi.contains_point(2, 3));
        assert!(roi.contains_point(9, 6));
        assert!(!roi.contains_point(10, 6));
        assert!(!roi.contains_point(9, 7));
    }

    #[test]
    fn containment_and_intersection() {
        let outer = Roi::new(0, 0, 10, 10).unwrap();
        let inner = Roi::new(2, 2, 5, 5).unwrap();
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert_eq!(outer.intersect(&inner), Some(inner));

        let a = Roi::new(0, 0, 4, 4).unwrap();
        let b = Roi::new(2, 2, 6, 6).unwrap();
        assert_eq!(a.intersect(&b), Some(Roi::new(2, 2, 4, 4).unwrap()));
        assert!(a.overlaps(&b));

        let c = Roi::new(4, 4, 6, 6).unwrap();
        assert_eq!(a.intersect(&c), None);
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn union_bounds_covers_both() {
        let a = Roi::new(0, 0, 2, 2).unwrap();
        let b = Roi::new(5, 5, 8, 9).unwrap();
        let u = a.union_bounds(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u, Roi::new(0, 0, 8, 9).unwrap());
    }

    #[test]
    fn clamp_to_mask_bounds() {
        let roi = Roi::new(5, 5, 20, 20).unwrap();
        assert_eq!(roi.clamp_to(10, 10), Some(Roi::new(5, 5, 10, 10).unwrap()));
        assert_eq!(roi.clamp_to(5, 5), None);
        assert_eq!(roi.clamp_to(0, 10), None);
        let inside = Roi::new(1, 1, 3, 3).unwrap();
        assert_eq!(inside.clamp_to(10, 10), Some(inside));
    }

    #[test]
    fn display_formats_half_open_bounds() {
        let roi = Roi::new(1, 2, 3, 4).unwrap();
        assert_eq!(roi.to_string(), "[1, 3) x [2, 4)");
    }
}
