//! The exact `CP` function: count of pixels in an ROI with values in a range.
//!
//! `CP(mask, roi, (lv, uv))` is the scalar at the heart of every MaskSearch
//! query (paper §2.1):
//!
//! ```text
//! CP(mask, roi, (lv, uv)) = Σ_{(x,y) ∈ roi} 1[lv ≤ mask[x][y] < uv]
//! ```
//!
//! The functions in this module are the *reference* implementation: they scan
//! the mask pixels directly. The whole point of the CHI index
//! (`masksearch-index`) and the filter–verification executor
//! (`masksearch-query`) is to avoid calling these on most masks; their
//! correctness is always defined relative to this module.

use crate::mask::Mask;
use crate::range::PixelRange;
use crate::roi::Roi;

/// Exact pixel count: number of pixels of `mask` inside `roi` (clipped to the
/// mask bounds) whose value lies in `range`.
///
/// ```
/// use masksearch_core::{Mask, Roi, PixelRange, cp};
/// let m = Mask::from_fn(8, 8, |x, _| x as f32 / 8.0);
/// let roi = Roi::new(0, 0, 8, 8).unwrap();
/// // Half of the columns have values >= 0.5.
/// assert_eq!(cp(&m, &roi, &PixelRange::new(0.5, 1.0).unwrap()), 32);
/// ```
#[inline]
pub fn cp(mask: &Mask, roi: &Roi, range: &PixelRange) -> u64 {
    mask.count_pixels(roi, range)
}

/// Exact pixel count over the full mask (the paper's `CP(mask, -, (lv, uv))`
/// notation, where `-` denotes "no ROI" / the whole mask).
pub fn cp_full(mask: &Mask, range: &PixelRange) -> u64 {
    mask.count_pixels(&mask.full_roi(), range)
}

/// Evaluates `CP` for several `(roi, range)` pairs in a single pass over the
/// mask.
///
/// This mirrors queries that contain multiple `CP` terms (paper §2.1, e.g.
/// ratios of salient pixels inside vs. outside a region). A single traversal
/// is noticeably cheaper than one scan per term when masks are loaded from
/// disk during the verification stage.
pub fn cp_many(mask: &Mask, terms: &[(Roi, PixelRange)]) -> Vec<u64> {
    let mut counts = vec![0u64; terms.len()];
    if terms.is_empty() {
        return counts;
    }
    // Clip all ROIs up front; remember which are non-empty.
    let clipped: Vec<Option<Roi>> = terms.iter().map(|(roi, _)| mask.clip_roi(roi)).collect();
    // Compute the bounding box of all clipped ROIs so the scan can skip
    // rows/columns no term cares about.
    let mut bbox: Option<Roi> = None;
    for roi in clipped.iter().flatten() {
        bbox = Some(match bbox {
            None => *roi,
            Some(b) => b.union_bounds(roi),
        });
    }
    let Some(bbox) = bbox else {
        return counts;
    };
    for y in bbox.y0()..bbox.y1() {
        let row = mask.row(y);
        for (i, (clip, (_, range))) in clipped.iter().zip(terms.iter()).enumerate() {
            let Some(clip) = clip else { continue };
            if y < clip.y0() || y >= clip.y1() {
                continue;
            }
            let slice = &row[clip.x0() as usize..clip.x1() as usize];
            let mut c = 0u64;
            for &v in slice {
                if range.contains(v) {
                    c += 1;
                }
            }
            counts[i] += c;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_mask() -> Mask {
        Mask::from_fn(8, 8, |x, y| ((x + y * 8) as f32) / 64.0)
    }

    #[test]
    fn cp_counts_expected_pixels() {
        let m = gradient_mask();
        let full = m.full_roi();
        assert_eq!(cp(&m, &full, &PixelRange::full()), 64);
        assert_eq!(cp(&m, &full, &PixelRange::new(0.5, 1.0).unwrap()), 32);
        assert_eq!(cp(&m, &full, &PixelRange::new(0.0, 0.25).unwrap()), 16);
    }

    #[test]
    fn cp_full_equals_cp_with_full_roi() {
        let m = gradient_mask();
        let range = PixelRange::new(0.3, 0.7).unwrap();
        assert_eq!(cp_full(&m, &range), cp(&m, &m.full_roi(), &range));
    }

    #[test]
    fn cp_clips_roi_to_mask() {
        let m = gradient_mask();
        let oversized = Roi::new(4, 4, 100, 100).unwrap();
        let clipped = Roi::new(4, 4, 8, 8).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        assert_eq!(cp(&m, &oversized, &range), cp(&m, &clipped, &range));
    }

    #[test]
    fn cp_many_matches_individual_calls() {
        let m = gradient_mask();
        let terms = vec![
            (
                Roi::new(0, 0, 4, 4).unwrap(),
                PixelRange::new(0.0, 0.5).unwrap(),
            ),
            (
                Roi::new(2, 2, 8, 8).unwrap(),
                PixelRange::new(0.25, 0.9).unwrap(),
            ),
            (Roi::new(6, 0, 8, 8).unwrap(), PixelRange::full()),
            (
                Roi::new(20, 20, 30, 30).unwrap(),
                PixelRange::new(0.0, 1.0).unwrap(),
            ),
        ];
        let batch = cp_many(&m, &terms);
        for (i, (roi, range)) in terms.iter().enumerate() {
            assert_eq!(batch[i], cp(&m, roi, range), "term {i}");
        }
    }

    #[test]
    fn cp_many_empty_terms() {
        let m = gradient_mask();
        assert!(cp_many(&m, &[]).is_empty());
    }

    #[test]
    fn cp_boundary_semantics_are_half_open() {
        // A mask whose only value is exactly 0.5 must be counted by [0.5, x)
        // ranges but not by [x, 0.5) ranges.
        let m = Mask::constant(2, 2, 0.5).unwrap();
        let roi = m.full_roi();
        assert_eq!(cp(&m, &roi, &PixelRange::new(0.5, 1.0).unwrap()), 4);
        assert_eq!(cp(&m, &roi, &PixelRange::new(0.0, 0.5).unwrap()), 0);
    }
}
