//! The exact `CP` function: count of pixels in an ROI with values in a range.
//!
//! `CP(mask, roi, (lv, uv))` is the scalar at the heart of every MaskSearch
//! query (paper §2.1):
//!
//! ```text
//! CP(mask, roi, (lv, uv)) = Σ_{(x,y) ∈ roi} 1[lv ≤ mask[x][y] < uv]
//! ```
//!
//! The functions in this module are the *reference* implementation: they scan
//! the mask pixels directly. The whole point of the CHI index
//! (`masksearch-index`) and the filter–verification executor
//! (`masksearch-query`) is to avoid calling these on most masks; their
//! correctness is always defined relative to this module.

use crate::mask::Mask;
use crate::range::PixelRange;
use crate::roi::Roi;

/// Exact pixel count: number of pixels of `mask` inside `roi` (clipped to the
/// mask bounds) whose value lies in `range`.
///
/// ```
/// use masksearch_core::{Mask, Roi, PixelRange, cp};
/// let m = Mask::from_fn(8, 8, |x, _| x as f32 / 8.0);
/// let roi = Roi::new(0, 0, 8, 8).unwrap();
/// // Half of the columns have values >= 0.5.
/// assert_eq!(cp(&m, &roi, &PixelRange::new(0.5, 1.0).unwrap()), 32);
/// ```
#[inline]
pub fn cp(mask: &Mask, roi: &Roi, range: &PixelRange) -> u64 {
    mask.count_pixels(roi, range)
}

/// Exact pixel count over the full mask (the paper's `CP(mask, -, (lv, uv))`
/// notation, where `-` denotes "no ROI" / the whole mask).
pub fn cp_full(mask: &Mask, range: &PixelRange) -> u64 {
    mask.count_pixels(&mask.full_roi(), range)
}

/// Evaluates `CP` for several `(roi, range)` pairs in a single pass over the
/// mask.
///
/// This mirrors queries that contain multiple `CP` terms (paper §2.1, e.g.
/// ratios of salient pixels inside vs. outside a region). A single traversal
/// is noticeably cheaper than one scan per term when masks are loaded from
/// disk during the verification stage.
pub fn cp_many(mask: &Mask, terms: &[(Roi, PixelRange)]) -> Vec<u64> {
    let mut counts = vec![0u64; terms.len()];
    if terms.is_empty() {
        return counts;
    }
    /// One clipped term with its precomputed row span and column slice, so
    /// the row loop never re-tests `y` against terms whose span is over or
    /// has not started.
    #[derive(Clone)]
    struct PlannedTerm {
        index: usize,
        x0: usize,
        x1: usize,
        y1: u32,
        range: PixelRange,
    }
    // Clip every ROI once and sort the surviving terms by their first row;
    // the scan then sweeps rows keeping only the terms whose span contains
    // the current row active.
    let mut pending: Vec<(u32, PlannedTerm)> = terms
        .iter()
        .enumerate()
        .filter_map(|(index, (roi, range))| {
            let clip = mask.clip_roi(roi)?;
            Some((
                clip.y0(),
                PlannedTerm {
                    index,
                    x0: clip.x0() as usize,
                    x1: clip.x1() as usize,
                    y1: clip.y1(),
                    range: *range,
                },
            ))
        })
        .collect();
    pending.sort_by_key(|(y0, term)| (*y0, term.index));
    let Some(&(first_row, _)) = pending.first() else {
        return counts;
    };
    let last_row = pending.iter().map(|(_, t)| t.y1).max().expect("non-empty");

    let mut next = 0;
    let mut active: Vec<PlannedTerm> = Vec::new();
    let mut y = first_row;
    while y < last_row {
        active.retain(|t| t.y1 > y);
        while next < pending.len() && pending[next].0 <= y {
            active.push(pending[next].1.clone());
            next += 1;
        }
        if active.is_empty() {
            // Disjoint ROIs can leave the bounding box mostly dead rows;
            // jump straight to the next term's first row instead of walking
            // them one by one (`pending` is sorted by first row).
            if next < pending.len() {
                y = pending[next].0;
                continue;
            }
            break;
        }
        let row = mask.row(y);
        for term in &active {
            let mut c = 0u64;
            for &v in &row[term.x0..term.x1] {
                if term.range.contains(v) {
                    c += 1;
                }
            }
            counts[term.index] += c;
        }
        y += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_mask() -> Mask {
        Mask::from_fn(8, 8, |x, y| ((x + y * 8) as f32) / 64.0)
    }

    #[test]
    fn cp_counts_expected_pixels() {
        let m = gradient_mask();
        let full = m.full_roi();
        assert_eq!(cp(&m, &full, &PixelRange::full()), 64);
        assert_eq!(cp(&m, &full, &PixelRange::new(0.5, 1.0).unwrap()), 32);
        assert_eq!(cp(&m, &full, &PixelRange::new(0.0, 0.25).unwrap()), 16);
    }

    #[test]
    fn cp_full_equals_cp_with_full_roi() {
        let m = gradient_mask();
        let range = PixelRange::new(0.3, 0.7).unwrap();
        assert_eq!(cp_full(&m, &range), cp(&m, &m.full_roi(), &range));
    }

    #[test]
    fn cp_clips_roi_to_mask() {
        let m = gradient_mask();
        let oversized = Roi::new(4, 4, 100, 100).unwrap();
        let clipped = Roi::new(4, 4, 8, 8).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        assert_eq!(cp(&m, &oversized, &range), cp(&m, &clipped, &range));
    }

    #[test]
    fn cp_many_matches_individual_calls() {
        let m = gradient_mask();
        let terms = vec![
            (
                Roi::new(0, 0, 4, 4).unwrap(),
                PixelRange::new(0.0, 0.5).unwrap(),
            ),
            (
                Roi::new(2, 2, 8, 8).unwrap(),
                PixelRange::new(0.25, 0.9).unwrap(),
            ),
            (Roi::new(6, 0, 8, 8).unwrap(), PixelRange::full()),
            (
                Roi::new(20, 20, 30, 30).unwrap(),
                PixelRange::new(0.0, 1.0).unwrap(),
            ),
        ];
        let batch = cp_many(&m, &terms);
        for (i, (roi, range)) in terms.iter().enumerate() {
            assert_eq!(batch[i], cp(&m, roi, range), "term {i}");
        }
    }

    #[test]
    fn cp_many_disjoint_rois_with_a_large_bbox() {
        // Two tiny ROIs at opposite corners of a tall mask: the bounding box
        // spans every row, but almost all of them belong to no term. The
        // row-span sweep must still count both terms exactly (and terms
        // sharing rows with different column slices must not interfere).
        let m = Mask::from_fn(64, 256, |x, y| ((x * 13 + y * 7) % 97) as f32 / 97.0);
        let terms = vec![
            (
                Roi::new(0, 0, 4, 4).unwrap(),
                PixelRange::new(0.0, 0.6).unwrap(),
            ),
            (
                Roi::new(60, 252, 64, 256).unwrap(),
                PixelRange::new(0.4, 1.0).unwrap(),
            ),
            (
                Roi::new(0, 2, 2, 6).unwrap(),
                PixelRange::new(0.2, 0.8).unwrap(),
            ),
            // Fully outside the mask: contributes zero.
            (Roi::new(500, 500, 600, 600).unwrap(), PixelRange::full()),
        ];
        let batch = cp_many(&m, &terms);
        for (i, (roi, range)) in terms.iter().enumerate() {
            assert_eq!(batch[i], cp(&m, roi, range), "term {i}");
        }
    }

    #[test]
    fn cp_many_terms_starting_on_the_same_row() {
        let m = gradient_mask();
        let terms = vec![
            (Roi::new(0, 3, 2, 8).unwrap(), PixelRange::full()),
            (
                Roi::new(5, 3, 8, 5).unwrap(),
                PixelRange::new(0.5, 1.0).unwrap(),
            ),
        ];
        let batch = cp_many(&m, &terms);
        for (i, (roi, range)) in terms.iter().enumerate() {
            assert_eq!(batch[i], cp(&m, roi, range), "term {i}");
        }
    }

    #[test]
    fn cp_many_empty_terms() {
        let m = gradient_mask();
        assert!(cp_many(&m, &[]).is_empty());
    }

    #[test]
    fn cp_boundary_semantics_are_half_open() {
        // A mask whose only value is exactly 0.5 must be counted by [0.5, x)
        // ranges but not by [x, 0.5) ranges.
        let m = Mask::constant(2, 2, 0.5).unwrap();
        let roi = m.full_roi();
        assert_eq!(cp(&m, &roi, &PixelRange::new(0.5, 1.0).unwrap()), 4);
        assert_eq!(cp(&m, &roi, &PixelRange::new(0.0, 0.5).unwrap()), 0);
    }
}
