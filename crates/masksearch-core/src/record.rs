//! Mask metadata records: the non-pixel columns of `MasksDatabaseView`.

use crate::roi::Roi;
use crate::types::{ImageId, Label, MaskId, MaskType, ModelId};

/// Metadata describing one mask in the database (one row of the paper's
/// `MasksDatabaseView`, minus the pixel payload which lives in the store).
///
/// `object_box` is the bounding box of the foreground object in the
/// underlying image; the paper obtains it from YOLOv5 and uses it as the
/// mask-specific ROI of queries such as Q2/Q4/Q5 (`roi = object`).
#[derive(Debug, Clone, PartialEq)]
pub struct MaskRecord {
    /// Unique identifier of the mask (primary key).
    pub mask_id: MaskId,
    /// Image the mask annotates.
    pub image_id: ImageId,
    /// Model that generated the mask.
    pub model_id: ModelId,
    /// Kind of mask (saliency map, segmentation map, ...).
    pub mask_type: MaskType,
    /// Mask width in pixels.
    pub width: u32,
    /// Mask height in pixels.
    pub height: u32,
    /// Ground-truth class label of the image, if known.
    pub true_label: Option<Label>,
    /// Label predicted by `model_id` for the image, if known.
    pub predicted_label: Option<Label>,
    /// Foreground-object bounding box of the image, if known.
    pub object_box: Option<Roi>,
}

impl MaskRecord {
    /// Starts building a record for the given mask id.
    pub fn builder(mask_id: MaskId) -> MaskRecordBuilder {
        MaskRecordBuilder::new(mask_id)
    }

    /// Returns `true` if the model's prediction disagrees with the
    /// ground-truth label (both must be present).
    pub fn is_misclassified(&self) -> bool {
        match (self.true_label, self.predicted_label) {
            (Some(t), Some(p)) => t != p,
            _ => false,
        }
    }
}

/// Builder for [`MaskRecord`], with sensible defaults for optional columns.
#[derive(Debug, Clone)]
pub struct MaskRecordBuilder {
    record: MaskRecord,
}

impl MaskRecordBuilder {
    /// Creates a builder with all optional fields unset and a 0×0 shape.
    pub fn new(mask_id: MaskId) -> Self {
        Self {
            record: MaskRecord {
                mask_id,
                image_id: ImageId::new(0),
                model_id: ModelId::new(0),
                mask_type: MaskType::SaliencyMap,
                width: 0,
                height: 0,
                true_label: None,
                predicted_label: None,
                object_box: None,
            },
        }
    }

    /// Sets the image id.
    pub fn image_id(mut self, id: ImageId) -> Self {
        self.record.image_id = id;
        self
    }

    /// Sets the model id.
    pub fn model_id(mut self, id: ModelId) -> Self {
        self.record.model_id = id;
        self
    }

    /// Sets the mask type.
    pub fn mask_type(mut self, ty: MaskType) -> Self {
        self.record.mask_type = ty;
        self
    }

    /// Sets the mask dimensions.
    pub fn shape(mut self, width: u32, height: u32) -> Self {
        self.record.width = width;
        self.record.height = height;
        self
    }

    /// Sets the ground-truth label.
    pub fn true_label(mut self, label: Label) -> Self {
        self.record.true_label = Some(label);
        self
    }

    /// Sets the predicted label.
    pub fn predicted_label(mut self, label: Label) -> Self {
        self.record.predicted_label = Some(label);
        self
    }

    /// Sets the foreground-object bounding box.
    pub fn object_box(mut self, roi: Roi) -> Self {
        self.record.object_box = Some(roi);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> MaskRecord {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let roi = Roi::new(10, 10, 50, 60).unwrap();
        let rec = MaskRecord::builder(MaskId::new(7))
            .image_id(ImageId::new(3))
            .model_id(ModelId::new(1))
            .mask_type(MaskType::SegmentationMap)
            .shape(224, 224)
            .true_label(Label::new(5))
            .predicted_label(Label::new(9))
            .object_box(roi)
            .build();
        assert_eq!(rec.mask_id, MaskId::new(7));
        assert_eq!(rec.image_id, ImageId::new(3));
        assert_eq!(rec.model_id, ModelId::new(1));
        assert_eq!(rec.mask_type, MaskType::SegmentationMap);
        assert_eq!((rec.width, rec.height), (224, 224));
        assert_eq!(rec.object_box, Some(roi));
        assert!(rec.is_misclassified());
    }

    #[test]
    fn misclassification_requires_both_labels() {
        let rec = MaskRecord::builder(MaskId::new(1))
            .true_label(Label::new(2))
            .build();
        assert!(!rec.is_misclassified());
        let rec = MaskRecord::builder(MaskId::new(1))
            .true_label(Label::new(2))
            .predicted_label(Label::new(2))
            .build();
        assert!(!rec.is_misclassified());
    }

    #[test]
    fn builder_defaults_are_unset() {
        let rec = MaskRecord::builder(MaskId::new(1)).build();
        assert!(rec.true_label.is_none());
        assert!(rec.predicted_label.is_none());
        assert!(rec.object_box.is_none());
        assert_eq!(rec.mask_type, MaskType::SaliencyMap);
    }
}
