//! # masksearch-core
//!
//! Data model for MaskSearch (He et al., ICDE 2025): masks, regions of
//! interest, pixel-value ranges, the exact `CP` pixel-counting function,
//! mask aggregation functions, and the relational metadata view
//! (`MasksDatabaseView`) that the rest of the system is built on.
//!
//! This crate is intentionally free of any I/O or indexing logic: it defines
//! the *semantics* that the index (`masksearch-index`) and the execution
//! framework (`masksearch-query`) must preserve, and is the reference
//! implementation every optimization is tested against.
//!
//! ## Quick tour
//!
//! ```
//! use masksearch_core::{Mask, Roi, PixelRange, cp};
//!
//! // A 4x4 mask with a bright 2x2 block in the lower-right corner.
//! let mut m = Mask::zeros(4, 4);
//! for y in 2..4 {
//!     for x in 2..4 {
//!         m.set(x, y, 0.9);
//!     }
//! }
//! let roi = Roi::new(1, 1, 4, 4).unwrap();
//! let range = PixelRange::new(0.85, 1.0).unwrap();
//! assert_eq!(cp(&m, &roi, &range), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub mod compose;
pub mod cp;
pub mod error;
pub mod mask;
pub mod range;
pub mod record;
pub mod roi;
pub mod tiled;
pub mod types;

pub use agg::{
    intersect_thresholded, mask_max, mask_mean, union_thresholded, weighted_sum, MaskAgg,
};
pub use compose::{check_composable, compose_masks, cp_composed, cp_composed_many, MaskOp};
pub use cp::{cp, cp_full, cp_many};
pub use error::{Error, Result};
pub use mask::Mask;
pub use range::PixelRange;
pub use record::{MaskRecord, MaskRecordBuilder};
pub use roi::Roi;
pub use tiled::{TileGrid, TileStats, TileSummary, TiledMask, DEFAULT_TILE_SIZE, TILE_BINS};
pub use types::{ImageId, Label, MaskId, MaskType, ModelId};
