//! Dense 2-D masks with pixel values in `[0, 1)`.

use crate::error::{Error, Result};
use crate::range::PixelRange;
use crate::roi::Roi;

/// A dense 2-D array of pixel values in `[0, 1)`, stored in row-major order.
///
/// A mask annotates an image: a saliency map, a segmentation probability map,
/// a depth map, etc. The data model (paper §2.1) restricts values to the
/// half-open interval `[0, 1)`; constructors validate this so downstream code
/// (in particular the CHI bin arithmetic) can rely on it.
#[derive(Debug, Clone, PartialEq)]
pub struct Mask {
    width: u32,
    height: u32,
    data: Vec<f32>,
}

/// Largest representable mask value. The data model is the half-open interval
/// `[0, 1)`; this is the value used when clamping inputs that are exactly 1.0
/// (common in saliency maps normalised to `[0, 1]`).
pub const MAX_PIXEL_VALUE: f32 = 1.0 - f32::EPSILON;

impl Mask {
    /// Creates a mask from raw row-major pixel data, validating dimensions and
    /// the `[0, 1)` value domain.
    pub fn new(width: u32, height: u32, data: Vec<f32>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(Error::EmptyMask);
        }
        let expected = (width as usize) * (height as usize);
        if data.len() != expected {
            return Err(Error::DimensionMismatch {
                width,
                height,
                data_len: data.len(),
            });
        }
        for (index, &value) in data.iter().enumerate() {
            if !(0.0..1.0).contains(&value) || value.is_nan() {
                return Err(Error::PixelOutOfRange { value, index });
            }
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Creates a mask from raw data, clamping every value into `[0, 1)`.
    ///
    /// Values below zero become `0.0`, values at or above one become
    /// [`MAX_PIXEL_VALUE`], and NaNs become `0.0`. This is the lenient
    /// constructor used when ingesting masks produced by external tools that
    /// normalise to the closed interval `[0, 1]`.
    pub fn from_data_clamped(width: u32, height: u32, mut data: Vec<f32>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(Error::EmptyMask);
        }
        let expected = (width as usize) * (height as usize);
        if data.len() != expected {
            return Err(Error::DimensionMismatch {
                width,
                height,
                data_len: data.len(),
            });
        }
        for v in &mut data {
            if v.is_nan() || *v < 0.0 {
                *v = 0.0;
            } else if *v >= 1.0 {
                *v = MAX_PIXEL_VALUE;
            }
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Creates a mask from raw data **without validating the value domain**.
    ///
    /// Dimensions are still checked, but pixels may be NaN, ±∞, negative, or
    /// ≥ 1. Values outside `[0, 1)` are *never in range* for any
    /// [`PixelRange`] (NaN comparisons are false; a range's bounds satisfy
    /// `0 ≤ lo < hi ≤ 1`), so `CP` over such a mask counts only its in-domain
    /// pixels. This constructor exists for code that must tolerate
    /// hostile or corrupt pixel payloads (the codec round-trips NaN bit
    /// patterns) and for the differential tests that prove the kernel, CHI,
    /// and reference scan agree on non-finite pixels. Prefer [`Mask::new`]
    /// everywhere else.
    pub fn from_data_unchecked(width: u32, height: u32, data: Vec<f32>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(Error::EmptyMask);
        }
        let expected = (width as usize) * (height as usize);
        if data.len() != expected {
            return Err(Error::DimensionMismatch {
                width,
                height,
                data_len: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Creates an all-zero mask of the given dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero (use [`Mask::new`] for fallible
    /// construction).
    pub fn zeros(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mask dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![0.0; (width as usize) * (height as usize)],
        }
    }

    /// Creates a mask filled with a constant value.
    pub fn constant(width: u32, height: u32, value: f32) -> Result<Self> {
        Self::new(
            width,
            height,
            vec![value; (width as usize) * (height as usize)],
        )
    }

    /// Creates a mask by evaluating `f(x, y)` at every pixel, clamping results
    /// into `[0, 1)`.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> f32) -> Self {
        assert!(width > 0 && height > 0, "mask dimensions must be non-zero");
        let mut data = Vec::with_capacity((width as usize) * (height as usize));
        for y in 0..height {
            for x in 0..width {
                let v = f(x, y);
                let v = if v.is_nan() || v < 0.0 {
                    0.0
                } else if v >= 1.0 {
                    MAX_PIXEL_VALUE
                } else {
                    v
                };
                data.push(v);
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Mask width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mask height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn shape(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    #[inline]
    pub fn num_pixels(&self) -> usize {
        self.data.len()
    }

    /// The ROI covering the entire mask.
    pub fn full_roi(&self) -> Roi {
        Roi::new(0, 0, self.width, self.height).expect("mask dimensions are non-zero")
    }

    /// Raw row-major pixel data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the mask and returns its raw pixel buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns the pixel value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds; use [`Mask::try_get`] for a
    /// fallible variant.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y as usize) * (self.width as usize) + (x as usize)]
    }

    /// Returns the pixel value at `(x, y)`, or an error if out of bounds.
    pub fn try_get(&self, x: u32, y: u32) -> Result<f32> {
        if x >= self.width || y >= self.height {
            return Err(Error::CoordinateOutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(self.data[(y as usize) * (self.width as usize) + (x as usize)])
    }

    /// Sets the pixel value at `(x, y)`, clamping into `[0, 1)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: f32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let v = if value.is_nan() || value < 0.0 {
            0.0
        } else if value >= 1.0 {
            MAX_PIXEL_VALUE
        } else {
            value
        };
        self.data[(y as usize) * (self.width as usize) + (x as usize)] = v;
    }

    /// Returns one row of pixels as a slice.
    #[inline]
    pub fn row(&self, y: u32) -> &[f32] {
        assert!(y < self.height, "row out of bounds");
        let w = self.width as usize;
        let start = (y as usize) * w;
        &self.data[start..start + w]
    }

    /// Iterates over `(x, y, value)` triples in row-major order.
    pub fn iter_pixels(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        let w = self.width;
        self.data.iter().enumerate().map(move |(i, &v)| {
            let x = (i as u32) % w;
            let y = (i as u32) / w;
            (x, y, v)
        })
    }

    /// Returns the minimum and maximum pixel values in the mask.
    pub fn value_bounds(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        (lo, hi)
    }

    /// Mean pixel value over the whole mask.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Intersects an ROI with the mask bounds, returning `None` if the
    /// intersection is empty.
    pub fn clip_roi(&self, roi: &Roi) -> Option<Roi> {
        roi.intersect(&self.full_roi())
    }

    /// Counts the pixels inside `roi` (clipped to the mask) whose values lie
    /// in `range`. This is the exact `CP` function of the paper; see
    /// [`crate::cp::cp`] for the free-function form used throughout the
    /// codebase.
    pub fn count_pixels(&self, roi: &Roi, range: &PixelRange) -> u64 {
        let Some(clipped) = self.clip_roi(roi) else {
            return 0;
        };
        let mut count = 0u64;
        let w = self.width as usize;
        for y in clipped.y0()..clipped.y1() {
            let row_start = (y as usize) * w;
            let row =
                &self.data[row_start + clipped.x0() as usize..row_start + clipped.x1() as usize];
            for &v in row {
                if range.contains(v) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Returns a new mask where every pixel is `1 - epsilon` if its value is
    /// at or above `threshold` and `0` otherwise. Used by `MASK_AGG`
    /// expressions such as `INTERSECT(mask > 0.8, ...)`.
    pub fn threshold(&self, threshold: f32) -> Mask {
        let data = self
            .data
            .iter()
            .map(|&v| if v >= threshold { MAX_PIXEL_VALUE } else { 0.0 })
            .collect();
        Mask {
            width: self.width,
            height: self.height,
            data,
        }
    }

    /// Extracts the sub-mask covered by `roi` (clipped to the mask bounds).
    ///
    /// Returns `None` if the clipped ROI is empty.
    pub fn crop(&self, roi: &Roi) -> Option<Mask> {
        let clipped = self.clip_roi(roi)?;
        let w = self.width as usize;
        let out_w = clipped.width();
        let out_h = clipped.height();
        let mut data = Vec::with_capacity((out_w as usize) * (out_h as usize));
        for y in clipped.y0()..clipped.y1() {
            let row_start = (y as usize) * w;
            data.extend_from_slice(
                &self.data[row_start + clipped.x0() as usize..row_start + clipped.x1() as usize],
            );
        }
        Some(Mask {
            width: out_w,
            height: out_h,
            data,
        })
    }

    /// Size of the mask's pixel payload in bytes when stored uncompressed
    /// (4 bytes per pixel).
    pub fn byte_size(&self) -> u64 {
        self.data.len() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mask() -> Mask {
        // 4x4 mask with values increasing left-to-right, top-to-bottom.
        Mask::from_fn(4, 4, |x, y| (y * 4 + x) as f32 / 16.0)
    }

    #[test]
    fn new_validates_dimensions_and_values() {
        assert_eq!(Mask::new(0, 4, vec![]), Err(Error::EmptyMask));
        assert!(matches!(
            Mask::new(2, 2, vec![0.0; 3]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Mask::new(2, 2, vec![0.0, 0.5, 1.0, 0.2]),
            Err(Error::PixelOutOfRange { index: 2, .. })
        ));
        assert!(matches!(
            Mask::new(2, 2, vec![0.0, 0.5, f32::NAN, 0.2]),
            Err(Error::PixelOutOfRange { .. })
        ));
        assert!(Mask::new(2, 2, vec![0.0, 0.5, 0.99, 0.2]).is_ok());
    }

    #[test]
    fn clamped_constructor_fixes_out_of_range_values() {
        let m = Mask::from_data_clamped(2, 2, vec![-0.5, 1.0, 1.5, f32::NAN]).unwrap();
        assert_eq!(m.get(0, 0), 0.0);
        assert!(m.get(1, 0) < 1.0);
        assert!(m.get(0, 1) < 1.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = Mask::zeros(3, 2);
        m.set(2, 1, 0.75);
        assert_eq!(m.get(2, 1), 0.75);
        assert_eq!(m.try_get(2, 1).unwrap(), 0.75);
        assert!(matches!(
            m.try_get(3, 0),
            Err(Error::CoordinateOutOfBounds { .. })
        ));
    }

    #[test]
    fn set_clamps_values() {
        let mut m = Mask::zeros(2, 2);
        m.set(0, 0, 2.0);
        assert!(m.get(0, 0) < 1.0);
        m.set(0, 0, -1.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn row_and_iteration_agree_with_get() {
        let m = sample_mask();
        assert_eq!(
            m.row(2),
            &[8.0 / 16.0, 9.0 / 16.0, 10.0 / 16.0, 11.0 / 16.0]
        );
        for (x, y, v) in m.iter_pixels() {
            assert_eq!(v, m.get(x, y));
        }
        assert_eq!(m.iter_pixels().count(), 16);
    }

    #[test]
    fn count_pixels_matches_manual_count() {
        let m = sample_mask();
        let roi = Roi::new(1, 1, 4, 4).unwrap(); // 3x3 lower-right block
        let range = PixelRange::new(0.5, 1.0).unwrap();
        // Values in the ROI: indices 5,6,7,9,10,11,13,14,15 -> /16.
        // Values >= 0.5 are 8..=15 /16, intersected with ROI: 9,10,11,13,14,15 -> 6.
        assert_eq!(m.count_pixels(&roi, &range), 6);
    }

    #[test]
    fn count_pixels_with_disjoint_roi_is_zero() {
        let m = sample_mask();
        let roi = Roi::new(10, 10, 20, 20).unwrap();
        let range = PixelRange::new(0.0, 1.0).unwrap();
        assert_eq!(m.count_pixels(&roi, &range), 0);
    }

    #[test]
    fn threshold_produces_binary_mask() {
        let m = sample_mask();
        let t = m.threshold(0.5);
        for (x, y, v) in t.iter_pixels() {
            if m.get(x, y) >= 0.5 {
                assert!(v > 0.9);
            } else {
                assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn crop_extracts_expected_region() {
        let m = sample_mask();
        let cropped = m.crop(&Roi::new(1, 2, 3, 4).unwrap()).unwrap();
        assert_eq!(cropped.shape(), (2, 2));
        assert_eq!(cropped.get(0, 0), m.get(1, 2));
        assert_eq!(cropped.get(1, 1), m.get(2, 3));
        assert!(m.crop(&Roi::new(100, 100, 101, 101).unwrap()).is_none());
    }

    #[test]
    fn value_bounds_and_mean() {
        let m = sample_mask();
        let (lo, hi) = m.value_bounds();
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 15.0 / 16.0);
        let mean = m.mean();
        assert!((mean - (0..16).sum::<u32>() as f64 / 16.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn byte_size_counts_four_bytes_per_pixel() {
        assert_eq!(sample_mask().byte_size(), 64);
    }

    #[test]
    fn from_fn_clamps() {
        let m = Mask::from_fn(2, 1, |x, _| if x == 0 { 5.0 } else { -3.0 });
        assert!(m.get(0, 0) < 1.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn full_roi_covers_mask() {
        let m = sample_mask();
        assert_eq!(m.full_roi().area(), 16);
        assert_eq!(
            m.count_pixels(&m.full_roi(), &PixelRange::new(0.0, 1.0).unwrap()),
            16
        );
    }
}
