//! Tiled verification kernel: per-tile summaries that make exact `CP`
//! sub-linear in the number of pixels it must touch.
//!
//! The CHI (`masksearch-index`) prunes *across* masks; this module applies
//! the same cumulative-histogram idea *within* one mask. A [`TileGrid`]
//! partitions a mask into fixed-size square tiles (default
//! [`DEFAULT_TILE_SIZE`] = 64×64; edge tiles are smaller when the mask is not
//! a tile multiple). Each tile carries three summaries computed in a single
//! pass over its pixels:
//!
//! * the minimum and maximum pixel value of the tile, and
//! * a small cumulative value histogram over [`TILE_BINS`] equi-width bins:
//!   `cum[i]` counts the tile's pixels with value `< i / TILE_BINS`.
//!
//! When `CP(mask, roi, [lo, hi))` is evaluated through the kernel
//! ([`TiledMask::cp`]), every tile overlapping the clipped ROI is classified
//! without touching its pixels first:
//!
//! * **all-out** — `max < lo` or `min >= hi`: no pixel of the tile can lie
//!   in the range, so the tile contributes zero. Skipped entirely.
//! * **all-in** — `min >= lo && max < hi`: every pixel of the tile lies in
//!   the range, so the tile contributes the area of its intersection with
//!   the ROI. Skipped entirely.
//! * **histogram** — the ROI covers the tile fully *and* both range bounds
//!   fall exactly on bin edges (`lo = a/TILE_BINS`, `hi = b/TILE_BINS`):
//!   the contribution is `cum[b] - cum[a]`, again without touching pixels.
//! * **boundary** — everything else (a tile partially covered by the ROI, or
//!   a range bound strictly inside a bin, with min/max undecided): the tile
//!   falls back to a tight row-slice scan of exactly the intersected pixels.
//!
//! Every classification is *exact*, not approximate: bin edges `i/16` are
//! dyadic rationals represented exactly in `f32`, multiplying a value by
//! `TILE_BINS` (a power of two) is exact, and the half-open comparisons used
//! to build the histogram are the same comparisons
//! [`PixelRange::contains`] performs — so the kernel returns counts
//! byte-identical to the reference scan [`crate::cp::cp`] on every input.
//! The differential-oracle suite (`tests/kernel_oracle.rs`) proves this over
//! arbitrary masks, ROIs, ranges, and tile sizes.

use crate::mask::Mask;
use crate::range::PixelRange;
use crate::roi::Roi;
use std::sync::{Arc, OnceLock};

/// Default tile edge length in pixels.
pub const DEFAULT_TILE_SIZE: u32 = 64;

/// Number of equi-width value bins per tile histogram. Must be a power of
/// two so that `value * TILE_BINS` is exact in `f32` (only the exponent
/// changes), which the aligned-range fast path relies on.
pub const TILE_BINS: usize = 16;

/// Per-query kernel counters: how many tiles each classification decided.
///
/// `tiles_pruned` counts tiles answered from min/max alone (all-in or
/// all-out), `tiles_hist` counts tiles answered from the cumulative
/// histogram, and `tiles_scanned` counts tiles that fell back to the
/// row-slice pixel scan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TileStats {
    /// Tiles decided from min/max summaries without touching pixels.
    pub tiles_pruned: u64,
    /// Tiles answered exactly from the cumulative histogram.
    pub tiles_hist: u64,
    /// Tiles that required a pixel scan (boundary tiles, straddling ranges).
    pub tiles_scanned: u64,
}

impl TileStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &TileStats) {
        self.tiles_pruned += other.tiles_pruned;
        self.tiles_hist += other.tiles_hist;
        self.tiles_scanned += other.tiles_scanned;
    }

    /// Total tiles classified.
    pub fn tiles_touched(&self) -> u64 {
        self.tiles_pruned + self.tiles_hist + self.tiles_scanned
    }
}

/// Summaries of one tile: value bounds plus a cumulative histogram.
///
/// `min`/`max` are computed with plain comparisons, so NaN pixels never
/// update them; pixels outside the `[0, 1)` value domain (NaN, ±∞, negative,
/// ≥ 1) are excluded from the histogram and tallied in `uncountable`
/// instead, because no [`PixelRange`] can ever count them. A tile with
/// `uncountable > 0` must never be classified *all-in* (its area would
/// overcount the uncountable pixels); all-out and histogram classification
/// stay exact.
#[derive(Debug, Clone, PartialEq)]
pub struct TileSummary {
    min: f32,
    max: f32,
    /// Pixels outside the countable `[0, 1)` domain (NaN, ±∞, out of range).
    uncountable: u32,
    /// `cum[i]` = number of *countable* tile pixels with value
    /// `< i / TILE_BINS`; `cum[TILE_BINS]` is the tile's countable pixel
    /// count.
    cum: [u32; TILE_BINS + 1],
}

impl TileSummary {
    /// Reassembles a summary from its parts (used by persistence layers).
    pub fn from_parts(min: f32, max: f32, uncountable: u32, cum: [u32; TILE_BINS + 1]) -> Self {
        Self {
            min,
            max,
            uncountable,
            cum,
        }
    }

    /// Smallest pixel value in the tile.
    pub fn min(&self) -> f32 {
        self.min
    }

    /// Largest pixel value in the tile.
    pub fn max(&self) -> f32 {
        self.max
    }

    /// The cumulative histogram (`cum[i]` = countable pixels with value
    /// `< i/16`).
    pub fn cum(&self) -> &[u32; TILE_BINS + 1] {
        &self.cum
    }

    /// Number of countable (in-domain) pixels in the tile.
    pub fn count(&self) -> u32 {
        self.cum[TILE_BINS]
    }

    /// Number of uncountable pixels (NaN / out-of-domain) in the tile.
    pub fn uncountable(&self) -> u32 {
        self.uncountable
    }
}

/// The bin holding `value`; exact because `value * TILE_BINS` is exact.
#[inline]
fn bin_of(value: f32) -> usize {
    debug_assert!((0.0..1.0).contains(&value));
    ((value * TILE_BINS as f32) as usize).min(TILE_BINS - 1)
}

/// If `bound` lies exactly on a bin edge `i / TILE_BINS`, returns `i`.
#[inline]
fn bin_edge_index(bound: f32) -> Option<usize> {
    let scaled = bound * TILE_BINS as f32; // exact: TILE_BINS is a power of two
    if scaled >= 0.0 && scaled <= TILE_BINS as f32 && scaled == scaled.floor() {
        Some(scaled as usize)
    } else {
        None
    }
}

/// The per-tile summary index of a mask: tile layout plus one
/// [`TileSummary`] per tile, row-major over tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct TileGrid {
    mask_width: u32,
    mask_height: u32,
    tile: u32,
    tiles_x: u32,
    tiles_y: u32,
    summaries: Vec<TileSummary>,
}

impl TileGrid {
    /// Builds the grid of `mask` with the default tile size.
    pub fn build(mask: &Mask) -> Self {
        Self::build_with(mask, DEFAULT_TILE_SIZE)
    }

    /// Builds the grid of `mask` with tiles of `tile × tile` pixels.
    ///
    /// # Panics
    /// Panics if `tile` is zero.
    pub fn build_with(mask: &Mask, tile: u32) -> Self {
        assert!(tile > 0, "tile size must be non-zero");
        let (w, h) = mask.shape();
        let tiles_x = w.div_ceil(tile);
        let tiles_y = h.div_ceil(tile);
        let mut summaries = Vec::with_capacity((tiles_x as usize) * (tiles_y as usize));
        // One tile row at a time, visiting each mask row once: the row's
        // slices land in the per-tile accumulators of the current tile row.
        let mut mins = vec![f32::INFINITY; tiles_x as usize];
        let mut maxs = vec![f32::NEG_INFINITY; tiles_x as usize];
        let mut uncountables = vec![0u32; tiles_x as usize];
        let mut hists = vec![[0u32; TILE_BINS]; tiles_x as usize];
        for ty in 0..tiles_y {
            for acc in mins.iter_mut() {
                *acc = f32::INFINITY;
            }
            for acc in maxs.iter_mut() {
                *acc = f32::NEG_INFINITY;
            }
            for acc in uncountables.iter_mut() {
                *acc = 0;
            }
            for acc in hists.iter_mut() {
                *acc = [0u32; TILE_BINS];
            }
            let y0 = ty * tile;
            let y1 = (y0 + tile).min(h);
            for y in y0..y1 {
                let row = mask.row(y);
                for tx in 0..tiles_x {
                    let x0 = (tx * tile) as usize;
                    let x1 = ((tx + 1) * tile).min(w) as usize;
                    let (min, max, uncountable, hist) = (
                        &mut mins[tx as usize],
                        &mut maxs[tx as usize],
                        &mut uncountables[tx as usize],
                        &mut hists[tx as usize],
                    );
                    for &v in &row[x0..x1] {
                        // NaN fails both comparisons and so never perturbs
                        // the bounds; finite out-of-domain values widen them,
                        // which only forbids the all-in fast path.
                        if v < *min {
                            *min = v;
                        }
                        if v > *max {
                            *max = v;
                        }
                        if (0.0..1.0).contains(&v) {
                            hist[bin_of(v)] += 1;
                        } else {
                            // NaN / ±∞ / out-of-domain: never in any range.
                            *uncountable += 1;
                        }
                    }
                }
            }
            for tx in 0..tiles_x as usize {
                let mut cum = [0u32; TILE_BINS + 1];
                for (i, &count) in hists[tx].iter().enumerate() {
                    cum[i + 1] = cum[i] + count;
                }
                summaries.push(TileSummary {
                    min: mins[tx],
                    max: maxs[tx],
                    uncountable: uncountables[tx],
                    cum,
                });
            }
        }
        Self {
            mask_width: w,
            mask_height: h,
            tile,
            tiles_x,
            tiles_y,
            summaries,
        }
    }

    /// Reassembles a grid from its parts, or `None` if the summary count
    /// does not match the declared layout (used by persistence layers).
    pub fn from_parts(
        mask_width: u32,
        mask_height: u32,
        tile: u32,
        summaries: Vec<TileSummary>,
    ) -> Option<Self> {
        if mask_width == 0 || mask_height == 0 || tile == 0 {
            return None;
        }
        let tiles_x = mask_width.div_ceil(tile);
        let tiles_y = mask_height.div_ceil(tile);
        if summaries.len() != (tiles_x as usize) * (tiles_y as usize) {
            return None;
        }
        Some(Self {
            mask_width,
            mask_height,
            tile,
            tiles_x,
            tiles_y,
            summaries,
        })
    }

    /// Width of the summarised mask.
    pub fn mask_width(&self) -> u32 {
        self.mask_width
    }

    /// Height of the summarised mask.
    pub fn mask_height(&self) -> u32 {
        self.mask_height
    }

    /// Tile edge length in pixels.
    pub fn tile(&self) -> u32 {
        self.tile
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.summaries.len()
    }

    /// Returns `true` if the grid holds no tiles (never for a valid mask).
    pub fn is_empty(&self) -> bool {
        self.summaries.is_empty()
    }

    /// All tile summaries, row-major over tiles.
    pub fn summaries(&self) -> &[TileSummary] {
        &self.summaries
    }

    /// Returns `true` if the grid describes a mask of this shape.
    pub fn matches_shape(&self, mask: &Mask) -> bool {
        self.mask_width == mask.width() && self.mask_height == mask.height()
    }

    /// Invariant check: the grid equals one freshly rebuilt from `mask`'s
    /// pixels with the same tile size. The ingest-path tests call this after
    /// writes and crash-recovery reopens.
    pub fn verify(&self, mask: &Mask) -> bool {
        self.matches_shape(mask) && *self == TileGrid::build_with(mask, self.tile)
    }

    /// In-memory size of the summaries in bytes.
    pub fn byte_size(&self) -> u64 {
        Self::byte_size_for(self.mask_width, self.mask_height, self.tile)
    }

    /// Summary bytes of a grid over a `width × height` mask with the given
    /// tile size (deterministic in the shape; used for cache accounting).
    pub fn byte_size_for(width: u32, height: u32, tile: u32) -> u64 {
        let tiles = (width.div_ceil(tile) as u64) * (height.div_ceil(tile) as u64);
        tiles * (8 + 4 + 4 * (TILE_BINS as u64 + 1)) + 24
    }

    #[inline]
    fn summary(&self, tx: u32, ty: u32) -> &TileSummary {
        &self.summaries[(ty as usize) * (self.tiles_x as usize) + (tx as usize)]
    }

    /// The in-bounds pixel rectangle of tile `(tx, ty)`.
    #[inline]
    fn tile_rect(&self, tx: u32, ty: u32) -> Roi {
        let x0 = tx * self.tile;
        let y0 = ty * self.tile;
        Roi::new(
            x0,
            y0,
            (x0 + self.tile).min(self.mask_width),
            (y0 + self.tile).min(self.mask_height),
        )
        .expect("tile rectangles are non-empty")
    }

    /// Exact `CP` over `mask` (which must be the mask this grid summarises),
    /// classifying tiles as described in the module docs and recording the
    /// outcome per tile into `stats`.
    pub fn cp(&self, mask: &Mask, roi: &Roi, range: &PixelRange, stats: &mut TileStats) -> u64 {
        debug_assert!(self.matches_shape(mask), "grid built for another mask");
        masksearch_obs::counters::incr(&masksearch_obs::counters::KERNEL_CALLS);
        let Some(clip) = mask.clip_roi(roi) else {
            return 0;
        };
        let lo = range.lo();
        let hi = range.hi();
        let aligned = match (bin_edge_index(lo), bin_edge_index(hi)) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        };
        let ty0 = clip.y0() / self.tile;
        let ty1 = (clip.y1() - 1) / self.tile;
        let tx0 = clip.x0() / self.tile;
        let tx1 = (clip.x1() - 1) / self.tile;
        let mut count = 0u64;
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let s = self.summary(tx, ty);
                // All-out: the tile's value bounds prove no pixel is in range.
                if s.max < lo || s.min >= hi {
                    stats.tiles_pruned += 1;
                    continue;
                }
                let rect = self.tile_rect(tx, ty);
                let inter = rect
                    .intersect(&clip)
                    .expect("tile range overlaps the clipped roi");
                // All-in: every pixel is in range; count the covered area.
                // Requires a fully countable tile — an uncountable (NaN /
                // out-of-domain) pixel never satisfies any range, so the
                // area would overcount it (its value also never updates
                // min/max when NaN, so the bounds alone cannot exclude it).
                if s.uncountable == 0 && s.min >= lo && s.max < hi {
                    stats.tiles_pruned += 1;
                    count += inter.area();
                    continue;
                }
                // Fully covered tile + bin-aligned range: exact from the
                // cumulative histogram.
                if inter == rect {
                    if let Some((a, b)) = aligned {
                        stats.tiles_hist += 1;
                        count += u64::from(s.cum[b] - s.cum[a]);
                        continue;
                    }
                }
                // Boundary tile or straddling range: tight row-slice scan of
                // exactly the intersected pixels.
                stats.tiles_scanned += 1;
                count += mask.count_pixels(&inter, range);
            }
        }
        count
    }

    /// Exact `CP` over the pixelwise composition `op(a, b)` of two masks of
    /// identical shape, using **both** masks' tile summaries: per-tile value
    /// bounds of the composition are derived algebraically from the two
    /// tiles' min/max (see the module-internal bound table), so all-out and all-in
    /// tiles are decided without touching either mask's pixels and only
    /// boundary tiles pay a fused two-row scan. There is no histogram fast
    /// path — marginal histograms cannot express a joint composition
    /// exactly.
    ///
    /// `self` must summarise `a`, `other` must summarise `b`, and both grids
    /// must share one tile size; [`TiledMask::cp_composed_with_stats`]
    /// enforces this and falls back to the reference scan otherwise.
    #[allow(clippy::too_many_arguments)]
    pub fn cp_composed(
        &self,
        other: &TileGrid,
        a: &Mask,
        b: &Mask,
        op: crate::compose::MaskOp,
        roi: &Roi,
        range: &PixelRange,
        stats: &mut TileStats,
    ) -> u64 {
        debug_assert!(self.matches_shape(a), "left grid built for another mask");
        debug_assert!(other.matches_shape(b), "right grid built for another mask");
        debug_assert_eq!(a.shape(), b.shape(), "composition requires equal shapes");
        debug_assert_eq!(self.tile, other.tile, "composition requires equal tiles");
        masksearch_obs::counters::incr(&masksearch_obs::counters::KERNEL_CALLS);
        let Some(clip) = a.clip_roi(roi) else {
            return 0;
        };
        let lo = range.lo();
        let hi = range.hi();
        let ty0 = clip.y0() / self.tile;
        let ty1 = (clip.y1() - 1) / self.tile;
        let tx0 = clip.x0() / self.tile;
        let tx1 = (clip.x1() - 1) / self.tile;
        let mut count = 0u64;
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let sa = self.summary(tx, ty);
                let sb = other.summary(tx, ty);
                let (clo, chi) = composed_tile_bounds(op, sa, sb);
                // All-out: the composed value bounds prove no pixel can lie
                // in the range. NaN bounds (empty-tile sentinels fed through
                // Diff arithmetic) fail both comparisons and fall through to
                // the scan, which is always exact.
                if chi < lo || clo >= hi {
                    stats.tiles_pruned += 1;
                    continue;
                }
                let rect = self.tile_rect(tx, ty);
                let inter = rect
                    .intersect(&clip)
                    .expect("tile range overlaps the clipped roi");
                // All-in: every composed pixel is countable and in range.
                if sa.uncountable == 0 && sb.uncountable == 0 && clo >= lo && chi < hi {
                    stats.tiles_pruned += 1;
                    count += inter.area();
                    continue;
                }
                // Boundary tile: fused scan of exactly the intersected rows.
                stats.tiles_scanned += 1;
                for y in inter.y0()..inter.y1() {
                    let ra = &a.row(y)[inter.x0() as usize..inter.x1() as usize];
                    let rb = &b.row(y)[inter.x0() as usize..inter.x1() as usize];
                    for (&x, &yv) in ra.iter().zip(rb) {
                        if range.contains(op.apply(x, yv)) {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }
}

/// Sound value bounds `[lo, hi]` of the composition `op(a, b)` over one tile,
/// derived from the operands' per-tile min/max:
///
/// | op        | lower bound                         | upper bound                         |
/// |-----------|-------------------------------------|-------------------------------------|
/// | intersect | `min(a.min, b.min)`                 | `min(a.max, b.max)`                 |
/// | union     | `max(a.min, b.min)`                 | `max(a.max, b.max)`                 |
/// | diff      | `max(0, a.min−b.max, b.min−a.max)`  | `max(a.max−b.min, b.max−a.min)`     |
///
/// Every composed pixel with both operands countable lies inside the
/// interval; the intersect/union extremes are additionally attained (the
/// pointwise min of minima *is* the minimum of the pointwise min).
fn composed_tile_bounds(
    op: crate::compose::MaskOp,
    sa: &TileSummary,
    sb: &TileSummary,
) -> (f32, f32) {
    use crate::compose::MaskOp;
    match op {
        MaskOp::Intersect => (sa.min.min(sb.min), sa.max.min(sb.max)),
        MaskOp::Union => (sa.min.max(sb.min), sa.max.max(sb.max)),
        MaskOp::Diff => {
            let hi = (sa.max - sb.min).max(sb.max - sa.min);
            let lo = (sa.min - sb.max).max(sb.min - sa.max).max(0.0);
            (lo, hi)
        }
    }
}

/// A mask paired with its (lazily built) tile grid — the unit the buffer
/// cache stores and the verification executor evaluates `CP` terms on.
///
/// The grid is built on first use ([`TiledMask::grid`]) or seeded from a
/// persisted summary ([`TiledMask::with_grid`]); either way `cp`/`cp_many`
/// return counts byte-identical to the reference scan.
#[derive(Debug)]
pub struct TiledMask {
    mask: Arc<Mask>,
    grid: OnceLock<Arc<TileGrid>>,
}

impl TiledMask {
    /// Wraps a mask; the grid is built lazily on first kernel use.
    pub fn new(mask: Arc<Mask>) -> Self {
        Self {
            mask,
            grid: OnceLock::new(),
        }
    }

    /// Wraps an owned mask; the grid is built lazily on first kernel use.
    pub fn from_mask(mask: Mask) -> Self {
        Self::new(Arc::new(mask))
    }

    /// Wraps a mask with a pre-built grid (e.g. one maintained by the
    /// durable store). A grid whose shape does not match the mask is
    /// discarded and rebuilt lazily instead — a mismatched summary must
    /// never influence counts.
    pub fn with_grid(mask: Arc<Mask>, grid: Arc<TileGrid>) -> Self {
        let tiled = Self::new(mask);
        if grid.matches_shape(&tiled.mask) {
            let _ = tiled.grid.set(grid);
        }
        tiled
    }

    /// The underlying mask.
    pub fn mask(&self) -> &Mask {
        &self.mask
    }

    /// A shared handle on the underlying mask.
    pub fn mask_arc(&self) -> Arc<Mask> {
        Arc::clone(&self.mask)
    }

    /// The tile grid, building it on first use.
    pub fn grid(&self) -> &Arc<TileGrid> {
        self.grid
            .get_or_init(|| Arc::new(TileGrid::build(&self.mask)))
    }

    /// Returns `true` if the grid has already been built or seeded.
    pub fn has_grid(&self) -> bool {
        self.grid.get().is_some()
    }

    /// Exact `CP` through the kernel.
    pub fn cp(&self, roi: &Roi, range: &PixelRange) -> u64 {
        self.cp_with_stats(roi, range, &mut TileStats::default())
    }

    /// Exact `CP` through the kernel, recording tile classifications.
    pub fn cp_with_stats(&self, roi: &Roi, range: &PixelRange, stats: &mut TileStats) -> u64 {
        self.grid().cp(&self.mask, roi, range, stats)
    }

    /// Evaluates several `(roi, range)` terms through the kernel.
    pub fn cp_many(&self, terms: &[(Roi, PixelRange)]) -> Vec<u64> {
        self.cp_many_with_stats(terms, &mut TileStats::default())
    }

    /// Evaluates several `(roi, range)` terms through the kernel, recording
    /// tile classifications across all terms.
    pub fn cp_many_with_stats(
        &self,
        terms: &[(Roi, PixelRange)],
        stats: &mut TileStats,
    ) -> Vec<u64> {
        terms
            .iter()
            .map(|(roi, range)| self.cp_with_stats(roi, range, stats))
            .collect()
    }

    /// Exact `CP` over the pixelwise composition `op(self, other)` through
    /// the composed tile kernel, recording tile classifications.
    ///
    /// The masks must have identical shapes ([`crate::error::Error::ShapeMismatch`]
    /// otherwise). When the two grids share a tile size (the default — all
    /// lazily built grids use [`DEFAULT_TILE_SIZE`]) the composed kernel
    /// classifies tiles from both summaries; mismatched tile layouts (a
    /// persisted grid with a custom size) fall back to the fused reference
    /// scan. Counts are byte-identical either way.
    pub fn cp_composed_with_stats(
        &self,
        other: &TiledMask,
        op: crate::compose::MaskOp,
        roi: &Roi,
        range: &PixelRange,
        stats: &mut TileStats,
    ) -> crate::error::Result<u64> {
        crate::compose::check_composable(&self.mask, &other.mask)?;
        let ga = self.grid();
        if ga.tile() == other.grid().tile() {
            let gb = other.grid();
            Ok(ga.cp_composed(gb, &self.mask, &other.mask, op, roi, range, stats))
        } else {
            crate::compose::cp_composed(&self.mask, &other.mask, op, roi, range)
        }
    }

    /// Cache-accounting size: decoded pixels plus the (default-layout) grid
    /// summaries. Deterministic in the shape regardless of whether the lazy
    /// grid has been built yet.
    pub fn byte_size(&self) -> u64 {
        self.mask.byte_size()
            + TileGrid::byte_size_for(self.mask.width(), self.mask.height(), DEFAULT_TILE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::cp;

    fn gradient(w: u32, h: u32) -> Mask {
        Mask::from_fn(w, h, move |x, y| {
            ((x + y * w) as f32) / ((w * h) as f32).max(1.0)
        })
    }

    fn blob(w: u32, h: u32) -> Mask {
        Mask::from_fn(w, h, move |x, y| {
            let dx = x as f32 - w as f32 / 2.0;
            let dy = y as f32 - h as f32 / 2.0;
            (-(dx * dx + dy * dy) / (w as f32 * h as f32 / 16.0).max(1.0)).exp() * 0.97
        })
    }

    fn assert_kernel_matches(mask: &Mask, tile: u32, roi: &Roi, range: &PixelRange) {
        let grid = TileGrid::build_with(mask, tile);
        let mut stats = TileStats::default();
        assert_eq!(
            grid.cp(mask, roi, range, &mut stats),
            cp(mask, roi, range),
            "tile {tile} roi {roi} range {range}"
        );
    }

    #[test]
    fn kernel_matches_reference_across_tile_sizes_and_ranges() {
        for mask in [gradient(37, 23), blob(64, 64), gradient(1, 19), blob(19, 1)] {
            for tile in [1, 3, 8, 64] {
                for roi in [
                    Roi::new(0, 0, 200, 200).unwrap(),
                    Roi::new(5, 2, 21, 17).unwrap(),
                    Roi::new(3, 3, 4, 4).unwrap(),
                    Roi::new(100, 100, 150, 160).unwrap(),
                ] {
                    for range in [
                        PixelRange::full(),
                        PixelRange::new(0.5, 1.0).unwrap(),
                        PixelRange::new(0.25, 0.75).unwrap(),
                        PixelRange::new(0.3, 0.31).unwrap(),
                        PixelRange::new(0.0, f32::EPSILON).unwrap(),
                    ] {
                        assert_kernel_matches(&mask, tile, &roi, &range);
                    }
                }
            }
        }
    }

    #[test]
    fn selective_range_on_smooth_mask_prunes_most_tiles() {
        let mask = blob(256, 256);
        let grid = TileGrid::build_with(&mask, 32);
        let mut stats = TileStats::default();
        let range = PixelRange::new(0.9, 1.0).unwrap();
        let count = grid.cp(&mask, &mask.full_roi(), &range, &mut stats);
        assert_eq!(count, cp(&mask, &mask.full_roi(), &range));
        assert!(
            stats.tiles_pruned > stats.tiles_scanned,
            "expected mostly pruned tiles, got {stats:?}"
        );
        assert_eq!(stats.tiles_touched(), 64);
    }

    #[test]
    fn aligned_range_uses_the_histogram() {
        // Every tile spreads over the full value domain, so min/max cannot
        // decide, but the range is bin-aligned (4/16 and 8/16): every fully
        // covered tile must answer from its histogram, none from a scan.
        let mask = Mask::from_fn(128, 128, |x, y| ((x + 2 * y) % 16) as f32 / 16.0);
        let grid = TileGrid::build_with(&mask, 32);
        let mut stats = TileStats::default();
        let range = PixelRange::new(0.25, 0.5).unwrap();
        let count = grid.cp(&mask, &mask.full_roi(), &range, &mut stats);
        assert_eq!(count, cp(&mask, &mask.full_roi(), &range));
        assert!(stats.tiles_hist > 0, "expected histogram hits, {stats:?}");
        assert_eq!(stats.tiles_scanned, 0);
    }

    #[test]
    fn bin_edges_are_detected_exactly() {
        for i in 0..=TILE_BINS {
            assert_eq!(bin_edge_index(i as f32 / TILE_BINS as f32), Some(i));
        }
        assert_eq!(bin_edge_index(0.3), None);
        assert_eq!(bin_edge_index(0.50001), None);
        assert_eq!(bin_edge_index(f32::EPSILON), None);
    }

    #[test]
    fn disjoint_roi_counts_zero() {
        let mask = gradient(16, 16);
        let tiled = TiledMask::from_mask(mask);
        let far = Roi::new(100, 100, 120, 120).unwrap();
        assert_eq!(tiled.cp(&far, &PixelRange::full()), 0);
    }

    #[test]
    fn cp_many_matches_per_term_cp() {
        let mask = blob(90, 70);
        let tiled = TiledMask::from_mask(mask.clone());
        let terms = vec![
            (Roi::new(0, 0, 30, 30).unwrap(), PixelRange::full()),
            (
                Roi::new(10, 10, 200, 200).unwrap(),
                PixelRange::new(0.5, 1.0).unwrap(),
            ),
            (
                Roi::new(60, 50, 90, 70).unwrap(),
                PixelRange::new(0.1, 0.2).unwrap(),
            ),
        ];
        let mut stats = TileStats::default();
        let counts = tiled.cp_many_with_stats(&terms, &mut stats);
        for (i, (roi, range)) in terms.iter().enumerate() {
            assert_eq!(counts[i], cp(&mask, roi, range), "term {i}");
        }
        assert!(stats.tiles_touched() > 0);
    }

    #[test]
    fn grid_round_trips_through_parts_and_verifies() {
        let mask = blob(100, 60);
        let grid = TileGrid::build_with(&mask, 16);
        assert!(grid.verify(&mask));
        let rebuilt = TileGrid::from_parts(
            grid.mask_width(),
            grid.mask_height(),
            grid.tile(),
            grid.summaries().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, grid);
        // A shape with a different tile count is rejected.
        assert!(TileGrid::from_parts(100, 65, 16, grid.summaries().to_vec()).is_none());
        assert!(TileGrid::from_parts(0, 60, 16, vec![]).is_none());
        // A different mask fails verification.
        assert!(!grid.verify(&gradient(100, 60)));
    }

    #[test]
    fn mismatched_seeded_grid_is_discarded() {
        let mask = Arc::new(gradient(32, 32));
        let wrong = Arc::new(TileGrid::build(&gradient(16, 16)));
        let tiled = TiledMask::with_grid(Arc::clone(&mask), wrong);
        assert!(!tiled.has_grid());
        // The lazily rebuilt grid still produces exact counts.
        let range = PixelRange::new(0.5, 1.0).unwrap();
        assert_eq!(
            tiled.cp(&mask.full_roi(), &range),
            cp(&mask, &mask.full_roi(), &range)
        );
        assert!(tiled.has_grid());
    }

    #[test]
    fn byte_size_is_deterministic_across_lazy_state() {
        let tiled = TiledMask::from_mask(gradient(130, 70));
        let before = tiled.byte_size();
        let _ = tiled.grid();
        assert_eq!(tiled.byte_size(), before);
        assert!(before > tiled.mask().byte_size());
    }

    #[test]
    fn summary_accessors_are_consistent() {
        let mask = gradient(48, 48);
        let grid = TileGrid::build_with(&mask, 16);
        assert_eq!(grid.len(), 9);
        assert!(!grid.is_empty());
        let total: u64 = grid.summaries().iter().map(|s| u64::from(s.count())).sum();
        assert_eq!(total, mask.num_pixels() as u64);
        for s in grid.summaries() {
            assert!(s.min() <= s.max());
            assert_eq!(s.uncountable(), 0);
            let reassembled = TileSummary::from_parts(s.min(), s.max(), s.uncountable(), *s.cum());
            assert_eq!(&reassembled, s);
        }
    }

    #[test]
    fn kernel_agrees_with_scan_on_nan_and_inf_pixels() {
        // A mask whose pixels would all satisfy [0.25, 0.75) from min/max
        // alone, with NaN / ±∞ / out-of-domain pixels sprinkled in: the
        // all-in and histogram paths must not count the uncountables.
        let mut data = vec![0.5f32; 24 * 24];
        data[0] = f32::NAN;
        data[30] = f32::INFINITY;
        data[77] = f32::NEG_INFINITY;
        data[100] = -0.25;
        data[200] = 1.5;
        data[300] = -0.0; // countable: −0.0 ≥ 0.0 holds in IEEE
        let mask = Mask::from_data_unchecked(24, 24, data).unwrap();
        for tile in [1, 4, 8, 64] {
            let grid = TileGrid::build_with(&mask, tile);
            for roi in [
                mask.full_roi(),
                Roi::new(0, 0, 7, 7).unwrap(),
                Roi::new(3, 5, 20, 24).unwrap(),
            ] {
                for range in [
                    PixelRange::full(),
                    PixelRange::new(0.25, 0.75).unwrap(), // bin-aligned
                    PixelRange::new(0.0, 0.5).unwrap(),
                    PixelRange::new(0.4, 0.6).unwrap(),
                ] {
                    let mut stats = TileStats::default();
                    assert_eq!(
                        grid.cp(&mask, &roi, &range, &mut stats),
                        cp(&mask, &roi, &range),
                        "tile {tile} roi {roi} range {range}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_nan_tiles_classify_all_out() {
        let mask = Mask::from_data_unchecked(8, 8, vec![f32::NAN; 64]).unwrap();
        let grid = TileGrid::build_with(&mask, 4);
        let mut stats = TileStats::default();
        assert_eq!(
            grid.cp(&mask, &mask.full_roi(), &PixelRange::full(), &mut stats),
            0
        );
        assert_eq!(stats.tiles_pruned, 4);
        assert_eq!(stats.tiles_scanned, 0);
    }

    #[test]
    fn composed_kernel_matches_reference_scan() {
        use crate::compose::{cp_composed, MaskOp};
        let a = blob(90, 70);
        let b = gradient(90, 70);
        for op in [MaskOp::Intersect, MaskOp::Union, MaskOp::Diff] {
            for tile in [5, 16, 64] {
                let ga = TileGrid::build_with(&a, tile);
                let gb = TileGrid::build_with(&b, tile);
                for roi in [
                    a.full_roi(),
                    Roi::new(10, 10, 50, 60).unwrap(),
                    Roi::new(85, 65, 200, 200).unwrap(),
                    Roi::new(100, 100, 120, 120).unwrap(),
                ] {
                    for range in [
                        PixelRange::full(),
                        PixelRange::new(0.5, 1.0).unwrap(),
                        PixelRange::new(0.05, 0.2).unwrap(),
                    ] {
                        let mut stats = TileStats::default();
                        assert_eq!(
                            ga.cp_composed(&gb, &a, &b, op, &roi, &range, &mut stats),
                            cp_composed(&a, &b, op, &roi, &range).unwrap(),
                            "{op} tile {tile} roi {roi} range {range}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn composed_kernel_prunes_agreeing_smooth_masks() {
        use crate::compose::MaskOp;
        // Two near-identical smooth blobs: |a − b| is tiny everywhere, so a
        // selective DIFF range must prune almost every tile from composed
        // min/max bounds alone.
        let a = blob(256, 256);
        let b = Mask::from_fn(256, 256, |x, y| (a.get(x, y) * 0.99).min(0.999));
        let ta = TiledMask::from_mask(a.clone());
        let tb = TiledMask::from_mask(b.clone());
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let mut stats = TileStats::default();
        let count = ta
            .cp_composed_with_stats(&tb, MaskOp::Diff, &a.full_roi(), &range, &mut stats)
            .unwrap();
        assert_eq!(
            count,
            crate::compose::cp_composed(&a, &b, MaskOp::Diff, &a.full_roi(), &range).unwrap()
        );
        assert_eq!(count, 0);
        assert!(
            stats.tiles_pruned > stats.tiles_scanned,
            "expected mostly pruned tiles, got {stats:?}"
        );
    }

    #[test]
    fn composed_kernel_nan_pixels_never_counted() {
        use crate::compose::{cp_composed, MaskOp};
        let mut da = vec![0.6f32; 16 * 16];
        let mut db = vec![0.4f32; 16 * 16];
        da[5] = f32::NAN;
        db[9] = f32::NAN;
        let a = Mask::from_data_unchecked(16, 16, da).unwrap();
        let b = Mask::from_data_unchecked(16, 16, db).unwrap();
        let ta = TiledMask::from_mask(a.clone());
        let tb = TiledMask::from_mask(b.clone());
        for op in [MaskOp::Intersect, MaskOp::Union, MaskOp::Diff] {
            for range in [PixelRange::full(), PixelRange::new(0.25, 0.75).unwrap()] {
                let mut stats = TileStats::default();
                assert_eq!(
                    ta.cp_composed_with_stats(&tb, op, &a.full_roi(), &range, &mut stats)
                        .unwrap(),
                    cp_composed(&a, &b, op, &a.full_roi(), &range).unwrap(),
                    "{op} {range}"
                );
            }
        }
    }

    #[test]
    fn composed_kernel_rejects_shape_mismatch_and_survives_tile_mismatch() {
        use crate::compose::MaskOp;
        let a = TiledMask::from_mask(gradient(32, 32));
        let b = TiledMask::from_mask(gradient(16, 16));
        let mut stats = TileStats::default();
        assert!(a
            .cp_composed_with_stats(
                &b,
                MaskOp::Union,
                &Roi::new(0, 0, 32, 32).unwrap(),
                &PixelRange::full(),
                &mut stats
            )
            .is_err());
        // Mismatched tile layouts fall back to the reference scan.
        let c_mask = Arc::new(gradient(32, 32));
        let seeded = Arc::new(TileGrid::build_with(&c_mask, 8));
        let c = TiledMask::with_grid(Arc::clone(&c_mask), seeded);
        let count = a
            .cp_composed_with_stats(
                &c,
                MaskOp::Union,
                &c_mask.full_roi(),
                &PixelRange::full(),
                &mut stats,
            )
            .unwrap();
        assert_eq!(count, 32 * 32);
    }
}
