//! Identifier newtypes and enumerations of the `MasksDatabaseView` schema.
//!
//! The paper's conceptual relational view (§2.1) is
//!
//! ```sql
//! MasksDatabaseView (
//!     mask_id   INTEGER PRIMARY KEY,
//!     image_id  INTEGER,
//!     model_id  INTEGER,
//!     mask_type INTEGER,
//!     mask      REAL[][],
//!     ...);
//! ```
//!
//! This module provides strongly-typed identifiers for those columns so that
//! a `MaskId` can never be accidentally used where an `ImageId` is expected.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates a new identifier from its raw integer value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value of the identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_newtype!(
    /// Unique identifier of a mask (the primary key of `MasksDatabaseView`).
    MaskId
);
id_newtype!(
    /// Identifier of the image a mask annotates. An image may have many
    /// masks (one per model and mask type) or none at all.
    ImageId
);
id_newtype!(
    /// Identifier of the model that produced a mask (e.g. one of the two
    /// ResNet-50 checkpoints in the paper's evaluation).
    ModelId
);
id_newtype!(
    /// Class label identifier (ground-truth or predicted).
    Label
);

/// The kind of mask stored in a row of `MasksDatabaseView`.
///
/// The paper models this as an `ENUM`; the variants below cover the mask
/// families enumerated in §1 plus an escape hatch for user-defined types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MaskType {
    /// Model-explanation saliency map (e.g. GradCAM, SmoothGrad).
    #[default]
    SaliencyMap,
    /// Human attention map collected from eye tracking or annotation.
    HumanAttentionMap,
    /// Semantic or instance segmentation probability map.
    SegmentationMap,
    /// Monocular depth estimation map (normalised to `[0, 1)`).
    DepthMap,
    /// Human pose joint-probability map.
    PoseMap,
    /// Any other mask family, identified by a user-chosen discriminant.
    Other(u16),
}

impl MaskType {
    /// Encodes the mask type as a stable integer discriminant, used by the
    /// storage layer and the catalog.
    pub fn to_code(self) -> u16 {
        match self {
            MaskType::SaliencyMap => 1,
            MaskType::HumanAttentionMap => 2,
            MaskType::SegmentationMap => 3,
            MaskType::DepthMap => 4,
            MaskType::PoseMap => 5,
            MaskType::Other(code) => code.max(16),
        }
    }

    /// Decodes a discriminant produced by [`MaskType::to_code`].
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => MaskType::SaliencyMap,
            2 => MaskType::HumanAttentionMap,
            3 => MaskType::SegmentationMap,
            4 => MaskType::DepthMap,
            5 => MaskType::PoseMap,
            other => MaskType::Other(other),
        }
    }
}

impl fmt::Display for MaskType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskType::SaliencyMap => write!(f, "saliency_map"),
            MaskType::HumanAttentionMap => write!(f, "human_attention_map"),
            MaskType::SegmentationMap => write!(f, "segmentation_map"),
            MaskType::DepthMap => write!(f, "depth_map"),
            MaskType::PoseMap => write!(f, "pose_map"),
            MaskType::Other(code) => write!(f, "other({code})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn id_newtypes_round_trip_raw_values() {
        let id = MaskId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(MaskId::from(42u64), id);
        assert_eq!(id.to_string(), "42");
    }

    #[test]
    fn id_newtypes_are_distinct_types() {
        // This is a compile-time property; here we just confirm the values
        // order and hash as expected.
        let mut set = HashSet::new();
        set.insert(ImageId::new(1));
        set.insert(ImageId::new(1));
        set.insert(ImageId::new(2));
        assert_eq!(set.len(), 2);
        assert!(ModelId::new(1) < ModelId::new(2));
    }

    #[test]
    fn mask_type_codes_round_trip() {
        for ty in [
            MaskType::SaliencyMap,
            MaskType::HumanAttentionMap,
            MaskType::SegmentationMap,
            MaskType::DepthMap,
            MaskType::PoseMap,
            MaskType::Other(99),
        ] {
            assert_eq!(MaskType::from_code(ty.to_code()), ty);
        }
    }

    #[test]
    fn other_mask_type_codes_do_not_collide_with_builtins() {
        // `Other` codes are clamped into the user range so a round trip never
        // produces a built-in variant.
        let code = MaskType::Other(3).to_code();
        assert!(code >= 16);
        assert!(matches!(MaskType::from_code(code), MaskType::Other(_)));
    }

    #[test]
    fn mask_type_display_is_stable() {
        assert_eq!(MaskType::SaliencyMap.to_string(), "saliency_map");
        assert_eq!(MaskType::Other(31).to_string(), "other(31)");
    }

    #[test]
    fn default_mask_type_is_saliency() {
        assert_eq!(MaskType::default(), MaskType::SaliencyMap);
    }
}
