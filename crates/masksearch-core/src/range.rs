//! Pixel-value ranges `[lo, hi)` used by the `CP` function.

use crate::error::{Error, Result};
use std::fmt;

/// A half-open pixel-value range `[lo, hi)` with `0 <= lo < hi <= 1`.
///
/// The paper writes ranges as `(lv, uv)`; the semantics used throughout the
/// paper (and formalised in the definition of `CP`, §2.1) are
/// `lv <= value < uv`, i.e. inclusive lower bound and exclusive upper bound,
/// which is what this type implements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelRange {
    lo: f32,
    hi: f32,
}

impl PixelRange {
    /// Creates a range `[lo, hi)`, validating `0 <= lo < hi <= 1`.
    pub fn new(lo: f32, hi: f32) -> Result<Self> {
        if lo.is_nan() || hi.is_nan() || lo < 0.0 || hi > 1.0 || lo >= hi {
            return Err(Error::InvalidPixelRange { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// The full value domain `[0, 1)`. Counting pixels over this range counts
    /// every pixel in the ROI.
    pub fn full() -> Self {
        Self { lo: 0.0, hi: 1.0 }
    }

    /// Convenience constructor for "salient pixel" style ranges `[lo, 1)`.
    pub fn at_least(lo: f32) -> Result<Self> {
        Self::new(lo, 1.0)
    }

    /// Lower bound (inclusive).
    #[inline]
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// Upper bound (exclusive).
    #[inline]
    pub fn hi(&self) -> f32 {
        self.hi
    }

    /// Returns `true` if `value` lies in `[lo, hi)`.
    #[inline]
    pub fn contains(&self, value: f32) -> bool {
        value >= self.lo && value < self.hi
    }

    /// Width of the range.
    #[inline]
    pub fn width(&self) -> f32 {
        self.hi - self.lo
    }

    /// Returns `true` if this range covers the entire `[0, 1)` value domain.
    pub fn is_full(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 1.0
    }

    /// Intersection of two ranges, or `None` if they are disjoint.
    pub fn intersect(&self, other: &PixelRange) -> Option<PixelRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(PixelRange { lo, hi })
        } else {
            None
        }
    }
}

impl fmt::Display for PixelRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_bounds() {
        assert!(PixelRange::new(0.0, 1.0).is_ok());
        assert!(PixelRange::new(0.6, 1.0).is_ok());
        assert!(PixelRange::new(0.5, 0.5).is_err());
        assert!(PixelRange::new(0.7, 0.6).is_err());
        assert!(PixelRange::new(-0.1, 0.5).is_err());
        assert!(PixelRange::new(0.0, 1.1).is_err());
        assert!(PixelRange::new(f32::NAN, 1.0).is_err());
    }

    #[test]
    fn contains_is_half_open() {
        let r = PixelRange::new(0.25, 0.75).unwrap();
        assert!(r.contains(0.25));
        assert!(r.contains(0.5));
        assert!(!r.contains(0.75));
        assert!(!r.contains(0.1));
    }

    #[test]
    fn full_range_covers_domain() {
        let r = PixelRange::full();
        assert!(r.is_full());
        assert!(r.contains(0.0));
        assert!(r.contains(0.999));
        assert_eq!(r.width(), 1.0);
    }

    #[test]
    fn at_least_builds_upper_open_range() {
        let r = PixelRange::at_least(0.85).unwrap();
        assert!(r.contains(0.85));
        assert!(r.contains(0.99));
        assert!(!r.contains(0.84));
    }

    #[test]
    fn intersection() {
        let a = PixelRange::new(0.2, 0.6).unwrap();
        let b = PixelRange::new(0.4, 0.8).unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.lo(), 0.4);
        assert_eq!(i.hi(), 0.6);
        let c = PixelRange::new(0.6, 0.9).unwrap();
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn display_formats_bounds() {
        assert_eq!(PixelRange::new(0.6, 1.0).unwrap().to_string(), "[0.6, 1)");
    }
}
