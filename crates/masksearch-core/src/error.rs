//! Error types shared by the core data model.

use std::fmt;

/// Convenience alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while constructing or manipulating core data-model values.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A mask was constructed with inconsistent dimensions and data length.
    DimensionMismatch {
        /// Declared width in pixels.
        width: u32,
        /// Declared height in pixels.
        height: u32,
        /// Length of the supplied pixel buffer.
        data_len: usize,
    },
    /// A mask dimension was zero.
    EmptyMask,
    /// A pixel value fell outside the valid `[0, 1)` range of the data model.
    PixelOutOfRange {
        /// The offending value.
        value: f32,
        /// Flat index of the offending pixel.
        index: usize,
    },
    /// A pixel coordinate was outside the mask bounds.
    CoordinateOutOfBounds {
        /// Requested x coordinate.
        x: u32,
        /// Requested y coordinate.
        y: u32,
        /// Mask width.
        width: u32,
        /// Mask height.
        height: u32,
    },
    /// A region of interest was degenerate (zero area) or inverted.
    InvalidRoi {
        /// Left edge (inclusive).
        x0: u32,
        /// Top edge (inclusive).
        y0: u32,
        /// Right edge (exclusive).
        x1: u32,
        /// Bottom edge (exclusive).
        y1: u32,
    },
    /// A pixel-value range was empty, inverted, or outside `[0, 1]`.
    InvalidPixelRange {
        /// Lower bound (inclusive).
        lo: f32,
        /// Upper bound (exclusive).
        hi: f32,
    },
    /// A mask aggregation was attempted over masks of differing shapes.
    ShapeMismatch {
        /// Shape of the first mask.
        expected: (u32, u32),
        /// Shape of the offending mask.
        found: (u32, u32),
    },
    /// A mask aggregation was attempted over an empty collection.
    EmptyAggregation,
    /// Weighted aggregation received a weight vector of the wrong length.
    WeightLengthMismatch {
        /// Number of masks being aggregated.
        masks: usize,
        /// Number of weights supplied.
        weights: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch {
                width,
                height,
                data_len,
            } => write!(
                f,
                "mask dimensions {width}x{height} require {} pixels but {data_len} were supplied",
                (*width as usize) * (*height as usize)
            ),
            Error::EmptyMask => write!(f, "mask dimensions must be non-zero"),
            Error::PixelOutOfRange { value, index } => write!(
                f,
                "pixel value {value} at flat index {index} is outside the mask value domain [0, 1)"
            ),
            Error::CoordinateOutOfBounds {
                x,
                y,
                width,
                height,
            } => write!(
                f,
                "coordinate ({x}, {y}) is outside the {width}x{height} mask"
            ),
            Error::InvalidRoi { x0, y0, x1, y1 } => write!(
                f,
                "region of interest [{x0}, {x1}) x [{y0}, {y1}) is empty or inverted"
            ),
            Error::InvalidPixelRange { lo, hi } => write!(
                f,
                "pixel value range [{lo}, {hi}) is empty, inverted, or outside [0, 1]"
            ),
            Error::ShapeMismatch { expected, found } => write!(
                f,
                "mask aggregation requires identical shapes: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            Error::EmptyAggregation => {
                write!(f, "mask aggregation requires at least one input mask")
            }
            Error::WeightLengthMismatch { masks, weights } => write!(
                f,
                "weighted aggregation over {masks} masks received {weights} weights"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::DimensionMismatch {
            width: 4,
            height: 4,
            data_len: 15,
        };
        let msg = e.to_string();
        assert!(msg.contains("4x4"));
        assert!(msg.contains("16"));
        assert!(msg.contains("15"));

        let e = Error::PixelOutOfRange {
            value: 1.5,
            index: 3,
        };
        assert!(e.to_string().contains("1.5"));

        let e = Error::InvalidRoi {
            x0: 5,
            y0: 5,
            x1: 5,
            y1: 9,
        };
        assert!(e.to_string().contains('5'));

        let e = Error::ShapeMismatch {
            expected: (4, 4),
            found: (8, 8),
        };
        assert!(e.to_string().contains("4x4"));
        assert!(e.to_string().contains("8x8"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let e = Error::EmptyMask;
        assert_eq!(e.clone(), Error::EmptyMask);
        assert_ne!(e, Error::EmptyAggregation);
    }
}
