//! Pixelwise composition of two masks of the same image — the *mask
//! expression algebra* behind multi-mask queries.
//!
//! The MaskSearch scenarios that compare masks of one image (saliency vs.
//! object masks, an old vs. a new model's masks; see the demonstration paper,
//! Wei et al., arXiv:2404.06563) all reduce to evaluating `CP` over a
//! *composed* mask:
//!
//! * [`MaskOp::Intersect`] — pixelwise `min(a, b)`: high only where **both**
//!   masks are high (agreement).
//! * [`MaskOp::Union`] — pixelwise `max(a, b)`: high where **either** mask is
//!   high.
//! * [`MaskOp::Diff`] — pixelwise `|a − b|`: high where the masks
//!   **disagree**.
//!
//! [`cp_composed`] is the reference implementation: a single fused pass over
//! both pixel buffers that never materialises the composed mask. Everything
//! upstream (the composed tile kernel in [`crate::tiled`], the composed CHI
//! bound algebra in `masksearch-index`, and the pair executors in
//! `masksearch-query`) is defined relative to it.
//!
//! ## NaN semantics
//!
//! A composed pixel where **either** operand is NaN is NaN, and a NaN pixel
//! is *never in range* (`PixelRange::contains` is `false` for NaN), matching
//! the single-mask rule. [`MaskOp::apply`] implements this explicitly rather
//! than relying on `f32::min`/`f32::max`, whose NaN propagation differs from
//! comparison-based scans.

use crate::error::{Error, Result};
use crate::mask::Mask;
use crate::range::PixelRange;
use crate::roi::Roi;
use std::fmt;

/// A pixelwise composition of two masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskOp {
    /// Pixelwise minimum — agreement of the two masks.
    Intersect,
    /// Pixelwise maximum — either mask.
    Union,
    /// Pixelwise absolute difference — disagreement of the two masks.
    Diff,
}

impl MaskOp {
    /// Applies the composition to one pixel pair.
    ///
    /// If either operand is NaN the result is NaN (and therefore never
    /// counted by any range); otherwise the IEEE min/max/abs-difference.
    #[inline]
    pub fn apply(&self, a: f32, b: f32) -> f32 {
        if a.is_nan() || b.is_nan() {
            return f32::NAN;
        }
        match self {
            MaskOp::Intersect => a.min(b),
            MaskOp::Union => a.max(b),
            MaskOp::Diff => (a - b).abs(),
        }
    }

    /// A short stable name for plans, signatures, and statistics output.
    pub fn name(&self) -> &'static str {
        match self {
            MaskOp::Intersect => "intersect",
            MaskOp::Union => "union",
            MaskOp::Diff => "diff",
        }
    }
}

impl fmt::Display for MaskOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Checks that two masks can be composed (identical shapes).
pub fn check_composable(a: &Mask, b: &Mask) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(Error::ShapeMismatch {
            expected: a.shape(),
            found: b.shape(),
        });
    }
    Ok(())
}

/// Materialises the composed mask `op(a, b)`.
///
/// Prefer [`cp_composed`] (or the composed tile kernel) when only counts are
/// needed — this allocates a full pixel buffer. Because `Diff` of two
/// in-domain masks stays in `[0, 1)` and `Intersect`/`Union` preserve the
/// domain, the result of composing valid masks is always a valid mask; NaN
/// operands produce NaN pixels, which the returned buffer keeps verbatim.
pub fn compose_masks(a: &Mask, b: &Mask, op: MaskOp) -> Result<Mask> {
    check_composable(a, b)?;
    let data: Vec<f32> = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| op.apply(x, y))
        .collect();
    Ok(Mask::from_data_unchecked(a.width(), a.height(), data).expect("shapes already validated"))
}

/// Exact `CP` over the composed mask `op(a, b)` — the reference scan every
/// composed fast path is tested against. Streams over both pixel buffers
/// without materialising the composition.
pub fn cp_composed(a: &Mask, b: &Mask, op: MaskOp, roi: &Roi, range: &PixelRange) -> Result<u64> {
    check_composable(a, b)?;
    let Some(clip) = a.clip_roi(roi) else {
        return Ok(0);
    };
    let mut count = 0u64;
    for y in clip.y0()..clip.y1() {
        let ra = &a.row(y)[clip.x0() as usize..clip.x1() as usize];
        let rb = &b.row(y)[clip.x0() as usize..clip.x1() as usize];
        for (&x, &yv) in ra.iter().zip(rb) {
            if range.contains(op.apply(x, yv)) {
                count += 1;
            }
        }
    }
    Ok(count)
}

/// Evaluates `CP` over the composed mask for several `(roi, range)` pairs.
pub fn cp_composed_many(
    a: &Mask,
    b: &Mask,
    op: MaskOp,
    terms: &[(Roi, PixelRange)],
) -> Result<Vec<u64>> {
    terms
        .iter()
        .map(|(roi, range)| cp_composed(a, b, op, roi, range))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::cp;

    fn left() -> Mask {
        Mask::from_fn(16, 12, |x, y| ((x * 3 + y * 7) % 13) as f32 / 13.0)
    }

    fn right() -> Mask {
        Mask::from_fn(16, 12, |x, y| ((x * 5 + y * 2) % 11) as f32 / 11.0)
    }

    #[test]
    fn apply_matches_ieee_on_finite_values() {
        assert_eq!(MaskOp::Intersect.apply(0.2, 0.7), 0.2);
        assert_eq!(MaskOp::Union.apply(0.2, 0.7), 0.7);
        assert!((MaskOp::Diff.apply(0.2, 0.7) - 0.5).abs() < 1e-7);
        assert_eq!(MaskOp::Diff.apply(0.7, 0.2), MaskOp::Diff.apply(0.2, 0.7));
    }

    #[test]
    fn apply_is_nan_poisoning_in_both_positions() {
        for op in [MaskOp::Intersect, MaskOp::Union, MaskOp::Diff] {
            assert!(op.apply(f32::NAN, 0.5).is_nan(), "{op}");
            assert!(op.apply(0.5, f32::NAN).is_nan(), "{op}");
            assert!(op.apply(f32::NAN, f32::NAN).is_nan(), "{op}");
        }
    }

    #[test]
    fn composed_cp_matches_materialised_composition() {
        let (a, b) = (left(), right());
        for op in [MaskOp::Intersect, MaskOp::Union, MaskOp::Diff] {
            let composed = compose_masks(&a, &b, op).unwrap();
            for roi in [
                a.full_roi(),
                Roi::new(2, 3, 9, 11).unwrap(),
                Roi::new(10, 10, 100, 100).unwrap(),
                Roi::new(200, 200, 300, 300).unwrap(),
            ] {
                for range in [
                    PixelRange::full(),
                    PixelRange::new(0.5, 1.0).unwrap(),
                    PixelRange::new(0.1, 0.3).unwrap(),
                ] {
                    assert_eq!(
                        cp_composed(&a, &b, op, &roi, &range).unwrap(),
                        cp(&composed, &roi, &range),
                        "{op} roi {roi} range {range}"
                    );
                }
            }
        }
    }

    #[test]
    fn cp_composed_many_matches_per_term() {
        let (a, b) = (left(), right());
        let terms = vec![
            (a.full_roi(), PixelRange::full()),
            (
                Roi::new(1, 1, 5, 5).unwrap(),
                PixelRange::new(0.2, 0.8).unwrap(),
            ),
        ];
        let batch = cp_composed_many(&a, &b, MaskOp::Diff, &terms).unwrap();
        for (i, (roi, range)) in terms.iter().enumerate() {
            assert_eq!(
                batch[i],
                cp_composed(&a, &b, MaskOp::Diff, roi, range).unwrap()
            );
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = left();
        let b = Mask::zeros(8, 8);
        assert!(matches!(
            cp_composed(&a, &b, MaskOp::Union, &a.full_roi(), &PixelRange::full()),
            Err(Error::ShapeMismatch { .. })
        ));
        assert!(compose_masks(&a, &b, MaskOp::Diff).is_err());
    }

    #[test]
    fn nan_pixels_are_never_counted() {
        let a = Mask::from_data_unchecked(2, 2, vec![0.5, f32::NAN, 0.2, 0.9]).unwrap();
        let b = Mask::from_data_unchecked(2, 2, vec![0.5, 0.5, f32::NAN, 0.9]).unwrap();
        let roi = a.full_roi();
        // Only pixels (0,0) and (1,1) have both operands non-NaN.
        assert_eq!(
            cp_composed(&a, &b, MaskOp::Union, &roi, &PixelRange::full()).unwrap(),
            2
        );
        assert_eq!(
            cp_composed(&a, &b, MaskOp::Diff, &roi, &PixelRange::full()).unwrap(),
            2
        );
    }
}
