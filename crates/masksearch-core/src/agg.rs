//! Mask aggregation functions (`MASK_AGG`, paper §2.1 and §3.4).
//!
//! `MASK_AGG` takes a list of masks (typically the masks of one image across
//! several models or mask types) and returns a new mask. The canonical
//! example from the paper is
//! `INTERSECT(m1 > 0.8, ..., mn > 0.8)`: the intersection of the masks after
//! thresholding.

use crate::error::{Error, Result};
use crate::mask::{Mask, MAX_PIXEL_VALUE};

/// A mask-aggregation function, the `MASK_AGG` of the paper's query model.
///
/// Monotone aggregations (e.g. [`MaskAgg::WeightedSum`] with non-negative
/// weights, [`MaskAgg::Mean`], [`MaskAgg::Max`]) allow the query engine to
/// derive bounds on the aggregate from per-mask CHI indexes; non-monotone
/// ones require an index built on the aggregated mask itself (§3.4).
#[derive(Debug, Clone, PartialEq)]
pub enum MaskAgg {
    /// Per-pixel intersection after thresholding each input at `threshold`:
    /// output pixel is high iff *every* input is `>= threshold` at that pixel.
    IntersectThreshold {
        /// Threshold applied to every input mask.
        threshold: f32,
    },
    /// Per-pixel union after thresholding: output pixel is high iff *any*
    /// input is `>= threshold` at that pixel.
    UnionThreshold {
        /// Threshold applied to every input mask.
        threshold: f32,
    },
    /// Per-pixel arithmetic mean of the inputs.
    Mean,
    /// Per-pixel maximum of the inputs.
    Max,
    /// Per-pixel minimum of the inputs.
    Min,
    /// Per-pixel weighted sum with the given weights (clamped into `[0, 1)`).
    WeightedSum {
        /// One weight per input mask, in the same order.
        weights: Vec<f32>,
    },
}

impl MaskAgg {
    /// Applies the aggregation to a list of masks.
    ///
    /// All masks must share the same shape; the list must be non-empty.
    pub fn apply(&self, masks: &[&Mask]) -> Result<Mask> {
        match self {
            MaskAgg::IntersectThreshold { threshold } => intersect_thresholded(masks, *threshold),
            MaskAgg::UnionThreshold { threshold } => union_thresholded(masks, *threshold),
            MaskAgg::Mean => mask_mean(masks),
            MaskAgg::Max => mask_max(masks),
            MaskAgg::Min => mask_min(masks),
            MaskAgg::WeightedSum { weights } => weighted_sum(masks, weights),
        }
    }

    /// Returns `true` if the aggregation is monotone non-decreasing in each
    /// input pixel value, which lets the executor propagate per-mask bounds
    /// through the aggregation (paper §3.4).
    pub fn is_monotone(&self) -> bool {
        match self {
            MaskAgg::IntersectThreshold { .. }
            | MaskAgg::UnionThreshold { .. }
            | MaskAgg::Mean
            | MaskAgg::Max
            | MaskAgg::Min => true,
            MaskAgg::WeightedSum { weights } => weights.iter().all(|w| *w >= 0.0),
        }
    }

    /// A short stable name used in plans and statistics output.
    pub fn name(&self) -> &'static str {
        match self {
            MaskAgg::IntersectThreshold { .. } => "intersect",
            MaskAgg::UnionThreshold { .. } => "union",
            MaskAgg::Mean => "mean",
            MaskAgg::Max => "max",
            MaskAgg::Min => "min",
            MaskAgg::WeightedSum { .. } => "weighted_sum",
        }
    }
}

fn check_shapes(masks: &[&Mask]) -> Result<(u32, u32)> {
    let first = masks.first().ok_or(Error::EmptyAggregation)?;
    let shape = first.shape();
    for m in masks.iter().skip(1) {
        if m.shape() != shape {
            return Err(Error::ShapeMismatch {
                expected: shape,
                found: m.shape(),
            });
        }
    }
    Ok(shape)
}

/// `INTERSECT(m1 > t, ..., mn > t)`: per-pixel logical AND after thresholding.
///
/// The output pixel is [`MAX_PIXEL_VALUE`] where every input is `>= t` and
/// `0.0` elsewhere.
pub fn intersect_thresholded(masks: &[&Mask], threshold: f32) -> Result<Mask> {
    let (w, h) = check_shapes(masks)?;
    let n = (w as usize) * (h as usize);
    let mut out = vec![MAX_PIXEL_VALUE; n];
    for m in masks {
        for (o, &v) in out.iter_mut().zip(m.data()) {
            if v < threshold {
                *o = 0.0;
            }
        }
    }
    Mask::new(w, h, out)
}

/// `UNION(m1 > t, ..., mn > t)`: per-pixel logical OR after thresholding.
pub fn union_thresholded(masks: &[&Mask], threshold: f32) -> Result<Mask> {
    let (w, h) = check_shapes(masks)?;
    let n = (w as usize) * (h as usize);
    let mut out = vec![0.0f32; n];
    for m in masks {
        for (o, &v) in out.iter_mut().zip(m.data()) {
            if v >= threshold {
                *o = MAX_PIXEL_VALUE;
            }
        }
    }
    Mask::new(w, h, out)
}

/// Per-pixel arithmetic mean of the input masks.
pub fn mask_mean(masks: &[&Mask]) -> Result<Mask> {
    let (w, h) = check_shapes(masks)?;
    let n = (w as usize) * (h as usize);
    let mut acc = vec![0.0f64; n];
    for m in masks {
        for (a, &v) in acc.iter_mut().zip(m.data()) {
            *a += v as f64;
        }
    }
    let count = masks.len() as f64;
    let data = acc.into_iter().map(|a| (a / count) as f32).collect();
    Mask::from_data_clamped(w, h, data)
}

/// Per-pixel maximum of the input masks.
pub fn mask_max(masks: &[&Mask]) -> Result<Mask> {
    let (w, h) = check_shapes(masks)?;
    let mut out = masks[0].data().to_vec();
    for m in masks.iter().skip(1) {
        for (o, &v) in out.iter_mut().zip(m.data()) {
            if v > *o {
                *o = v;
            }
        }
    }
    Mask::new(w, h, out)
}

/// Per-pixel minimum of the input masks.
pub fn mask_min(masks: &[&Mask]) -> Result<Mask> {
    let (w, h) = check_shapes(masks)?;
    let mut out = masks[0].data().to_vec();
    for m in masks.iter().skip(1) {
        for (o, &v) in out.iter_mut().zip(m.data()) {
            if v < *o {
                *o = v;
            }
        }
    }
    Mask::new(w, h, out)
}

/// Per-pixel weighted sum `Σ w_i · m_i`, clamped into `[0, 1)`.
pub fn weighted_sum(masks: &[&Mask], weights: &[f32]) -> Result<Mask> {
    let (w, h) = check_shapes(masks)?;
    if weights.len() != masks.len() {
        return Err(Error::WeightLengthMismatch {
            masks: masks.len(),
            weights: weights.len(),
        });
    }
    let n = (w as usize) * (h as usize);
    let mut acc = vec![0.0f64; n];
    for (m, &weight) in masks.iter().zip(weights) {
        for (a, &v) in acc.iter_mut().zip(m.data()) {
            *a += (v as f64) * (weight as f64);
        }
    }
    let data = acc.into_iter().map(|a| a as f32).collect();
    Mask::from_data_clamped(w, h, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::PixelRange;
    use crate::roi::Roi;

    fn masks() -> (Mask, Mask) {
        let a = Mask::from_fn(4, 4, |x, _| if x < 2 { 0.9 } else { 0.1 });
        let b = Mask::from_fn(4, 4, |_, y| if y < 2 { 0.9 } else { 0.1 });
        (a, b)
    }

    #[test]
    fn intersect_counts_only_joint_high_pixels() {
        let (a, b) = masks();
        let i = intersect_thresholded(&[&a, &b], 0.8).unwrap();
        // Only the 2x2 upper-left block is high in both.
        let high = i.count_pixels(&i.full_roi(), &PixelRange::new(0.8, 1.0).unwrap());
        assert_eq!(high, 4);
        // The upper-left pixel is high, the lower-right is not.
        assert!(i.get(0, 0) > 0.8);
        assert_eq!(i.get(3, 3), 0.0);
    }

    #[test]
    fn union_counts_any_high_pixels() {
        let (a, b) = masks();
        let u = union_thresholded(&[&a, &b], 0.8).unwrap();
        let high = u.count_pixels(&u.full_roi(), &PixelRange::new(0.8, 1.0).unwrap());
        // Left half (8) + top half (8) - overlap (4) = 12.
        assert_eq!(high, 12);
    }

    #[test]
    fn mean_max_min() {
        let (a, b) = masks();
        let mean = mask_mean(&[&a, &b]).unwrap();
        assert!((mean.get(0, 0) - 0.9).abs() < 1e-6);
        assert!((mean.get(0, 3) - 0.5).abs() < 1e-6);
        assert!((mean.get(3, 3) - 0.1).abs() < 1e-6);

        let max = mask_max(&[&a, &b]).unwrap();
        assert!((max.get(0, 3) - 0.9).abs() < 1e-6);
        let min = mask_min(&[&a, &b]).unwrap();
        assert!((min.get(0, 3) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn weighted_sum_applies_weights_and_clamps() {
        let (a, b) = masks();
        let s = weighted_sum(&[&a, &b], &[0.5, 0.5]).unwrap();
        assert!((s.get(0, 0) - 0.9).abs() < 1e-6);
        // Over-unity weights clamp below 1.0.
        let s2 = weighted_sum(&[&a, &b], &[2.0, 2.0]).unwrap();
        assert!(s2.get(0, 0) < 1.0);
        assert!(weighted_sum(&[&a, &b], &[1.0]).is_err());
    }

    #[test]
    fn shape_mismatch_and_empty_are_rejected() {
        let a = Mask::zeros(4, 4);
        let c = Mask::zeros(2, 2);
        assert!(matches!(
            mask_mean(&[&a, &c]),
            Err(Error::ShapeMismatch { .. })
        ));
        assert!(matches!(mask_mean(&[]), Err(Error::EmptyAggregation)));
    }

    #[test]
    fn mask_agg_enum_dispatch_matches_free_functions() {
        let (a, b) = masks();
        let inputs = vec![&a, &b];
        assert_eq!(
            MaskAgg::IntersectThreshold { threshold: 0.8 }
                .apply(&inputs)
                .unwrap(),
            intersect_thresholded(&inputs, 0.8).unwrap()
        );
        assert_eq!(
            MaskAgg::Mean.apply(&inputs).unwrap(),
            mask_mean(&inputs).unwrap()
        );
        assert_eq!(
            MaskAgg::WeightedSum {
                weights: vec![0.3, 0.7]
            }
            .apply(&inputs)
            .unwrap(),
            weighted_sum(&inputs, &[0.3, 0.7]).unwrap()
        );
    }

    #[test]
    fn monotonicity_classification() {
        assert!(MaskAgg::Mean.is_monotone());
        assert!(MaskAgg::IntersectThreshold { threshold: 0.5 }.is_monotone());
        assert!(MaskAgg::WeightedSum {
            weights: vec![0.1, 0.2]
        }
        .is_monotone());
        assert!(!MaskAgg::WeightedSum {
            weights: vec![0.1, -0.2]
        }
        .is_monotone());
    }

    #[test]
    fn example_2_intersection_query_shape() {
        // Paper Example 2: CP(INTERSECT(mask > 0.7), roi, (0.7, 1.0)).
        let (a, b) = masks();
        let agg = MaskAgg::IntersectThreshold { threshold: 0.7 };
        let aggregated = agg.apply(&[&a, &b]).unwrap();
        let s = aggregated.count_pixels(
            &Roi::new(0, 0, 4, 4).unwrap(),
            &PixelRange::new(0.7, 1.0).unwrap(),
        );
        assert_eq!(s, 4);
    }
}
