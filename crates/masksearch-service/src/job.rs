//! Jobs flowing through the service: a request, its deadline, and the
//! channel its result travels back on.

use crate::batch::BatchOutput;
use crate::error::{ServiceError, ServiceResult};
use masksearch_query::{Mutation, MutationOutcome, Query, QueryOutput};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// What a job asks the engine to do.
#[derive(Debug, Clone)]
pub enum Request {
    /// Execute one query.
    Single(Query),
    /// Explain a query: render its plan shape, and with `analyze` execute it
    /// and annotate the plan with the measured statistics.
    Explain {
        /// The query to explain.
        query: Query,
        /// Whether to execute (`EXPLAIN ANALYZE`) or just plan (`EXPLAIN`).
        analyze: bool,
    },
    /// Execute a ranked query in partial (cluster-shard) mode: `k` replaces
    /// the query's own limit and the response carries the k-th value bound.
    Partial {
        /// The ranked query.
        query: Query,
        /// Per-shard `k` override.
        k: usize,
    },
    /// Execute a group of queries with shared index/mask work
    /// (see [`crate::batch`]).
    Batch(Vec<Query>),
    /// Apply a write (INSERT/DELETE batch) to the shared session.
    Mutation(Mutation),
    /// Apply a `BEGIN … COMMIT` script atomically: every statement lands in
    /// one storage commit or none do. Answered with [`Response::Mutation`]
    /// carrying the summed outcome.
    Transaction(Vec<Mutation>),
}

/// What a job produces.
#[derive(Debug)]
pub enum Response {
    /// Output of a [`Request::Single`].
    Single(QueryResponse),
    /// Output of a [`Request::Explain`]: the rendered plan tree, one line
    /// per node (indented two spaces per level).
    Plan(Vec<String>),
    /// Output of a [`Request::Partial`].
    Partial(PartialResponse),
    /// Output of a [`Request::Batch`].
    Batch(BatchOutput),
    /// Output of a [`Request::Mutation`].
    Mutation(MutationResponse),
}

/// The result of one partial (bounded top-k) execution: the local top-k plus
/// the bound on everything the shard did not return.
#[derive(Debug)]
pub struct PartialResponse {
    /// The local rows and serving-layer timings.
    pub response: QueryResponse,
    /// The shard's k-th value when unreturned candidates remain
    /// (see [`masksearch_query::merge::RankedPartial`]).
    pub bound: Option<f64>,
}

/// The result of one served query: the engine output plus serving-layer
/// timings.
#[derive(Debug)]
pub struct QueryResponse {
    /// The query's rows and execution statistics.
    pub output: QueryOutput,
    /// Time spent queued before a worker started executing.
    pub queue_wait: Duration,
    /// Time spent executing.
    pub exec_time: Duration,
}

/// The result of one served write: what it did plus serving-layer timings.
#[derive(Debug)]
pub struct MutationResponse {
    /// What the write did.
    pub outcome: MutationOutcome,
    /// Time spent queued before a worker started applying it.
    pub queue_wait: Duration,
    /// Time spent applying.
    pub exec_time: Duration,
}

/// A unit of queued work.
pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) submitted: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) reply: mpsc::Sender<ServiceResult<Response>>,
    /// The statement text as the client sent it, when the job came through a
    /// SQL entry point — this is what profiles and the slow-query log show.
    /// Programmatic submissions carry `None` and are labelled by shape.
    pub(crate) statement: Option<std::sync::Arc<str>>,
}

impl Job {
    /// Remaining time until the deadline; `None` when the job has none.
    pub(crate) fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now > d)
    }
}

/// A handle on a submitted query; redeem it with [`Ticket::wait`].
pub struct Ticket {
    pub(crate) submitted: Instant,
    pub(crate) receiver: mpsc::Receiver<ServiceResult<Response>>,
}

impl Ticket {
    /// Blocks until the job finishes, returning its response.
    pub fn wait(self) -> ServiceResult<Response> {
        match self.receiver.recv() {
            Ok(result) => result,
            // The engine dropped the sender without replying: it shut down.
            Err(_) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Blocks up to `timeout` for the job to finish.
    pub fn wait_timeout(self, timeout: Duration) -> ServiceResult<Response> {
        match self.receiver.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServiceError::DeadlineExceeded {
                waited: self.submitted.elapsed(),
            }),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Convenience for single-query tickets: unwraps [`Response::Single`].
    pub fn wait_single(self) -> ServiceResult<QueryResponse> {
        match self.wait()? {
            Response::Single(r) => Ok(r),
            _ => Err(ServiceError::Protocol(
                "non-query response on a single-query ticket".to_string(),
            )),
        }
    }

    /// Convenience for batch tickets: unwraps [`Response::Batch`].
    pub fn wait_batch(self) -> ServiceResult<BatchOutput> {
        match self.wait()? {
            Response::Batch(b) => Ok(b),
            _ => Err(ServiceError::Protocol(
                "non-batch response on a batch ticket".to_string(),
            )),
        }
    }

    /// Convenience for mutation tickets: unwraps [`Response::Mutation`].
    pub fn wait_mutation(self) -> ServiceResult<MutationResponse> {
        match self.wait()? {
            Response::Mutation(m) => Ok(m),
            _ => Err(ServiceError::Protocol(
                "non-mutation response on a mutation ticket".to_string(),
            )),
        }
    }

    /// Convenience for partial tickets: unwraps [`Response::Partial`].
    pub fn wait_partial(self) -> ServiceResult<PartialResponse> {
        match self.wait()? {
            Response::Partial(p) => Ok(p),
            _ => Err(ServiceError::Protocol(
                "non-partial response on a partial ticket".to_string(),
            )),
        }
    }

    /// Convenience for explain tickets: unwraps [`Response::Plan`].
    pub fn wait_plan(self) -> ServiceResult<Vec<String>> {
        match self.wait()? {
            Response::Plan(lines) => Ok(lines),
            _ => Err(ServiceError::Protocol(
                "non-plan response on an explain ticket".to_string(),
            )),
        }
    }
}
