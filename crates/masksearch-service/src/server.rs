//! The TCP front end: a thread-per-connection line-protocol server over
//! `std::net`, speaking the dialect of [`crate::protocol`].

use crate::engine::Engine;
use crate::error::ServiceResult;
use crate::protocol::{self, ClientRequest};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A running MaskSearch TCP server.
///
/// ```
/// use masksearch_core::{Mask, MaskId, MaskRecord};
/// use masksearch_query::{Session, SessionConfig};
/// use masksearch_service::{Client, Engine, Server, ServiceConfig};
/// use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
/// use std::sync::Arc;
///
/// // A one-mask database to serve.
/// let store = MemoryMaskStore::for_tests();
/// let mut catalog = Catalog::new();
/// store.put(MaskId::new(0), &Mask::from_fn(8, 8, |_, _| 0.9)).unwrap();
/// catalog.insert(MaskRecord::builder(MaskId::new(0)).shape(8, 8).build());
/// let session = Session::new(Arc::new(store), catalog, SessionConfig::default()).unwrap();
///
/// let engine = Engine::new(session, ServiceConfig::new(1));
/// let server = Server::bind("127.0.0.1:0", engine).unwrap(); // port 0: ephemeral
/// println!("serving on {}", server.local_addr());
/// let handle = server.spawn(); // or `server.run()` to block this thread
///
/// let mut client = Client::connect(handle.local_addr()).unwrap();
/// assert!(client.ping().is_ok());
/// handle.shutdown();
/// ```
pub struct Server {
    listener: TcpListener,
    engine: Engine,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active_connections: Arc<AtomicU64>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) without accepting
    /// yet.
    pub fn bind(addr: impl ToSocketAddrs, engine: Engine) -> ServiceResult<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            engine,
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            active_connections: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts connections until shut down, blocking the calling thread.
    /// Each connection is served by its own detached thread; connections
    /// still open when the accept loop stops keep being served until their
    /// client disconnects (they are not force-closed).
    pub fn run(self) {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => {
                    // Transient accept failures (e.g. EMFILE under fd
                    // exhaustion) repeat immediately; back off briefly so the
                    // loop doesn't spin a core while starving the threads
                    // that would release descriptors.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            let engine = self.engine.clone();
            let active = Arc::clone(&self.active_connections);
            active.fetch_add(1, Ordering::Relaxed);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &engine, &active);
                active.fetch_sub(1, Ordering::Relaxed);
            });
        }
    }

    /// Starts the accept loop on a background thread, returning a control
    /// handle.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shutdown = Arc::clone(&self.shutdown);
        let active = Arc::clone(&self.active_connections);
        let engine = self.engine.clone();
        let join = std::thread::Builder::new()
            .name("masksearch-acceptor".to_string())
            .spawn(move || self.run())
            .expect("spawn acceptor thread");
        ServerHandle {
            addr,
            shutdown,
            active_connections: active,
            engine,
            join: Some(join),
        }
    }
}

/// Control handle for a server started with [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active_connections: Arc<AtomicU64>,
    engine: Engine,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently open client connections.
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Ordering::Relaxed)
    }

    /// The engine behind the server (e.g. for metrics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Stops accepting new connections and joins the accept loop. Open
    /// connections finish their in-flight request streams.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.join.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serves one connection until `QUIT`, EOF, or an I/O error.
///
/// Request lines are decoded lossily: bytes that are not valid UTF-8 reach
/// the SQL front end as replacement characters and fail there with an `ERR`
/// frame, rather than killing the connection.
fn serve_connection(stream: TcpStream, engine: &Engine, active: &AtomicU64) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            return Ok(()); // client hung up
        }
        let line = String::from_utf8_lossy(&buf);
        let Some(request) = ClientRequest::parse(&line) else {
            continue; // blank line
        };
        match request {
            ClientRequest::Quit => {
                writer.flush()?;
                return Ok(());
            }
            ClientRequest::Ping => protocol::write_pong(&mut writer)?,
            ClientRequest::Stats => {
                let mut metrics = engine.metrics();
                metrics.active_connections = active.load(Ordering::Relaxed);
                protocol::write_stats(&mut writer, &metrics)?
            }
            ClientRequest::Metrics => {
                protocol::write_metrics_response(&mut writer, &engine.prometheus_text())?
            }
            ClientRequest::MetricsWindow(secs) => {
                protocol::write_metrics_response(&mut writer, &engine.metrics_window_text(secs))?
            }
            ClientRequest::Record(control) => {
                let status = match control {
                    protocol::RecordControl::Start(path) => engine.record_start(path.as_deref()),
                    protocol::RecordControl::Stop => engine.record_stop(),
                    protocol::RecordControl::Status => Ok(engine.recorder_status()),
                };
                match status {
                    Ok(status) => protocol::write_record_status(&mut writer, &status)?,
                    Err(e) => protocol::write_error(&mut writer, &e)?,
                }
            }
            ClientRequest::Monitor {
                frames,
                interval_ms,
            } => {
                // Stream one delta frame per tick. The subscriber's baseline
                // is zero, so frame 0 carries the cumulative counters and
                // deltas summed over the subscription equal the final STATS.
                let mut prev = vec![0u64; masksearch_obs::keys::MONITOR_DELTA_KEYS.len()];
                for seq in 0..frames {
                    let values = engine.monitor_values();
                    let deltas: Vec<(&str, u64)> = values
                        .iter()
                        .zip(prev.iter())
                        .map(|(&(key, value), &p)| (key, value.saturating_sub(p)))
                        .collect();
                    protocol::write_delta_frame(&mut writer, seq as u64, &deltas)?;
                    writer.flush()?;
                    for (slot, &(_, value)) in prev.iter_mut().zip(values.iter()) {
                        *slot = value;
                    }
                    if seq + 1 < frames {
                        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                    }
                }
            }
            ClientRequest::Profiles(n) => {
                let lines: Vec<String> = engine
                    .recent_profiles(n)
                    .iter()
                    .flat_map(|p| p.render())
                    .collect();
                protocol::write_profiles_response(&mut writer, &lines)?
            }
            ClientRequest::Lookup(ids) => {
                protocol::write_lookup_response(&mut writer, &engine.lookup(&ids))?
            }
            ClientRequest::Partial { k, sql } => match engine.execute_partial_sql(&sql, k) {
                Ok(partial) => protocol::write_response_with_bound(
                    &mut writer,
                    &partial.response,
                    partial.bound,
                )?,
                Err(e) => protocol::write_error(&mut writer, &e)?,
            },
            ClientRequest::Tokened { token, sql } => {
                write_sql_result(&mut writer, engine.execute_statement_tokened(token, &sql))?
            }
            ClientRequest::Sql(sql) => {
                write_sql_result(&mut writer, engine.execute_statement(&sql))?
            }
        }
        writer.flush()?;
    }
}

/// Writes the outcome of a SQL statement (plain or tokened) as one frame.
fn write_sql_result<W: std::io::Write>(
    writer: &mut W,
    result: crate::error::ServiceResult<crate::job::Response>,
) -> std::io::Result<()> {
    match result {
        Ok(crate::job::Response::Single(response)) => protocol::write_response(writer, &response),
        Ok(crate::job::Response::Mutation(response)) => {
            protocol::write_mutation_response(writer, &response)
        }
        Ok(crate::job::Response::Plan(lines)) => protocol::write_plan_response(writer, &lines),
        // The SQL path never produces batch or partial responses.
        Ok(crate::job::Response::Batch(_)) | Ok(crate::job::Response::Partial(_)) => {
            protocol::write_error(
                writer,
                &crate::error::ServiceError::Protocol(
                    "unexpected response kind for a SQL statement".to_string(),
                ),
            )
        }
        Err(e) => protocol::write_error(writer, &e),
    }
}
