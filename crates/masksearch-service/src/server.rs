//! The TCP front end: a thread-per-connection line-protocol server over
//! `std::net`, speaking the dialect of [`crate::protocol`].
//!
//! Each connection serves two request styles at once (protocol v6):
//!
//! * **untagged** lines keep the strict v5 FIFO contract — parsed, executed
//!   and answered inline, one at a time;
//! * **`@<id>`-tagged** lines are handed to a small per-connection handler
//!   pool, so many tagged requests proceed through the engine concurrently
//!   and each answer is written — whole frame, tag included — under the
//!   shared writer lock as soon as it completes, in completion order.

use crate::engine::Engine;
use crate::error::{ServiceError, ServiceResult};
use crate::job::{MutationResponse, Response};
use crate::protocol::{self, ClientRequest};
use masksearch_query::{Mutation, MutationOutcome};
use masksearch_sql::{Statement, TxnControl};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

/// Handler threads per connection serving tagged (multiplexed) requests.
/// Each handler blocks in the engine for its request's duration, so this
/// bounds one connection's in-flight depth; the engine's own worker pool
/// and admission queue bound the process-wide concurrency.
const TAGGED_HANDLERS: usize = 8;

/// A running MaskSearch TCP server.
///
/// ```
/// use masksearch_core::{Mask, MaskId, MaskRecord};
/// use masksearch_query::{Session, SessionConfig};
/// use masksearch_service::{Client, Engine, Server, ServiceConfig};
/// use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
/// use std::sync::Arc;
///
/// // A one-mask database to serve.
/// let store = MemoryMaskStore::for_tests();
/// let mut catalog = Catalog::new();
/// store.put(MaskId::new(0), &Mask::from_fn(8, 8, |_, _| 0.9)).unwrap();
/// catalog.insert(MaskRecord::builder(MaskId::new(0)).shape(8, 8).build());
/// let session = Session::new(Arc::new(store), catalog, SessionConfig::default()).unwrap();
///
/// let engine = Engine::new(session, ServiceConfig::new(1));
/// let server = Server::bind("127.0.0.1:0", engine).unwrap(); // port 0: ephemeral
/// println!("serving on {}", server.local_addr());
/// let handle = server.spawn(); // or `server.run()` to block this thread
///
/// let mut client = Client::connect(handle.local_addr()).unwrap();
/// assert!(client.ping().is_ok());
/// handle.shutdown();
/// ```
pub struct Server {
    listener: TcpListener,
    engine: Engine,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active_connections: Arc<AtomicU64>,
    conns: Arc<ConnRegistry>,
}

/// Registry of open connection sockets, so [`ServerHandle::kill`] can sever
/// them all (modelling a process death) instead of draining gracefully.
#[derive(Default)]
struct ConnRegistry {
    next_id: AtomicU64,
    streams: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.streams
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(id, clone);
        }
        id
    }

    fn unregister(&self, id: u64) {
        self.streams
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }

    fn sever_all(&self) {
        let streams = self.streams.lock().unwrap_or_else(PoisonError::into_inner);
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) without accepting
    /// yet.
    pub fn bind(addr: impl ToSocketAddrs, engine: Engine) -> ServiceResult<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            engine,
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            active_connections: Arc::new(AtomicU64::new(0)),
            conns: Arc::new(ConnRegistry::default()),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts connections until shut down, blocking the calling thread.
    /// Each connection is served by its own detached thread; connections
    /// still open when the accept loop stops keep being served until their
    /// client disconnects (they are not force-closed).
    pub fn run(self) {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => {
                    // Transient accept failures (e.g. EMFILE under fd
                    // exhaustion) repeat immediately; back off briefly so the
                    // loop doesn't spin a core while starving the threads
                    // that would release descriptors.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            let engine = self.engine.clone();
            let active = Arc::clone(&self.active_connections);
            let conns = Arc::clone(&self.conns);
            let conn_id = conns.register(&stream);
            active.fetch_add(1, Ordering::Relaxed);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &engine, &active);
                conns.unregister(conn_id);
                active.fetch_sub(1, Ordering::Relaxed);
            });
        }
    }

    /// Starts the accept loop on a background thread, returning a control
    /// handle.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shutdown = Arc::clone(&self.shutdown);
        let active = Arc::clone(&self.active_connections);
        let conns = Arc::clone(&self.conns);
        let engine = self.engine.clone();
        let join = std::thread::Builder::new()
            .name("masksearch-acceptor".to_string())
            .spawn(move || self.run())
            .expect("spawn acceptor thread");
        ServerHandle {
            addr,
            shutdown,
            active_connections: active,
            conns,
            engine,
            join: Some(join),
        }
    }
}

/// Control handle for a server started with [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active_connections: Arc<AtomicU64>,
    conns: Arc<ConnRegistry>,
    engine: Engine,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently open client connections.
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Ordering::Relaxed)
    }

    /// The engine behind the server (e.g. for metrics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Stops accepting new connections and joins the accept loop. Open
    /// connections finish their in-flight request streams.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Kills the server like a process death: stops accepting and severs
    /// every open connection mid-stream, so clients observe an abrupt
    /// disconnect rather than a graceful drain. The database files stay
    /// intact — a replica or a recovery reopen takes over from here.
    pub fn kill(mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.conns.sever_all();
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.join.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The write half of one connection, shared between the inline (untagged)
/// request loop and the tagged handler pool. Every response frame is
/// rendered to a buffer first and written with one lock acquisition, so
/// concurrent completions can never interleave mid-frame.
type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

/// Renders one frame (with its optional `@<id>` tag prefix) off-lock, then
/// writes and flushes it atomically.
fn respond(
    writer: &SharedWriter,
    tag: Option<u64>,
    render: impl FnOnce(&mut Vec<u8>) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(128);
    if let Some(id) = tag {
        write!(buf, "@{id} ")?;
    }
    render(&mut buf)?;
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    w.write_all(&buf)?;
    w.flush()
}

/// The per-connection pool executing tagged requests concurrently. Spawned
/// lazily on the first tagged request, so purely-v5 connections cost
/// nothing extra.
struct TaggedPool {
    tx: mpsc::Sender<(u64, ClientRequest)>,
}

impl TaggedPool {
    fn spawn(engine: Engine, writer: SharedWriter, active: Arc<AtomicU64>) -> Self {
        let (tx, rx) = mpsc::channel::<(u64, ClientRequest)>();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..TAGGED_HANDLERS {
            let engine = engine.clone();
            let writer = Arc::clone(&writer);
            let active = Arc::clone(&active);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || loop {
                let job = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                match job {
                    Ok((id, request)) => {
                        if handle_request(&engine, &active, &writer, Some(id), request).is_err() {
                            // The connection died mid-write; drain no more.
                            return;
                        }
                    }
                    Err(_) => return, // connection loop gone, pool drains
                }
            });
        }
        Self { tx }
    }
}

/// Serves one connection until `QUIT`, EOF, or an I/O error.
///
/// Request lines are decoded lossily: bytes that are not valid UTF-8 reach
/// the SQL front end as replacement characters and fail there with an `ERR`
/// frame, rather than killing the connection.
///
/// The connection owns its interactive transaction state (protocol v7): a
/// bare `BEGIN` opens a buffer, DML statements buffer into it (each
/// acknowledged with a zero-outcome `OK`), and `COMMIT` submits the buffer
/// as one atomic transaction whose `OK` frame reports the summed outcome.
/// `ROLLBACK` — or the connection dropping for any reason, including `QUIT`
/// and a severed socket — discards the buffer without touching the store;
/// nothing is applied before `COMMIT` reaches the engine. Tagged
/// (multiplexed) requests bypass the buffer and execute immediately.
fn serve_connection(
    stream: TcpStream,
    engine: &Engine,
    active: &Arc<AtomicU64>,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer: SharedWriter = Arc::new(Mutex::new(BufWriter::new(stream)));
    let mut pool: Option<TaggedPool> = None;
    // The open transaction's buffered mutations. Local to this loop, so any
    // exit path — QUIT, EOF, I/O error — drops it: rollback by default.
    let mut txn: Option<Vec<Mutation>> = None;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            return Ok(()); // client hung up
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim_end_matches(['\r', '\n']);
        if let Some((id, rest)) = protocol::parse_tag(line) {
            let Some(request) = ClientRequest::parse(rest) else {
                continue; // blank tagged line
            };
            match request {
                // Multi-frame and connection-scoped requests cannot be
                // answered out of order under one tag; reject them rather
                // than silently degrading their contracts.
                ClientRequest::Monitor { .. } | ClientRequest::Quit => {
                    respond(&writer, Some(id), |buf| {
                        protocol::write_error(
                            buf,
                            &ServiceError::Protocol(
                                "request cannot be multiplexed; send it untagged".to_string(),
                            ),
                        )
                    })?;
                }
                request => {
                    let pool = pool.get_or_insert_with(|| {
                        TaggedPool::spawn(engine.clone(), Arc::clone(&writer), Arc::clone(active))
                    });
                    if pool.tx.send((id, request)).is_err() {
                        return Ok(()); // every handler died: connection is gone
                    }
                }
            }
            continue;
        }
        let Some(request) = ClientRequest::parse(line) else {
            continue; // blank line
        };
        if matches!(request, ClientRequest::Quit) {
            writer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .flush()?;
            return Ok(()); // an open transaction (if any) is discarded
        }
        match &request {
            ClientRequest::Sql(sql) if txn.is_some() || leading_txn_keyword(sql) => {
                handle_txn_line(engine, &writer, &mut txn, sql)?;
                continue;
            }
            ClientRequest::Tokened { .. } | ClientRequest::Partial { .. } if txn.is_some() => {
                respond(&writer, None, |buf| {
                    protocol::write_error(
                        buf,
                        &ServiceError::Protocol(
                            "not allowed inside an open transaction; COMMIT or ROLLBACK first"
                                .to_string(),
                        ),
                    )
                })?;
                continue;
            }
            _ => {}
        }
        handle_request(engine, active, &writer, None, request)?;
    }
}

/// Whether a SQL line's first keyword is `BEGIN` / `COMMIT` / `ROLLBACK` —
/// the cheap pre-filter deciding if the connection's transaction handler
/// must compile the line. Everything else skips straight to the engine.
fn leading_txn_keyword(sql: &str) -> bool {
    let first = sql
        .trim_start()
        .split([' ', '\t', ';'])
        .next()
        .unwrap_or("");
    ["BEGIN", "COMMIT", "ROLLBACK"]
        .iter()
        .any(|kw| first.eq_ignore_ascii_case(kw))
}

/// Acknowledges a buffered (not yet applied) statement or an empty control
/// action with a zero-outcome mutation frame.
fn ok_zero(writer: &SharedWriter) -> std::io::Result<()> {
    let response = MutationResponse {
        outcome: MutationOutcome::default(),
        queue_wait: Duration::ZERO,
        exec_time: Duration::ZERO,
    };
    respond(writer, None, |buf| {
        protocol::write_mutation_response(buf, &response)
    })
}

/// Handles one untagged SQL line that interacts with the connection's
/// transaction state: bare `BEGIN` / `COMMIT` / `ROLLBACK`, and — while a
/// transaction is open — every statement on the connection.
fn handle_txn_line(
    engine: &Engine,
    writer: &SharedWriter,
    txn: &mut Option<Vec<Mutation>>,
    sql: &str,
) -> std::io::Result<()> {
    let fail = |writer: &SharedWriter, msg: &str| {
        respond(writer, None, |buf| {
            protocol::write_error(buf, &ServiceError::Sql(msg.to_string()))
        })
    };
    let statements = match masksearch_sql::compile_script(sql) {
        Ok(statements) => statements,
        // A parse error answers with ERR and leaves any open transaction
        // open: the client decides whether to retry the line or roll back.
        Err(e) => {
            return respond(writer, None, |buf| protocol::write_error(buf, &e.into()));
        }
    };
    if statements.len() != 1 {
        if txn.is_some() {
            return fail(
                writer,
                "finish the open transaction before sending a multi-statement script",
            );
        }
        // No open transaction: the engine's script path owns `BEGIN; ...`.
        let result = engine.execute_statement(sql);
        return respond(writer, None, |buf| write_sql_result(buf, result));
    }
    let statement = statements.into_iter().next().expect("one statement");
    match (statement, txn.as_mut()) {
        (Statement::Control(TxnControl::Begin), None) => {
            *txn = Some(Vec::new());
            ok_zero(writer)
        }
        (Statement::Control(TxnControl::Begin), Some(_)) => fail(
            writer,
            "transaction already open (transactions do not nest)",
        ),
        (Statement::Control(TxnControl::Commit | TxnControl::Rollback), None) => {
            fail(writer, "no open transaction")
        }
        (Statement::Control(TxnControl::Commit), Some(_)) => {
            let mutations = txn.take().expect("open transaction");
            let result = engine
                .execute_transaction(mutations)
                .map(Response::Mutation);
            respond(writer, None, |buf| write_sql_result(buf, result))
        }
        (Statement::Control(TxnControl::Rollback), Some(_)) => {
            *txn = None;
            ok_zero(writer)
        }
        (Statement::Mutation(mutation), Some(buffer)) => {
            buffer.push(mutation);
            ok_zero(writer)
        }
        (Statement::Query(_), Some(_)) => fail(
            writer,
            "queries are not allowed inside an open transaction; \
             its writes are not visible until COMMIT",
        ),
        // No transaction open and not a control statement: ordinary path.
        (Statement::Mutation(_) | Statement::Query(_), None) => {
            let result = engine.execute_statement(sql);
            respond(writer, None, |buf| write_sql_result(buf, result))
        }
    }
}

/// Executes one request and writes its response frame(s). `tag` carries the
/// request's multiplexing id, echoed on every frame header it produces.
fn handle_request(
    engine: &Engine,
    active: &AtomicU64,
    writer: &SharedWriter,
    tag: Option<u64>,
    request: ClientRequest,
) -> std::io::Result<()> {
    match request {
        // QUIT is handled by the connection loop; a tagged QUIT is rejected
        // before dispatch.
        ClientRequest::Quit => Ok(()),
        ClientRequest::Ping => respond(writer, tag, protocol::write_pong),
        ClientRequest::Stats => {
            let mut metrics = engine.metrics();
            metrics.active_connections = active.load(Ordering::Relaxed);
            respond(writer, tag, |buf| protocol::write_stats(buf, &metrics))
        }
        ClientRequest::Metrics => {
            let text = engine.prometheus_text();
            respond(writer, tag, |buf| {
                protocol::write_metrics_response(buf, &text)
            })
        }
        ClientRequest::MetricsWindow(secs) => {
            let text = engine.metrics_window_text(secs);
            respond(writer, tag, |buf| {
                protocol::write_metrics_response(buf, &text)
            })
        }
        ClientRequest::Record(control) => {
            let status = match control {
                protocol::RecordControl::Start(path) => engine.record_start(path.as_deref()),
                protocol::RecordControl::Stop => engine.record_stop(),
                protocol::RecordControl::Status => Ok(engine.recorder_status()),
            };
            respond(writer, tag, |buf| match status {
                Ok(status) => protocol::write_record_status(buf, &status),
                Err(e) => protocol::write_error(buf, &e),
            })
        }
        ClientRequest::Monitor {
            frames,
            interval_ms,
        } => {
            // Stream one delta frame per tick. The subscriber's baseline
            // is zero, so frame 0 carries the cumulative counters and
            // deltas summed over the subscription equal the final STATS.
            let mut prev = vec![0u64; masksearch_obs::keys::MONITOR_DELTA_KEYS.len()];
            for seq in 0..frames {
                let values = engine.monitor_values();
                let deltas: Vec<(&str, u64)> = values
                    .iter()
                    .zip(prev.iter())
                    .map(|(&(key, value), &p)| (key, value.saturating_sub(p)))
                    .collect();
                respond(writer, tag, |buf| {
                    protocol::write_delta_frame(buf, seq as u64, &deltas)
                })?;
                for (slot, &(_, value)) in prev.iter_mut().zip(values.iter()) {
                    *slot = value;
                }
                if seq + 1 < frames {
                    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                }
            }
            Ok(())
        }
        ClientRequest::Profiles(n) => {
            let lines: Vec<String> = engine
                .recent_profiles(n)
                .iter()
                .flat_map(|p| p.render())
                .collect();
            respond(writer, tag, |buf| {
                protocol::write_profiles_response(buf, &lines)
            })
        }
        ClientRequest::Lookup(ids) => {
            let present = engine.lookup(&ids);
            respond(writer, tag, |buf| {
                protocol::write_lookup_response(buf, &present)
            })
        }
        ClientRequest::LookupAll => {
            let present = engine.lookup_all();
            respond(writer, tag, |buf| {
                protocol::write_lookup_response(buf, &present)
            })
        }
        ClientRequest::Partial { k, sql } => {
            let result = engine.execute_partial_sql(&sql, k);
            respond(writer, tag, |buf| match result {
                Ok(partial) => {
                    protocol::write_response_with_bound(buf, &partial.response, partial.bound)
                }
                Err(e) => protocol::write_error(buf, &e),
            })
        }
        ClientRequest::Tokened { token, sql } => {
            let result = engine.execute_statement_tokened(token, &sql);
            respond(writer, tag, |buf| write_sql_result(buf, result))
        }
        ClientRequest::Sql(sql) => {
            let result = engine.execute_statement(&sql);
            respond(writer, tag, |buf| write_sql_result(buf, result))
        }
    }
}

/// Writes the outcome of a SQL statement (plain or tokened) as one frame.
fn write_sql_result<W: std::io::Write>(
    writer: &mut W,
    result: crate::error::ServiceResult<crate::job::Response>,
) -> std::io::Result<()> {
    match result {
        Ok(crate::job::Response::Single(response)) => protocol::write_response(writer, &response),
        Ok(crate::job::Response::Mutation(response)) => {
            protocol::write_mutation_response(writer, &response)
        }
        Ok(crate::job::Response::Plan(lines)) => protocol::write_plan_response(writer, &lines),
        // The SQL path never produces batch or partial responses.
        Ok(crate::job::Response::Batch(_)) | Ok(crate::job::Response::Partial(_)) => {
            protocol::write_error(
                writer,
                &crate::error::ServiceError::Protocol(
                    "unexpected response kind for a SQL statement".to_string(),
                ),
            )
        }
        Err(e) => protocol::write_error(writer, &e),
    }
}
