//! A small blocking client for the TCP front end, used by tests, benches,
//! the cluster coordinator, and as a reference implementation of the wire
//! protocol.
//!
//! Connecting performs a version handshake: the client sends `PING` and
//! requires a `PONG v<N>` reply with this build's
//! [`PROTOCOL_VERSION`]. A peer speaking
//! a different protocol version is rejected with a clear error instead of
//! undefined frame parsing.
//!
//! With [`Client::with_reconnect`], a request that fails with a *transport*
//! error (connection reset, broken pipe — not a server-reported `ERR`
//! frame) is transparently retried once on a fresh connection, after a
//! short bounded backoff. This lets a long-lived caller — in particular a
//! cluster coordinator's connection pool — survive a peer restart without
//! spuriously failing the in-flight request.
//!
//! Resends are **reads-or-deduplicated-only**. A mutation that committed
//! just before the connection died would double-apply if replayed naively
//! (and a replayed `DELETE` would even report `UnknownMask` for a delete
//! that succeeded), so [`Client::query`] wraps every `INSERT`/`DELETE` in a
//! `TOKEN <id> <sql>` envelope: the server's dedup registry answers a
//! replayed token from the recorded outcome without re-applying, making the
//! resend exactly-once. A raw, un-tokened mutation line (sent through some
//! other path) is never resent — the transport error is surfaced instead.

use crate::error::{ServiceError, ServiceResult};
use crate::protocol::{self, Frame, WireResponse, PROTOCOL_VERSION};
use masksearch_core::MaskId;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Allocates a process-unique mutation token: a per-process random-ish
/// prefix (clock entropy at first use) plus a counter, so two clients
/// talking to the same shard cannot collide within the server's bounded
/// dedup window.
pub(crate) fn next_mutation_token() -> u64 {
    static PREFIX: AtomicU64 = AtomicU64::new(0);
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let mut prefix = PREFIX.load(Ordering::Relaxed);
    if prefix == 0 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9);
        let seeded = (nanos ^ (u64::from(std::process::id()) << 32)).max(1);
        // First writer wins; every thread then sees one stable prefix.
        let _ = PREFIX.compare_exchange(0, seeded, Ordering::Relaxed, Ordering::Relaxed);
        prefix = PREFIX.load(Ordering::Relaxed);
    }
    prefix
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(COUNTER.fetch_add(1, Ordering::Relaxed))
}

/// Backoff schedule for the bounded reconnect: one resend attempt, with up
/// to three connection attempts spaced by these sleeps.
pub(crate) const RECONNECT_BACKOFF: [Duration; 3] = [
    Duration::from_millis(50),
    Duration::from_millis(150),
    Duration::from_millis(400),
];

/// The first keyword of a request line (up to whitespace or `;`).
pub(crate) fn first_keyword(line: &str) -> &str {
    line.trim_start()
        .split([' ', '\t', ';'])
        .next()
        .unwrap_or("")
}

/// Returns `true` if the line holds a multi-statement script — more than
/// one `;`-separated statement, ignoring a bare trailing terminator.
pub(crate) fn is_script(line: &str) -> bool {
    line.trim_end().trim_end_matches(';').contains(';')
}

/// Returns `true` if the line is a bare mutation statement — or a
/// `BEGIN; …` transaction script, which the server applies (and its token
/// registry dedups) as one atomic unit.
pub(crate) fn is_mutation_sql(line: &str) -> bool {
    let first = first_keyword(line);
    ["INSERT", "DELETE", "UPDATE"]
        .iter()
        .any(|kw| first.eq_ignore_ascii_case(kw))
        || (first.eq_ignore_ascii_case("BEGIN") && is_script(line))
}

/// Returns `true` if the request can be safely replayed on a fresh
/// connection after a transport error. Reads are side-effect free, and
/// `TOKEN`-wrapped mutations are deduplicated server-side (a replay of
/// an already-applied token returns the recorded outcome). A bare
/// `INSERT`/`DELETE` is *not* safe: the original may have committed
/// before the connection died, and replaying it would double-apply the
/// write (or turn a committed `DELETE` into an `UnknownMask` error).
pub(crate) fn resend_is_safe(line: &str) -> bool {
    !is_mutation_sql(line)
}

/// One `DELTA` frame from a [`Client::monitor`] subscription: the frame's
/// sequence number and the counter deltas since the previous frame.
pub type MonitorFrame = (u64, Vec<(String, u64)>);

/// A connected MaskSearch client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The peer we connected to, kept for reconnects.
    peer: SocketAddr,
    /// Whether transport errors trigger the bounded reconnect-and-resend.
    reconnect: bool,
    /// Whether this connection holds an open interactive transaction
    /// (`BEGIN` acknowledged, no `COMMIT`/`ROLLBACK` yet).
    in_txn: bool,
}

impl Client {
    /// Connects to a server and performs the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> ServiceResult<Self> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        let mut client = Self::from_stream(stream, peer)?;
        client.handshake()?;
        Ok(client)
    }

    /// Enables (or disables) transparent reconnect-with-backoff on transient
    /// transport errors: one bounded resend per request.
    pub fn with_reconnect(mut self, reconnect: bool) -> Self {
        self.reconnect = reconnect;
        self
    }

    fn from_stream(stream: TcpStream, peer: SocketAddr) -> ServiceResult<Self> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Self {
            reader,
            writer,
            peer,
            reconnect: false,
            in_txn: false,
        })
    }

    /// Verifies the peer speaks this build's protocol version.
    fn handshake(&mut self) -> ServiceResult<()> {
        self.send_line("PING")?;
        match protocol::read_frame(&mut self.reader)? {
            Frame::Control(line) => match protocol::pong_version(&line) {
                Some(PROTOCOL_VERSION) => Ok(()),
                Some(other) => Err(ServiceError::Protocol(format!(
                    "protocol version mismatch: peer speaks v{other}, this client v{PROTOCOL_VERSION}"
                ))),
                None => Err(ServiceError::Protocol(format!(
                    "unexpected handshake reply {line:?}"
                ))),
            },
            other => Err(ServiceError::Protocol(format!(
                "unexpected frame in handshake: {other:?}"
            ))),
        }
    }

    /// Re-dials the peer (with the bounded backoff schedule) and swaps the
    /// streams in place.
    fn reconnect_with_backoff(&mut self) -> ServiceResult<()> {
        let mut last = None;
        for backoff in RECONNECT_BACKOFF {
            std::thread::sleep(backoff);
            match TcpStream::connect(self.peer) {
                Ok(stream) => {
                    let reconnect = self.reconnect;
                    let mut fresh = Self::from_stream(stream, self.peer)?;
                    match fresh.handshake() {
                        Ok(()) => {
                            fresh.reconnect = reconnect;
                            *self = fresh;
                            return Ok(());
                        }
                        // A version mismatch will not heal; fail fast.
                        Err(e @ ServiceError::Protocol(_)) => return Err(e),
                        Err(e) => last = Some(e),
                    }
                }
                Err(e) => last = Some(e.into()),
            }
        }
        Err(last.unwrap_or_else(|| ServiceError::Io("reconnect failed".to_string())))
    }

    fn send_line(&mut self, line: &str) -> ServiceResult<()> {
        if line.contains('\n') || line.contains('\r') {
            return Err(ServiceError::Protocol(
                "request must be a single line".to_string(),
            ));
        }
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(())
    }

    fn round_trip_once(&mut self, line: &str) -> ServiceResult<Frame> {
        self.send_line(line)?;
        protocol::read_frame(&mut self.reader)
    }

    /// One request/response round trip, with the bounded retry on transport
    /// errors when reconnect is enabled. Server-reported errors (`ERR`
    /// frames) and malformed frames are returned as-is: the peer is alive
    /// and answered, so a retry would only repeat the failure.
    fn round_trip(&mut self, line: &str) -> ServiceResult<Frame> {
        match self.round_trip_once(line) {
            Err(err @ ServiceError::Io(_)) if self.reconnect => {
                self.reconnect_with_backoff()?;
                if resend_is_safe(line) {
                    self.round_trip_once(line)
                } else {
                    // The connection is healed for subsequent requests, but
                    // this one stays ambiguous: report the transport error.
                    Err(err)
                }
            }
            other => other,
        }
    }

    /// Sends one raw request line and returns whatever frame the server
    /// answers with. This is the replay path's entry point: a recorded
    /// statement may legitimately come back as rows, a plan, or an `ERR`
    /// frame ([`ServiceError::Remote`]), and the replayer digests whichever
    /// arrives rather than expecting one kind.
    pub fn round_trip_raw(&mut self, line: &str) -> ServiceResult<Frame> {
        self.round_trip(line)
    }

    fn expect_rows(frame: Frame) -> ServiceResult<WireResponse> {
        match frame {
            Frame::Rows(response) => Ok(response),
            other => Err(ServiceError::Protocol(format!(
                "expected rows, got {other:?}"
            ))),
        }
    }

    /// Executes a SQL statement, returning the parsed rows and summary.
    ///
    /// Mutations (`INSERT`/`UPDATE`/`DELETE`) and `BEGIN; …` transaction
    /// scripts are automatically wrapped in a `TOKEN <id>` envelope so the
    /// bounded reconnect can resend them exactly-once (the server
    /// deduplicates the token).
    ///
    /// The client tracks interactive transactions: a bare `BEGIN` flips
    /// the connection into transaction mode, where every statement travels
    /// raw (the server's buffer rejects `TOKEN` envelopes) and is **never**
    /// resent — after a transport error the server has already rolled the
    /// transaction back, and a replayed statement would land outside it
    /// and apply immediately. `COMMIT`/`ROLLBACK` (or the transport error
    /// itself) leave transaction mode.
    pub fn query(&mut self, sql: &str) -> ServiceResult<WireResponse> {
        if self.in_txn {
            let first = first_keyword(sql);
            let boundary = ["COMMIT", "ROLLBACK"]
                .iter()
                .any(|kw| first.eq_ignore_ascii_case(kw));
            let result = self.round_trip_once(sql);
            // The server discards an open transaction with its connection;
            // `COMMIT` consumes the buffer even when the engine then
            // rejects what it held.
            if boundary || matches!(result, Err(ServiceError::Io(_))) {
                self.in_txn = false;
            }
            return Self::expect_rows(result?);
        }
        if first_keyword(sql).eq_ignore_ascii_case("BEGIN") && !is_script(sql) {
            let response = Self::expect_rows(self.round_trip(sql)?)?;
            self.in_txn = true;
            return Ok(response);
        }
        if is_mutation_sql(sql) {
            let line = format!("TOKEN {} {sql}", next_mutation_token());
            return Self::expect_rows(self.round_trip(&line)?);
        }
        Self::expect_rows(self.round_trip(sql)?)
    }

    /// Executes a ranked SQL statement in partial (cluster-shard) mode: the
    /// statement's `LIMIT` is replaced by `k` and the summary's `bound`
    /// carries the shard's k-th value when candidates remain unreturned.
    pub fn query_partial(&mut self, k: usize, sql: &str) -> ServiceResult<WireResponse> {
        Self::expect_rows(self.round_trip(&format!("PARTIAL K={k} {sql}"))?)
    }

    /// Asks the server which of `ids` it currently holds.
    pub fn lookup(&mut self, ids: &[MaskId]) -> ServiceResult<Vec<MaskId>> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let mut line = String::from("LOOKUP");
        for id in ids {
            line.push(' ');
            line.push_str(&id.raw().to_string());
        }
        Ok(Self::expect_rows(self.round_trip(&line)?)?.mask_ids())
    }

    /// Liveness check (also re-verifies the protocol version).
    pub fn ping(&mut self) -> ServiceResult<()> {
        match self.round_trip("PING")? {
            Frame::Control(line) if protocol::pong_version(&line) == Some(PROTOCOL_VERSION) => {
                Ok(())
            }
            other => Err(ServiceError::Protocol(format!(
                "unexpected ping reply {other:?}"
            ))),
        }
    }

    /// Fetches the server's metrics summary line (raw `key=value` text).
    pub fn stats(&mut self) -> ServiceResult<String> {
        match self.round_trip("STATS")? {
            Frame::Control(line) => Ok(line),
            other => Err(ServiceError::Protocol(format!(
                "unexpected stats reply {other:?}"
            ))),
        }
    }

    /// Renders the server-side plan of a SQL query (`EXPLAIN`), executing
    /// it first when `analyze` is set (`EXPLAIN ANALYZE`) so the plan
    /// carries the measured statistics. Returns the plan lines.
    pub fn explain(&mut self, analyze: bool, sql: &str) -> ServiceResult<Vec<String>> {
        let keyword = if analyze {
            "EXPLAIN ANALYZE"
        } else {
            "EXPLAIN"
        };
        match self.round_trip(&format!("{keyword} {sql}"))? {
            Frame::Plan(lines) => Ok(lines),
            other => Err(ServiceError::Protocol(format!(
                "expected a plan frame, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's full Prometheus text exposition.
    pub fn metrics(&mut self) -> ServiceResult<String> {
        match self.round_trip("METRICS")? {
            Frame::Metrics(lines) => Ok(lines.join("\n") + "\n"),
            other => Err(ServiceError::Protocol(format!(
                "expected a metrics frame, got {other:?}"
            ))),
        }
    }

    /// Fetches the windowed gauges for the last `secs` seconds as a
    /// Prometheus text exposition (`METRICS WINDOW <secs>`).
    pub fn metrics_window(&mut self, secs: u64) -> ServiceResult<String> {
        match self.round_trip(&format!("METRICS WINDOW {secs}"))? {
            Frame::Metrics(lines) => Ok(lines.join("\n") + "\n"),
            other => Err(ServiceError::Protocol(format!(
                "expected a metrics frame, got {other:?}"
            ))),
        }
    }

    fn record_control(&mut self, line: &str) -> ServiceResult<String> {
        match self.round_trip(line)? {
            Frame::Control(line) if line.starts_with("RECORD ") => Ok(line),
            other => Err(ServiceError::Protocol(format!(
                "expected a RECORD status, got {other:?}"
            ))),
        }
    }

    /// Starts the server's flight recorder, optionally naming the recording
    /// file (otherwise the server's configured path is used). Returns the
    /// raw `RECORD active=... path=... records=... bytes=... dropped=...`
    /// status line.
    pub fn record_start(&mut self, path: Option<&str>) -> ServiceResult<String> {
        match path {
            Some(p) => self.record_control(&format!("RECORD START {p}")),
            None => self.record_control("RECORD START"),
        }
    }

    /// Flushes and stops the server's flight recorder.
    pub fn record_stop(&mut self) -> ServiceResult<String> {
        self.record_control("RECORD STOP")
    }

    /// Fetches the server's flight-recorder status line.
    pub fn record_status(&mut self) -> ServiceResult<String> {
        self.record_control("RECORD STATUS")
    }

    /// Subscribes to `frames` periodic metric-delta frames spaced
    /// `interval_ms` apart. Blocks until the subscription completes and
    /// returns, per frame, the counter deltas since the previous frame
    /// (frame 0 is the cumulative counters at subscription time). Each
    /// frame is `(seq, deltas)`.
    pub fn monitor(&mut self, frames: u32, interval_ms: u64) -> ServiceResult<Vec<MonitorFrame>> {
        self.send_line(&format!("MONITOR {frames} {interval_ms}"))?;
        let mut out = Vec::with_capacity(frames as usize);
        for _ in 0..frames {
            match protocol::read_frame(&mut self.reader)? {
                Frame::Delta(lines) => out.push(protocol::parse_delta_lines(&lines)),
                other => {
                    return Err(ServiceError::Protocol(format!(
                        "expected a delta frame, got {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Fetches the server's most recent `n` traced query profiles as
    /// rendered lines (`STATS PROFILES <n>`).
    pub fn profiles(&mut self, n: usize) -> ServiceResult<Vec<String>> {
        match self.round_trip(&format!("STATS PROFILES {n}"))? {
            Frame::Profiles(lines) => Ok(lines),
            other => Err(ServiceError::Protocol(format!(
                "expected a profiles frame, got {other:?}"
            ))),
        }
    }

    /// Politely closes the connection.
    pub fn quit(mut self) -> ServiceResult<()> {
        self.send_line("QUIT")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;

    fn read_request(stream: &TcpStream) -> String {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn handshake_rejects_version_mismatch() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake_v1 = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert_eq!(read_request(&stream), "PING");
            // A v1 peer replies with a bare PONG.
            stream.write_all(b"PONG\nEND\n").unwrap();
        });
        match Client::connect(addr) {
            Err(ServiceError::Protocol(msg)) => {
                assert!(msg.contains("version mismatch"), "{msg}");
                assert!(msg.contains("v1"), "{msg}");
            }
            Err(other) => panic!("expected a version-mismatch error, got {other:?}"),
            Ok(_) => panic!("expected a version-mismatch error, got a connection"),
        }
        fake_v1.join().unwrap();
    }

    #[test]
    fn transient_disconnect_is_survived_by_one_bounded_retry() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Connection 1: complete the handshake, then slam the door (a
            // restarting shard).
            let (mut stream, _) = listener.accept().unwrap();
            assert_eq!(read_request(&stream), "PING");
            stream
                .write_all(format!("PONG v{PROTOCOL_VERSION}\nEND\n").as_bytes())
                .unwrap();
            drop(stream);
            // Connection 2: the client reconnects (handshake again) and
            // resends the same request.
            let (mut stream, _) = listener.accept().unwrap();
            assert_eq!(read_request(&stream), "PING");
            stream
                .write_all(format!("PONG v{PROTOCOL_VERSION}\nEND\n").as_bytes())
                .unwrap();
            let request = read_request(&stream);
            assert_eq!(request, "LOOKUP 7");
            stream.write_all(b"OK 1\nmask 7\nEND\n").unwrap();
        });
        let mut client = Client::connect(addr).unwrap().with_reconnect(true);
        let present = client.lookup(&[MaskId::new(7)]).unwrap();
        assert_eq!(present, vec![MaskId::new(7)]);
        server.join().unwrap();
    }

    #[test]
    fn without_reconnect_a_disconnect_is_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert_eq!(read_request(&stream), "PING");
            stream
                .write_all(format!("PONG v{PROTOCOL_VERSION}\nEND\n").as_bytes())
                .unwrap();
        });
        let mut client = Client::connect(addr).unwrap();
        server.join().unwrap();
        assert!(matches!(
            client.lookup(&[MaskId::new(1)]),
            Err(ServiceError::Io(_))
        ));
    }
}
