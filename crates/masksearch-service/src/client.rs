//! A small blocking client for the TCP front end, used by tests, benches,
//! and as a reference implementation of the wire protocol.

use crate::error::{ServiceError, ServiceResult};
use crate::protocol::{self, Frame, WireResponse};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected MaskSearch client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> ServiceResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Self { reader, writer })
    }

    fn send_line(&mut self, line: &str) -> ServiceResult<()> {
        if line.contains('\n') || line.contains('\r') {
            return Err(ServiceError::Protocol(
                "request must be a single line".to_string(),
            ));
        }
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Executes a SQL statement, returning the parsed rows and summary.
    pub fn query(&mut self, sql: &str) -> ServiceResult<WireResponse> {
        self.send_line(sql)?;
        match protocol::read_frame(&mut self.reader)? {
            Frame::Rows(response) => Ok(response),
            Frame::Control(line) => Err(ServiceError::Protocol(format!(
                "expected rows, got control frame {line:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> ServiceResult<()> {
        self.send_line("PING")?;
        match protocol::read_frame(&mut self.reader)? {
            Frame::Control(line) if line == "PONG" => Ok(()),
            other => Err(ServiceError::Protocol(format!(
                "unexpected ping reply {other:?}"
            ))),
        }
    }

    /// Fetches the server's metrics summary line (raw `key=value` text).
    pub fn stats(&mut self) -> ServiceResult<String> {
        self.send_line("STATS")?;
        match protocol::read_frame(&mut self.reader)? {
            Frame::Control(line) => Ok(line),
            other => Err(ServiceError::Protocol(format!(
                "unexpected stats reply {other:?}"
            ))),
        }
    }

    /// Politely closes the connection.
    pub fn quit(mut self) -> ServiceResult<()> {
        self.send_line("QUIT")
    }
}
