//! A small connection pool over [`Client`], used by the cluster coordinator
//! to fan concurrent requests out to one shard without a dial-plus-handshake
//! per request.
//!
//! The pool is check-out/check-in: [`ClientPool::get`] pops an idle
//! connection (or dials a new one), and the returned [`PooledClient`] hands
//! it back on drop. A connection that failed with a transport or framing
//! error is discarded instead of returned — the stream position is unknown,
//! and re-dialling is cheap compared to protocol desync. A server-reported
//! `ERR` frame ([`ServiceError::Remote`](crate::ServiceError::Remote)) is
//! different: the frame was consumed through its `END` marker, the stream
//! sits at a clean boundary, and the connection goes back to the pool.

use crate::client::Client;
use crate::error::ServiceResult;
use std::sync::Mutex;

/// A bounded pool of ready connections to one server address.
pub struct ClientPool {
    addr: String,
    idle: Mutex<Vec<Client>>,
    max_idle: usize,
}

impl ClientPool {
    /// Creates a pool dialling `addr`, keeping at most `max_idle` idle
    /// connections around.
    pub fn new(addr: impl Into<String>, max_idle: usize) -> Self {
        Self {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            max_idle: max_idle.max(1),
        }
    }

    /// The address this pool connects to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Number of idle pooled connections.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Checks out a connection: an idle one if available, otherwise a fresh
    /// dial (with handshake and reconnect-on-transient-error enabled).
    pub fn get(&self) -> ServiceResult<PooledClient<'_>> {
        let pooled = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let client = match pooled {
            Some(client) => client,
            None => Client::connect(self.addr.as_str())?.with_reconnect(true),
        };
        Ok(PooledClient {
            pool: self,
            client: Some(client),
            discard: false,
        })
    }

    fn put(&self, client: Client) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }
}

/// A checked-out pool connection; returns to the pool on drop unless an
/// operation on it failed.
pub struct PooledClient<'a> {
    pool: &'a ClientPool,
    client: Option<Client>,
    discard: bool,
}

impl PooledClient<'_> {
    fn run<T>(&mut self, op: impl FnOnce(&mut Client) -> ServiceResult<T>) -> ServiceResult<T> {
        let client = self.client.as_mut().expect("client present until drop");
        let result = op(client);
        match &result {
            // A remote ERR frame leaves the stream at a clean boundary;
            // anything else that failed may have desynced it.
            Err(crate::error::ServiceError::Remote(_)) | Ok(_) => {}
            Err(_) => self.discard = true,
        }
        result
    }

    /// See [`Client::query`].
    pub fn query(&mut self, sql: &str) -> ServiceResult<crate::protocol::WireResponse> {
        self.run(|c| c.query(sql))
    }

    /// See [`Client::query_partial`].
    pub fn query_partial(
        &mut self,
        k: usize,
        sql: &str,
    ) -> ServiceResult<crate::protocol::WireResponse> {
        self.run(|c| c.query_partial(k, sql))
    }

    /// See [`Client::lookup`].
    pub fn lookup(
        &mut self,
        ids: &[masksearch_core::MaskId],
    ) -> ServiceResult<Vec<masksearch_core::MaskId>> {
        self.run(|c| c.lookup(ids))
    }

    /// See [`Client::stats`].
    pub fn stats(&mut self) -> ServiceResult<String> {
        self.run(|c| c.stats())
    }

    /// See [`Client::explain`].
    pub fn explain(&mut self, analyze: bool, sql: &str) -> ServiceResult<Vec<String>> {
        self.run(|c| c.explain(analyze, sql))
    }

    /// See [`Client::metrics`].
    pub fn metrics(&mut self) -> ServiceResult<String> {
        self.run(|c| c.metrics())
    }

    /// See [`Client::ping`].
    pub fn ping(&mut self) -> ServiceResult<()> {
        self.run(|c| c.ping())
    }

    /// See [`Client::record_start`].
    pub fn record_start(&mut self, path: Option<&str>) -> ServiceResult<String> {
        self.run(|c| c.record_start(path))
    }

    /// See [`Client::record_stop`].
    pub fn record_stop(&mut self) -> ServiceResult<String> {
        self.run(|c| c.record_stop())
    }

    /// See [`Client::record_status`].
    pub fn record_status(&mut self) -> ServiceResult<String> {
        self.run(|c| c.record_status())
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            if !self.discard {
                self.pool.put(client);
            }
        }
    }
}
