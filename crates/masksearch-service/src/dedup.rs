//! Mutation deduplication: the server side of exactly-once resends.
//!
//! A client that loses its connection mid-request cannot know whether the
//! mutation it sent committed before the transport died. Resending blindly
//! can double-apply (double-counted ingest stats, doubled WAL traffic, and —
//! for `DELETE` — a spurious `UnknownMask` error for a delete that already
//! succeeded). The fix: every mutation carries a client-chosen 64-bit token
//! (`TOKEN <id> <sql>`); the server remembers recently applied tokens with
//! their outcomes and answers a replay from the registry without touching
//! the store.
//!
//! Concurrency: a resend can arrive while the original is still executing
//! (the client reconnects within its backoff while a worker is mid-commit).
//! [`MutationDedup::begin`] therefore parks duplicate callers on a condvar
//! until the first execution finishes, then hands them the recorded outcome
//! — never a second application. Failed executions release the token so a
//! later retry may re-attempt (an error means the atomic batch did not
//! commit).
//!
//! The registry is bounded: completed tokens beyond [`DEDUP_CAPACITY`] are
//! evicted oldest-first. A replay arriving after eviction re-executes — the
//! window only needs to cover a client's bounded reconnect backoff, not
//! forever.

use masksearch_query::MutationOutcome;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Completed tokens remembered before oldest-first eviction.
pub const DEDUP_CAPACITY: usize = 4096;

#[derive(Debug, Clone)]
enum TokenState {
    /// The first request with this token is still executing.
    InFlight,
    /// The mutation applied; the recorded outcome answers replays.
    Done(MutationOutcome),
}

#[derive(Debug, Default)]
struct Inner {
    states: HashMap<u64, TokenState>,
    /// Completion order of `Done` tokens, for bounded eviction.
    completed: VecDeque<u64>,
}

/// What [`MutationDedup::begin`] decided about a token.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// First sighting: the caller must execute and then call
    /// [`MutationDedup::finish`] (or [`MutationDedup::abandon`] on error).
    Execute,
    /// The token already applied; the recorded outcome is the answer.
    Replay(MutationOutcome),
}

/// A bounded registry of recently applied mutation tokens.
#[derive(Debug, Default)]
pub struct MutationDedup {
    inner: Mutex<Inner>,
    done: Condvar,
}

impl MutationDedup {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a token: the first caller gets [`Admission::Execute`] and owns
    /// the execution; concurrent or later duplicates wait for it and get
    /// [`Admission::Replay`]. A duplicate whose original *failed* (the token
    /// was abandoned) is re-admitted for execution.
    pub fn begin(&self, token: u64) -> Admission {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match inner.states.get(&token) {
                None => {
                    inner.states.insert(token, TokenState::InFlight);
                    return Admission::Execute;
                }
                Some(TokenState::Done(outcome)) => return Admission::Replay(*outcome),
                Some(TokenState::InFlight) => {
                    inner = self.done.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Records a successful execution's outcome and wakes any waiters.
    pub fn finish(&self, token: u64, outcome: MutationOutcome) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.states.insert(token, TokenState::Done(outcome));
        inner.completed.push_back(token);
        while inner.completed.len() > DEDUP_CAPACITY {
            if let Some(old) = inner.completed.pop_front() {
                inner.states.remove(&old);
            }
        }
        drop(inner);
        self.done.notify_all();
    }

    /// Releases a token whose execution failed, so a retry can re-attempt.
    pub fn abandon(&self, token: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(inner.states.get(&token), Some(TokenState::InFlight)) {
            inner.states.remove(&token);
        }
        drop(inner);
        self.done.notify_all();
    }

    /// An RAII permit for the [`Admission::Execute`] path: unless
    /// [`ExecutionPermit::finish`] is called, dropping the permit abandons
    /// the token. This is the panic-safety net — if the execution unwinds
    /// between `begin` and `finish`, the token must not stay `InFlight`
    /// forever (a resend of it would park on the condvar with no timeout).
    pub fn permit(&self, token: u64) -> ExecutionPermit<'_> {
        ExecutionPermit {
            dedup: self,
            token,
            armed: true,
        }
    }

    /// Number of remembered (completed) tokens.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .completed
            .len()
    }

    /// Returns `true` if no completed tokens are remembered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Releases an in-flight token on drop unless the execution finished (see
/// [`MutationDedup::permit`]).
#[derive(Debug)]
pub struct ExecutionPermit<'a> {
    dedup: &'a MutationDedup,
    token: u64,
    armed: bool,
}

impl ExecutionPermit<'_> {
    /// Records the successful outcome; the permit is disarmed.
    pub fn finish(mut self, outcome: MutationOutcome) {
        self.armed = false;
        self.dedup.finish(self.token, outcome);
    }
}

impl Drop for ExecutionPermit<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.dedup.abandon(self.token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn outcome(inserted: usize) -> MutationOutcome {
        MutationOutcome {
            inserted,
            deleted: 0,
            updated: 0,
        }
    }

    #[test]
    fn first_executes_replay_answers() {
        let d = MutationDedup::new();
        assert_eq!(d.begin(7), Admission::Execute);
        d.finish(7, outcome(3));
        assert_eq!(d.begin(7), Admission::Replay(outcome(3)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn abandoned_tokens_can_retry() {
        let d = MutationDedup::new();
        assert_eq!(d.begin(9), Admission::Execute);
        d.abandon(9);
        assert_eq!(d.begin(9), Admission::Execute);
        d.finish(9, outcome(1));
        assert_eq!(d.begin(9), Admission::Replay(outcome(1)));
    }

    #[test]
    fn concurrent_duplicate_waits_for_the_original() {
        let d = Arc::new(MutationDedup::new());
        assert_eq!(d.begin(42), Admission::Execute);
        let waiter = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || d.begin(42))
        };
        // Give the waiter time to park, then finish the original.
        std::thread::sleep(std::time::Duration::from_millis(30));
        d.finish(42, outcome(5));
        assert_eq!(waiter.join().unwrap(), Admission::Replay(outcome(5)));
    }

    #[test]
    fn dropped_permit_abandons_instead_of_wedging() {
        let d = Arc::new(MutationDedup::new());
        assert_eq!(d.begin(13), Admission::Execute);
        {
            let _permit = d.permit(13);
            // Execution "unwinds" here: the permit drops without finish.
        }
        // A resend is re-admitted instead of parking forever.
        assert_eq!(d.begin(13), Admission::Execute);
        let permit = d.permit(13);
        permit.finish(outcome(2));
        assert_eq!(d.begin(13), Admission::Replay(outcome(2)));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let d = MutationDedup::new();
        for t in 0..(DEDUP_CAPACITY as u64 + 10) {
            assert_eq!(d.begin(t), Admission::Execute);
            d.finish(t, outcome(1));
        }
        assert_eq!(d.len(), DEDUP_CAPACITY);
        // The oldest tokens were evicted and would re-execute.
        assert_eq!(d.begin(0), Admission::Execute);
        d.abandon(0);
        // Recent tokens still replay.
        assert_eq!(
            d.begin(DEDUP_CAPACITY as u64 + 9),
            Admission::Replay(outcome(1))
        );
    }
}
