//! Batched multi-query execution with shared filter and verification work.
//!
//! The MaskSearch demonstration scenario is a group of analysts (or one
//! exploration loop) firing many related queries at a single mask database.
//! Executing the group naively repeats the most expensive step — loading
//! undecided masks from storage — once per query that targets the mask. This
//! module executes a *batch* of queries together:
//!
//! 1. **Shared filter stage.** Every filter query classifies its candidates
//!    from CHI bounds alone (accept / prune / verify), exactly as the
//!    single-query executor does.
//! 2. **Shared verification stage.** The verify sets of all queries in the
//!    batch are unioned. Each undecided mask is loaded **once** (building its
//!    CHI as a side effect in incremental mode) and every query interested in
//!    that mask evaluates its predicate on the loaded pixels.
//!
//! Query shapes other than `Filter` (top-k, aggregation, mask aggregation)
//! fall back to the ordinary executor, still benefiting from the shared
//! session cache and any CHIs built by step 2.
//!
//! Results are **identical** to executing each query separately: the filter
//! stage classifications and exact verifications are the same computations,
//! only scheduled differently (this is asserted by the service concurrency
//! tests).

use masksearch_core::{MaskId, TileStats};
use masksearch_query::error::QueryResult;
use masksearch_query::eval;
use masksearch_query::{
    Predicate, Query, QueryKind, QueryOutput, QueryStats, ResultRow, Session, Truth,
};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Batch-level execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Queries that went through the shared filter–verification path.
    pub shared_path_queries: usize,
    /// Distinct masks loaded by the shared verification stage.
    pub unique_masks_verified: u64,
    /// Mask loads avoided relative to running each query separately (the sum
    /// of per-query verify-set sizes minus the distinct union, counting only
    /// masks that would have missed the cache).
    pub duplicate_loads_avoided: u64,
    /// Masks actually read from storage during the whole batch.
    pub masks_loaded: u64,
    /// Bytes read from storage during the whole batch.
    pub bytes_read: u64,
    /// Wall-clock time for the whole batch.
    pub total_wall: Duration,
}

/// Output of a batch: one [`QueryOutput`] per input query, in input order,
/// plus batch-level statistics.
#[derive(Debug)]
pub struct BatchOutput {
    /// Per-query outputs, ordered as the input queries.
    pub outputs: Vec<QueryOutput>,
    /// Batch-level statistics.
    pub stats: BatchStats,
}

/// Per-query bookkeeping on the shared path.
struct FilterPlan {
    /// Index of the query in the input batch.
    query_index: usize,
    predicate: Predicate,
    candidates: u64,
    /// Ids accepted from bounds alone.
    accepted: Vec<MaskId>,
    pruned: u64,
    /// Size of the verify set.
    verify: u64,
    filter_wall: Duration,
}

/// Executes a group of queries against one session with shared work.
///
/// Errors abort the whole batch (first error wins), matching the behaviour
/// of running the queries serially and stopping at the first failure.
pub fn execute(session: &Session, queries: &[Query]) -> QueryResult<BatchOutput> {
    let batch_start = Instant::now();
    let io_before = session.store().io_stats().snapshot();
    let fallback = session.config().object_box_fallback;
    let verify_opts = session.verify_options();

    let mut outputs: Vec<Option<QueryOutput>> = (0..queries.len()).map(|_| None).collect();
    let mut plans: Vec<FilterPlan> = Vec::new();
    // mask id -> indices into `plans` that must verify it.
    let mut verify_union: BTreeMap<MaskId, Vec<usize>> = BTreeMap::new();
    let mut duplicate_requests = 0u64;

    // ---- Shared filter stage ---------------------------------------------
    for (query_index, query) in queries.iter().enumerate() {
        let QueryKind::Filter { predicate } = &query.kind else {
            continue;
        };
        let filter_start = Instant::now();
        let candidates = session.resolve_selection(&query.selection);
        let mut plan = FilterPlan {
            query_index,
            predicate: predicate.clone(),
            candidates: candidates.len() as u64,
            accepted: Vec::new(),
            pruned: 0,
            verify: 0,
            filter_wall: Duration::ZERO,
        };
        let plan_slot = plans.len();
        for mask_id in candidates {
            let record = session.record(mask_id)?;
            let truth = match session.chi_for(mask_id) {
                Some(chi) => eval::predicate_bounds(&plan.predicate, &record, &chi, fallback)?,
                None => Truth::Unknown,
            };
            match truth {
                Truth::True => plan.accepted.push(mask_id),
                Truth::False => plan.pruned += 1,
                Truth::Unknown => {
                    plan.verify += 1;
                    let interested = verify_union.entry(mask_id).or_default();
                    if !interested.is_empty() {
                        duplicate_requests += 1;
                    }
                    interested.push(plan_slot);
                }
            }
        }
        plan.filter_wall = filter_start.elapsed();
        plans.push(plan);
    }

    // ---- Shared verification stage ---------------------------------------
    // Load each undecided mask once and evaluate every interested predicate.
    let verify_start = Instant::now();
    let entries: Vec<(MaskId, Vec<usize>)> = verify_union.into_iter().collect();
    let verified_hits: Mutex<Vec<(usize, MaskId)>> = Mutex::new(Vec::new());
    // Kernel tile counters per plan: each predicate evaluation is attributed
    // to the query it verified for, even though the mask load is shared.
    let plan_tiles: Mutex<Vec<TileStats>> = Mutex::new(vec![TileStats::default(); plans.len()]);
    let first_error: Mutex<Option<masksearch_query::QueryError>> = Mutex::new(None);
    let threads = session.config().threads.max(1).min(entries.len().max(1));

    std::thread::scope(|scope| {
        let chunk = entries.len().div_ceil(threads).max(1);
        for part in entries.chunks(chunk) {
            let verified_hits = &verified_hits;
            let plan_tiles = &plan_tiles;
            let first_error = &first_error;
            let plans = &plans;
            let verify_opts = &verify_opts;
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut local_tiles = vec![TileStats::default(); plans.len()];
                for (mask_id, interested) in part {
                    let mut step = || -> QueryResult<()> {
                        let record = session.record(*mask_id)?;
                        let (mask, _built) = session.load_and_index(*mask_id)?;
                        for &plan_slot in interested {
                            let plan = &plans[plan_slot];
                            if eval::predicate_exact_tiled(
                                &plan.predicate,
                                &record,
                                &mask,
                                verify_opts,
                                &mut local_tiles[plan_slot],
                            )? {
                                local.push((plan_slot, *mask_id));
                            }
                        }
                        Ok(())
                    };
                    if let Err(e) = step() {
                        let mut slot = first_error.lock().unwrap_or_else(|p| p.into_inner());
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                }
                verified_hits
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .extend(local);
                let mut shared = plan_tiles.lock().unwrap_or_else(|p| p.into_inner());
                for (slot, tiles) in shared.iter_mut().zip(&local_tiles) {
                    slot.merge(tiles);
                }
            });
        }
    });
    if let Some(err) = first_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(err);
    }
    let verify_wall = verify_start.elapsed();

    // ---- Assemble shared-path outputs ------------------------------------
    let mut per_plan_hits: Vec<Vec<MaskId>> = (0..plans.len()).map(|_| Vec::new()).collect();
    for (plan_slot, mask_id) in verified_hits
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
    {
        per_plan_hits[plan_slot].push(mask_id);
    }
    let unique_masks_verified = entries.len() as u64;
    let shared_path_queries = plans.len();
    let plan_tiles = plan_tiles.into_inner().unwrap_or_else(|p| p.into_inner());
    for ((plan, hits), tiles) in plans.into_iter().zip(per_plan_hits).zip(plan_tiles) {
        let mut accepted = plan.accepted;
        let accepted_without_load = accepted.len() as u64;
        accepted.extend(hits);
        accepted.sort_unstable();
        let stats = QueryStats {
            candidates: plan.candidates,
            pruned: plan.pruned,
            accepted_without_load,
            verified: plan.verify,
            tiles_pruned: tiles.tiles_pruned,
            tiles_hist: tiles.tiles_hist,
            tiles_scanned: tiles.tiles_scanned,
            filter_wall: plan.filter_wall,
            verify_wall,
            total_wall: plan.filter_wall + verify_wall,
            // Per-query I/O attribution is meaningless under sharing; the
            // batch-level stats carry the real load counts.
            ..Default::default()
        };
        outputs[plan.query_index] = Some(QueryOutput {
            rows: accepted
                .into_iter()
                .map(|id| ResultRow::mask(id, None))
                .collect(),
            stats,
        });
    }

    // ---- Fallback path for non-filter shapes -----------------------------
    for (query_index, query) in queries.iter().enumerate() {
        if outputs[query_index].is_none() {
            outputs[query_index] = Some(session.execute(query)?);
        }
    }

    let io_delta = session
        .store()
        .io_stats()
        .snapshot()
        .delta_since(&io_before);
    Ok(BatchOutput {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("filled above"))
            .collect(),
        stats: BatchStats {
            queries: queries.len(),
            shared_path_queries,
            unique_masks_verified,
            duplicate_loads_avoided: duplicate_requests,
            masks_loaded: io_delta.masks_loaded,
            bytes_read: io_delta.bytes_read,
            total_wall: batch_start.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{ImageId, Mask, MaskRecord, PixelRange, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_query::{IndexingMode, SessionConfig};
    use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
    use std::sync::Arc;

    fn blob_db(n: u64) -> (Arc<MemoryMaskStore>, Catalog) {
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        for i in 0..n {
            let radius = 2.0 + (i as f32) * 0.8;
            let mask = Mask::from_fn(32, 32, move |x, y| {
                let dx = x as f32 - 16.0;
                let dy = y as f32 - 16.0;
                if (dx * dx + dy * dy).sqrt() < radius {
                    0.9
                } else {
                    0.05
                }
            });
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i / 2))
                    .shape(32, 32)
                    .object_box(Roi::new(8, 8, 24, 24).unwrap())
                    .build(),
            );
        }
        (store, catalog)
    }

    fn session(mode: IndexingMode) -> Session {
        let (store, catalog) = blob_db(20);
        Session::new(
            store as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap())
                .threads(2)
                .indexing_mode(mode),
        )
        .unwrap()
    }

    fn mixed_queries() -> Vec<Query> {
        let roi = Roi::new(4, 4, 28, 28).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        vec![
            Query::filter_cp_gt(roi, range, 40.0),
            Query::filter_cp_gt(roi, range, 150.0),
            Query::filter_cp_lt(roi, range, 90.0),
            Query::top_k_cp(roi, range, 5, masksearch_query::Order::Desc),
            Query::aggregate(
                masksearch_query::Expr::cp(roi, range),
                masksearch_query::ScalarAgg::Avg,
            ),
        ]
    }

    fn assert_batch_matches_serial(mode: IndexingMode) {
        let queries = mixed_queries();
        // Serial reference on a fresh session.
        let serial_session = session(mode);
        let serial: Vec<QueryOutput> = queries
            .iter()
            .map(|q| serial_session.execute(q).unwrap())
            .collect();
        // Batched execution on another fresh session.
        let batch_session = session(mode);
        let batch = execute(&batch_session, &queries).unwrap();
        assert_eq!(batch.outputs.len(), serial.len());
        for (b, s) in batch.outputs.iter().zip(&serial) {
            assert_eq!(b.rows, s.rows, "mode {mode:?}");
        }
        assert_eq!(batch.stats.queries, 5);
        assert_eq!(batch.stats.shared_path_queries, 3);
    }

    #[test]
    fn batch_matches_serial_eager() {
        assert_batch_matches_serial(IndexingMode::Eager);
    }

    #[test]
    fn batch_matches_serial_incremental() {
        assert_batch_matches_serial(IndexingMode::Incremental);
    }

    #[test]
    fn batch_matches_serial_disabled() {
        assert_batch_matches_serial(IndexingMode::Disabled);
    }

    #[test]
    fn sharing_avoids_duplicate_loads() {
        // With indexing disabled every candidate of every filter query needs
        // verification; batching loads each mask once instead of three times.
        let queries = mixed_queries();
        let s = session(IndexingMode::Disabled);
        let batch = execute(&s, &queries[..3]).unwrap();
        assert_eq!(batch.stats.unique_masks_verified, 20);
        // Two extra requests per mask beyond the first (three filter queries).
        assert_eq!(batch.stats.duplicate_loads_avoided, 40);
        assert_eq!(batch.stats.masks_loaded, 20);

        // Serial execution on a fresh disabled session loads 60.
        let serial_session = session(IndexingMode::Disabled);
        let before = serial_session.store().io_stats().snapshot();
        for q in &queries[..3] {
            serial_session.execute(q).unwrap();
        }
        let serial_loads = serial_session
            .store()
            .io_stats()
            .snapshot()
            .delta_since(&before)
            .masks_loaded;
        assert_eq!(serial_loads, 60);
    }

    #[test]
    fn empty_batch_is_fine() {
        let s = session(IndexingMode::Eager);
        let batch = execute(&s, &[]).unwrap();
        assert!(batch.outputs.is_empty());
        assert_eq!(batch.stats.queries, 0);
    }
}
