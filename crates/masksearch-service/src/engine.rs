//! The [`Engine`]: a cloneable, thread-safe handle that turns one
//! [`Session`] into a concurrent query service.
//!
//! The engine owns a bounded job queue and a pool of worker threads. Any
//! number of caller threads (or TCP connections) submit queries through the
//! same handle; workers pull jobs off the queue and execute them against the
//! shared session. Because `Session::execute` takes `&self` and all session
//! state (CHI store, mask cache, aggregated indexes) is behind interior
//! locks, concurrent execution needs no coordination beyond the queue.

use crate::batch::{self, BatchOutput};
use crate::config::{AdmissionPolicy, ServiceConfig};
use crate::dedup::{Admission, MutationDedup};
use crate::error::{ServiceError, ServiceResult};
use crate::job::{
    Job, MutationResponse, PartialResponse, QueryResponse, Request, Response, Ticket,
};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::queue::{JobQueue, PushError};
use masksearch_core::MaskId;
use masksearch_obs::{
    keys as obs_keys, prom::PromText, FlightRecorder, ProfileRing, QueryProfile, RecordKind,
    RecordedQuery, RecorderStatus, SlowQueryLog, StageCounts, TimeSeries, WindowSummary,
};
use masksearch_query::{Mutation, MutationOutcome, Query, QueryStats, Session};
use masksearch_sql::{ExplainMode, Statement, TxnControl};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many recent query profiles the engine retains for `STATS PROFILES`.
const PROFILE_RING_CAPACITY: usize = 128;

// The whole serving layer rests on the session stack being shareable across
// worker threads; assert it at compile time so a future refactor that breaks
// thread-safety fails here with a clear message rather than somewhere in a
// spawn call.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<masksearch_index::ChiStore>();
    assert_send_sync::<masksearch_storage::MaskCache>();
    assert_send_sync::<masksearch_storage::Catalog>();
    assert_send_sync::<Engine>();
};

struct Shared {
    session: Arc<Session>,
    queue: JobQueue<Job>,
    metrics: ServiceMetrics,
    /// Recently applied mutation tokens (exactly-once client resends).
    dedup: MutationDedup,
    /// Span trees of recent traced queries (`STATS PROFILES`).
    profiles: ProfileRing,
    /// Threshold-gated JSON-lines log of slow queries.
    slow_log: SlowQueryLog,
    /// Windowed time-series over completions (`METRICS WINDOW <secs>`).
    timeseries: TimeSeries,
    /// Flight recorder capturing executed statements (`RECORD START/STOP`).
    recorder: FlightRecorder,
    /// When the engine came up; recorded arrival timestamps are offsets
    /// from this instant.
    epoch: Instant,
    /// Whether workers trace queries (`ServiceConfig::tracing`). With this
    /// off the execution path is exactly the pre-observability one.
    tracing: bool,
    shutting_down: AtomicBool,
}

impl Shared {
    /// Records a traced query into the profile ring and the slow-query log.
    /// `trace` is `None` when tracing is off — then this is a no-op and the
    /// query took the untraced path end to end.
    fn observe_query(
        &self,
        trace: Option<masksearch_obs::TraceGuard>,
        statement: Option<&Arc<str>>,
        query: &Query,
        stats: &QueryStats,
        wall: Duration,
    ) {
        let Some(trace) = trace else { return };
        let label: std::borrow::Cow<'_, str> = match statement {
            Some(s) => std::borrow::Cow::Borrowed(s.as_ref()),
            // Programmatic submissions have no SQL text; the normalized
            // shape key still tells an operator what ran.
            None => {
                std::borrow::Cow::Owned(masksearch_query::shape_key(query, self.session.config()))
            }
        };
        if let Some(root) = trace.finish() {
            self.profiles.record(&label, wall.as_micros() as u64, root);
        }
        // The plan signature re-runs planning, so it is only computed once
        // the entry is known to cross the threshold.
        let plan = self
            .slow_log
            .would_log(wall)
            .then(|| self.session.plan_signature(query));
        self.slow_log.observe_with_plan(
            &label,
            plan.as_deref(),
            wall,
            &[
                (obs_keys::CANDIDATES, stats.candidates),
                (obs_keys::PRUNED, stats.pruned),
                (obs_keys::VERIFIED, stats.verified),
                (obs_keys::LOADED, stats.masks_loaded),
                (obs_keys::PLANNER_KERNEL_ON, stats.planner_kernel_on),
                (obs_keys::PLANNER_KERNEL_OFF, stats.planner_kernel_off),
                (
                    obs_keys::PLANNER_BOUNDS_SKIPPED,
                    stats.planner_bounds_skipped,
                ),
                (obs_keys::PLANNER_REORDERS, stats.planner_reorders),
            ],
        );
    }

    /// Feeds one completion (or failure) into the windowed time series.
    /// Always on: the rings are bounded and an observation is a short
    /// mutex-protected bucket update.
    fn observe_series(&self, wall: Duration, ok: bool, stats: Option<&QueryStats>) {
        let stages = stats
            .map(|s| StageCounts {
                candidates: s.candidates,
                pruned: s.pruned,
                verified: s.verified,
                loaded: s.masks_loaded,
            })
            .unwrap_or_default();
        self.timeseries.observe(wall.as_micros() as u64, ok, stages);
    }
}

/// Owns the worker handles; its `Drop` (run exactly once, when the last
/// `Engine` clone goes away) shuts the pool down. Relying on `Arc` dropping
/// the guard makes last-handle detection atomic — a manual
/// `strong_count == 1` check in `Engine::drop` would race when two clones
/// drop concurrently.
struct PoolGuard {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PoolGuard {
    /// Stops admissions, fails queued jobs, and joins workers. Idempotent.
    fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.queue.close();
        for job in self.shared.queue.drain() {
            let _ = job.reply.send(Err(ServiceError::ShuttingDown));
        }
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A concurrent query-serving handle over one [`Session`].
///
/// Cloning an `Engine` is cheap and produces another handle on the same
/// worker pool; the pool shuts down when [`Engine::shutdown`] is called or
/// the last handle is dropped.
pub struct Engine {
    shared: Arc<Shared>,
    pool: Arc<PoolGuard>,
    config: ServiceConfig,
}

impl Clone for Engine {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
            pool: Arc::clone(&self.pool),
            config: self.config.clone(),
        }
    }
}

impl Engine {
    /// Creates an engine owning `session` and starts its worker pool.
    pub fn new(session: Session, config: ServiceConfig) -> Self {
        Self::with_shared_session(Arc::new(session), config)
    }

    /// Creates an engine over an already shared session.
    pub fn with_shared_session(mut session: Arc<Session>, config: ServiceConfig) -> Self {
        // Each worker runs one query at a time, and each query fans out to
        // `session.config().threads` verify threads — which defaults to all
        // cores. With several workers the product oversubscribes the machine
        // and throughput *drops* as workers are added (BENCH_service.json:
        // 309 -> 302 QPS going 1 -> 2 workers). Divide the verify pool
        // across workers so total verify concurrency stays ~one machine.
        // A session already shared with another engine is left untouched.
        if config.workers > 1 {
            if let Some(session) = Arc::get_mut(&mut session) {
                let per_worker = (session.config().threads / config.workers).max(1);
                session.set_threads(per_worker);
            }
        }
        // Slow-query destination: a configured file (append mode), else the
        // historical stderr default. A file that cannot be opened falls
        // back to stderr rather than failing engine construction.
        let slow_log = match config.slow_query_path.as_deref().map(|path| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
        }) {
            Some(Ok(file)) => SlowQueryLog::with_sink(config.slow_query, Box::new(file)),
            Some(Err(e)) => {
                eprintln!("masksearch: slow-query log file unavailable, using stderr: {e}");
                SlowQueryLog::stderr(config.slow_query)
            }
            None => SlowQueryLog::stderr(config.slow_query),
        };
        let recorder = FlightRecorder::new();
        if let Some(path) = &config.record_to {
            if let Err(e) = recorder.start(path, config.recorder_budget) {
                eprintln!(
                    "masksearch: flight recorder disabled ({}: {e})",
                    path.display()
                );
            }
        }
        let shared = Arc::new(Shared {
            session,
            queue: JobQueue::new(config.queue_depth),
            metrics: ServiceMetrics::new(),
            dedup: MutationDedup::new(),
            profiles: ProfileRing::new(PROFILE_RING_CAPACITY),
            slow_log,
            timeseries: TimeSeries::new(),
            recorder,
            epoch: Instant::now(),
            tracing: config.tracing,
            shutting_down: AtomicBool::new(false),
        });
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("masksearch-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread"),
            );
        }
        Self {
            pool: Arc::new(PoolGuard {
                shared: Arc::clone(&shared),
                workers: Mutex::new(workers),
            }),
            shared,
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared session behind the engine.
    pub fn session(&self) -> &Arc<Session> {
        &self.shared.session
    }

    /// Number of jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Server-wide metrics, with the cache hit rate taken from the session's
    /// shared mask cache and the write-path counters from the store (when it
    /// tracks them).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.shared.metrics.snapshot();
        snapshot.cache_hit_rate = self.shared.session.cache().stats().hit_rate();
        snapshot.queue_depth = self.shared.queue.len() as u64;
        if let Some(ingest) = self.shared.session.store().ingest_stats() {
            snapshot.ingest = ingest;
        }
        snapshot
    }

    /// Everything the server knows, as a Prometheus text exposition
    /// (version 0.0.4): service counters and gauges, the process-global
    /// observability counters, and the latency/queue-wait histograms.
    pub fn prometheus_text(&self) -> String {
        let s = self.metrics();
        let mut p = PromText::new();
        p.counter(
            "masksearch_queries_submitted_total",
            "Queries admitted to the job queue.",
            s.submitted,
        );
        p.counter(
            "masksearch_queries_completed_total",
            "Queries finished successfully.",
            s.completed,
        );
        p.counter(
            "masksearch_queries_failed_total",
            "Queries that failed during execution.",
            s.failed,
        );
        p.counter(
            "masksearch_queries_rejected_total",
            "Queries rejected by admission control.",
            s.rejected,
        );
        p.counter(
            "masksearch_queries_deadline_expired_total",
            "Queries abandoned on queue-deadline expiry.",
            s.deadline_expired,
        );
        p.counter(
            "masksearch_batches_total",
            "Batch jobs executed.",
            s.batches,
        );
        p.counter(
            "masksearch_mutations_total",
            "Write statements applied.",
            s.mutations,
        );
        p.counter(
            "masksearch_masks_inserted_total",
            "Masks inserted by served writes.",
            s.masks_inserted,
        );
        p.counter(
            "masksearch_masks_deleted_total",
            "Masks deleted by served writes.",
            s.masks_deleted,
        );
        p.counter(
            "masksearch_masks_updated_total",
            "Masks re-masked in place by served writes.",
            s.masks_updated,
        );
        p.counter(
            "masksearch_mutations_deduped_total",
            "Mutations answered from the token-dedup registry.",
            s.mutations_deduped,
        );
        p.counter(
            "masksearch_tiles_pruned_total",
            "Verification-kernel tiles decided from min/max summaries.",
            s.tiles_pruned,
        );
        p.counter(
            "masksearch_tiles_hist_total",
            "Verification-kernel tiles answered from tile histograms.",
            s.tiles_hist,
        );
        p.counter(
            "masksearch_tiles_scanned_total",
            "Verification-kernel tiles scanned pixel by pixel.",
            s.tiles_scanned,
        );
        p.counter(
            "masksearch_pairs_bound_total",
            "Pair-query images bound.",
            s.pairs_bound,
        );
        p.counter(
            "masksearch_planner_kernel_on_total",
            "Masks the planner routed to the tiled verification kernel.",
            s.planner_kernel_on,
        );
        p.counter(
            "masksearch_planner_kernel_off_total",
            "Masks the planner routed to the reference scan.",
            s.planner_kernel_off,
        );
        p.counter(
            "masksearch_planner_bounds_skipped_total",
            "Pairs whose bounds classification the planner skipped.",
            s.planner_bounds_skipped,
        );
        p.counter(
            "masksearch_planner_reorders_total",
            "Queries whose CP terms the planner reordered.",
            s.planner_reorders,
        );
        p.counter(
            "masksearch_index_probes_total",
            "Secondary-index probes issued by metadata resolution.",
            s.index_probes,
        );
        p.counter(
            "masksearch_index_rows_total",
            "Candidate rows produced by secondary-index probes.",
            s.index_rows,
        );
        p.counter(
            "masksearch_planner_index_on_total",
            "Queries whose metadata filter was answered through an index.",
            s.planner_index_on,
        );
        p.counter(
            "masksearch_planner_index_off_total",
            "Index-eligible queries the planner kept on the catalog scan.",
            s.planner_index_off,
        );
        p.counter(
            "masksearch_wal_bytes_total",
            "Bytes appended to the write-ahead log.",
            s.ingest.wal_bytes,
        );
        p.counter(
            "masksearch_commits_total",
            "Committed write transactions.",
            s.ingest.commits,
        );
        p.counter(
            "masksearch_checkpoints_total",
            "Checkpoints completed (WAL truncations).",
            s.ingest.checkpoints,
        );
        p.counter(
            "masksearch_profiles_recorded_total",
            "Query profiles recorded into the profile ring.",
            self.shared.profiles.recorded(),
        );
        p.counter(
            "masksearch_slow_queries_logged_total",
            "Entries written to the slow-query log.",
            self.shared.slow_log.logged(),
        );
        p.gauge(
            "masksearch_uptime_seconds",
            "Time since the server started.",
            s.uptime.as_secs_f64(),
        );
        p.gauge("masksearch_qps", "Completed queries per second.", s.qps);
        p.gauge(
            "masksearch_filter_rate",
            "Fraction of candidates the index avoided loading.",
            s.filter_rate,
        );
        p.gauge(
            "masksearch_cache_hit_rate",
            "Shared mask-cache hit rate.",
            s.cache_hit_rate,
        );
        p.gauge(
            "masksearch_queue_depth",
            "Jobs waiting in the bounded queue.",
            s.queue_depth as f64,
        );
        // Process-global counters: lock waits, kernel calls, WAL/pager
        // activity, scatter rounds. Same source the cluster coordinator
        // aggregates, so names line up across single node and cluster.
        for (name, value) in masksearch_obs::counters::snapshot() {
            p.counter(
                &format!("masksearch_{name}_total"),
                "Process-global observability counter.",
                value,
            );
        }
        let mut text = p.finish();
        for (name, help, histogram) in [
            (
                "masksearch_query_latency_seconds",
                "End-to-end query latency (submission to completion).",
                &s.latency,
            ),
            (
                "masksearch_queue_wait_seconds",
                "Time jobs spent queued before a worker picked them up.",
                &s.queue_wait,
            ),
        ] {
            text.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
            histogram.render_prometheus(name, &mut text);
        }
        // Windowed gauges (last minute, last five minutes) from the bounded
        // time-series rings.
        self.shared
            .timeseries
            .render_prometheus(&[60, 300], &mut text);
        text
    }

    /// The most recent `n` traced query profiles, newest first.
    pub fn recent_profiles(&self, n: usize) -> Vec<QueryProfile> {
        self.shared.profiles.recent(n)
    }

    /// The engine's slow-query log (threshold set by
    /// [`ServiceConfig::slow_query`]).
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.shared.slow_log
    }

    /// Summary of the last `secs` seconds of activity from the windowed
    /// time series (rates, latency percentiles, stage sums, and global
    /// counter deltas over the window).
    pub fn window(&self, secs: u64) -> WindowSummary {
        self.shared.timeseries.window(secs)
    }

    /// The windowed gauges for `secs` as a Prometheus text exposition (the
    /// payload of a `METRICS WINDOW <secs>` frame).
    pub fn metrics_window_text(&self, secs: u64) -> String {
        let mut text = String::new();
        self.shared.timeseries.render_prometheus(&[secs], &mut text);
        text
    }

    /// Current flight-recorder state.
    pub fn recorder_status(&self) -> RecorderStatus {
        self.shared.recorder.status()
    }

    /// Starts (or resumes) the flight recorder. Without an explicit path the
    /// configured [`ServiceConfig::record_to`] path is used.
    pub fn record_start(&self, path: Option<&str>) -> ServiceResult<RecorderStatus> {
        let path = match path {
            Some(p) => std::path::PathBuf::from(p),
            None => self.config.record_to.clone().ok_or_else(|| {
                ServiceError::Protocol(
                    "RECORD START needs a path (no recording path configured)".to_string(),
                )
            })?,
        };
        self.shared
            .recorder
            .start(&path, self.config.recorder_budget)
            .map_err(|e| ServiceError::Io(format!("cannot record to {}: {e}", path.display())))?;
        Ok(self.shared.recorder.status())
    }

    /// Flushes and stops the flight recorder.
    pub fn record_stop(&self) -> ServiceResult<RecorderStatus> {
        self.shared
            .recorder
            .stop()
            .map_err(|e| ServiceError::Io(format!("recorder flush failed: {e}")))?;
        Ok(self.shared.recorder.status())
    }

    /// Current cumulative values of the monotonic counters a `MONITOR`
    /// subscription streams as deltas, keyed by
    /// [`obs_keys::MONITOR_DELTA_KEYS`]. A subscriber's baseline is zero,
    /// so deltas summed over a subscription equal these values at its last
    /// sample — the same numbers `STATS` reports.
    pub fn monitor_values(&self) -> Vec<(&'static str, u64)> {
        let m = self.metrics();
        obs_keys::MONITOR_DELTA_KEYS
            .iter()
            .map(|&key| {
                let value = match key {
                    k if k == obs_keys::COMPLETED => m.completed,
                    k if k == obs_keys::FAILED => m.failed,
                    k if k == obs_keys::REJECTED => m.rejected,
                    k if k == obs_keys::DEADLINE_EXPIRED => m.deadline_expired,
                    k if k == obs_keys::MUTATIONS => m.mutations,
                    k if k == obs_keys::INSERTED => m.masks_inserted,
                    k if k == obs_keys::DELETED => m.masks_deleted,
                    k if k == obs_keys::UPDATED => m.masks_updated,
                    k if k == obs_keys::DEDUPED => m.mutations_deduped,
                    k if k == obs_keys::CHECKPOINTS => m.ingest.checkpoints,
                    k if k == obs_keys::COMMITS => m.ingest.commits,
                    k if k == obs_keys::TILES_PRUNED => m.tiles_pruned,
                    k if k == obs_keys::TILES_HIST => m.tiles_hist,
                    k if k == obs_keys::TILES_SCANNED => m.tiles_scanned,
                    k if k == obs_keys::PAIRS_BOUND => m.pairs_bound,
                    k if k == obs_keys::PLANNER_KERNEL_ON => m.planner_kernel_on,
                    k if k == obs_keys::PLANNER_KERNEL_OFF => m.planner_kernel_off,
                    k if k == obs_keys::PLANNER_BOUNDS_SKIPPED => m.planner_bounds_skipped,
                    k if k == obs_keys::PLANNER_REORDERS => m.planner_reorders,
                    k if k == obs_keys::INDEX_PROBES => m.index_probes,
                    k if k == obs_keys::INDEX_ROWS => m.index_rows,
                    k if k == obs_keys::PLANNER_INDEX_ON => m.planner_index_on,
                    k if k == obs_keys::PLANNER_INDEX_OFF => m.planner_index_off,
                    _ => 0,
                };
                (key, value)
            })
            .collect()
    }

    /// Which of the given mask ids this engine's session currently holds.
    /// Used by a cluster coordinator to resolve the owning shard of each id
    /// before routing a `DELETE`.
    pub fn lookup(&self, ids: &[MaskId]) -> Vec<MaskId> {
        ids.iter()
            .copied()
            .filter(|&id| self.shared.session.record(id).is_ok())
            .collect()
    }

    /// Every mask id this engine's session currently holds (the answer to a
    /// `LOOKUP *`). Used by a cluster coordinator to seed its mask-id →
    /// shard owner map in one round trip per shard instead of broadcasting
    /// per-statement lookups.
    pub fn lookup_all(&self) -> Vec<MaskId> {
        self.shared.session.store().ids()
    }

    /// Opens a flight-recorder capture for one statement, if recording.
    /// Taken at entry (before compilation) so the arrival timestamp
    /// reflects when the statement reached the service.
    fn begin_capture(&self) -> Option<CaptureStart> {
        if !self.shared.recorder.is_active() {
            return None;
        }
        Some(CaptureStart {
            arrival_us: self.shared.epoch.elapsed().as_micros() as u64,
            started: Instant::now(),
        })
    }

    /// Writes one captured statement to the flight recorder. No-op when
    /// `start` is `None` (recording was off at arrival).
    fn capture(
        &self,
        start: Option<CaptureStart>,
        kind: RecordKind,
        aux: u64,
        sql: &str,
        outcome: CapturedOutcome<'_>,
    ) {
        let Some(start) = start else { return };
        let (ok, rows, counters, digest, wall_us) = match outcome {
            CapturedOutcome::Query(r, bound) => {
                let s = &r.output.stats;
                (
                    true,
                    r.output.rows.len() as u64,
                    [s.candidates, s.pruned, s.verified, s.masks_loaded, 0, 0],
                    crate::protocol::digest_query_response(r, bound),
                    r.exec_time.as_micros() as u64,
                )
            }
            CapturedOutcome::Mutation(m) => (
                true,
                0,
                [
                    0,
                    0,
                    0,
                    0,
                    m.outcome.inserted as u64,
                    m.outcome.deleted as u64,
                ],
                crate::protocol::digest_mutation_response(m),
                m.exec_time.as_micros() as u64,
            ),
            CapturedOutcome::Plan(lines) => (
                true,
                lines.len() as u64,
                [0; 6],
                crate::protocol::digest_plan_lines(lines),
                start.started.elapsed().as_micros() as u64,
            ),
            CapturedOutcome::Error(e) => (
                false,
                0,
                [0; 6],
                crate::protocol::digest_error_message(&e.wire_message()),
                start.started.elapsed().as_micros() as u64,
            ),
        };
        let shape = match &outcome {
            CapturedOutcome::Error(_) => "error".to_string(),
            CapturedOutcome::Plan(_) => "explain".to_string(),
            CapturedOutcome::Mutation(_) => {
                let upper = sql.trim_start().to_ascii_uppercase();
                if upper.starts_with("INSERT") {
                    "insert".to_string()
                } else if upper.starts_with("DELETE") {
                    "delete".to_string()
                } else if upper.starts_with("UPDATE") {
                    "update".to_string()
                } else if upper.starts_with("BEGIN") {
                    "transaction".to_string()
                } else {
                    "mutation".to_string()
                }
            }
            CapturedOutcome::Query(..) => match masksearch_sql::compile_statement(sql) {
                Ok(masksearch_sql::Statement::Query(query)) => {
                    masksearch_query::shape_key(&query, self.shared.session.config())
                }
                _ => "query".to_string(),
            },
        };
        self.shared.recorder.record(&RecordedQuery {
            arrival_us: start.arrival_us,
            wall_us,
            kind,
            ok,
            rows,
            aux,
            counters,
            digest,
            shape,
            sql: sql.to_string(),
        });
    }

    fn submit_request(
        &self,
        request: Request,
        deadline: Option<Duration>,
    ) -> ServiceResult<Ticket> {
        self.submit_labeled(request, deadline, None)
    }

    fn submit_labeled(
        &self,
        request: Request,
        deadline: Option<Duration>,
        statement: Option<Arc<str>>,
    ) -> ServiceResult<Ticket> {
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let submitted = Instant::now();
        let deadline = deadline
            .or(self.config.default_deadline)
            .map(|d| submitted + d);
        let (reply, receiver) = mpsc::channel();
        let job = Job {
            request,
            submitted,
            deadline,
            reply,
            statement,
        };
        let pushed = match self.config.admission {
            AdmissionPolicy::Reject => self.shared.queue.try_push(job),
            AdmissionPolicy::Block => self.shared.queue.push_blocking(job),
        };
        match pushed {
            Ok(()) => {
                self.shared.metrics.record_submitted();
                Ok(Ticket {
                    submitted,
                    receiver,
                })
            }
            Err(PushError::Full(_)) => {
                self.shared.metrics.record_rejected();
                Err(ServiceError::QueueFull {
                    depth: self.config.queue_depth,
                })
            }
            Err(PushError::Closed(_)) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Submits one query; redeem the returned [`Ticket`] for the result.
    pub fn submit(&self, query: Query) -> ServiceResult<Ticket> {
        self.submit_request(Request::Single(query), None)
    }

    /// Submits one query with an explicit deadline (overrides the default).
    pub fn submit_with_deadline(&self, query: Query, deadline: Duration) -> ServiceResult<Ticket> {
        self.submit_request(Request::Single(query), Some(deadline))
    }

    /// Submits a batch executed with shared filter/verification work.
    pub fn submit_batch(&self, queries: Vec<Query>) -> ServiceResult<Ticket> {
        self.submit_request(Request::Batch(queries), None)
    }

    /// Submits a ranked query in partial (cluster-shard) mode with a
    /// per-shard `k`; redeem the ticket with [`Ticket::wait_partial`].
    pub fn submit_partial(&self, query: Query, k: usize) -> ServiceResult<Ticket> {
        self.submit_request(Request::Partial { query, k }, None)
    }

    /// Compiles a ranked SQL statement and executes it in partial mode: the
    /// statement's own `LIMIT` is replaced by `k` and the response reports
    /// the k-th value as a bound on every unreturned candidate. Non-ranked
    /// statements execute normally (with no bound); writes are rejected.
    pub fn execute_partial_sql(&self, sql: &str, k: usize) -> ServiceResult<PartialResponse> {
        let start = self.begin_capture();
        let result = self.execute_partial_sql_inner(sql, k);
        if start.is_some() {
            let outcome = match &result {
                Ok(p) => CapturedOutcome::Query(&p.response, p.bound),
                Err(e) => CapturedOutcome::Error(e),
            };
            self.capture(start, RecordKind::Partial, k as u64, sql, outcome);
        }
        result
    }

    fn execute_partial_sql_inner(&self, sql: &str, k: usize) -> ServiceResult<PartialResponse> {
        match masksearch_sql::compile_statement(sql)? {
            Statement::Query(query) => self
                .submit_labeled(Request::Partial { query, k }, None, Some(Arc::from(sql)))?
                .wait_partial(),
            Statement::Mutation(_) | Statement::Control(_) => Err(ServiceError::Sql(
                "PARTIAL applies to queries, not writes".to_string(),
            )),
        }
    }

    /// Submits a write (an atomic INSERT/DELETE batch); redeem the ticket
    /// with [`Ticket::wait_mutation`].
    pub fn submit_mutation(&self, mutation: Mutation) -> ServiceResult<Ticket> {
        self.submit_request(Request::Mutation(mutation), None)
    }

    /// Submits a write and blocks for its outcome.
    pub fn execute_mutation(&self, mutation: Mutation) -> ServiceResult<MutationResponse> {
        self.submit_mutation(mutation)?.wait_mutation()
    }

    /// Submits a transaction (every mutation lands in one storage commit or
    /// none do); redeem the ticket with [`Ticket::wait_mutation`].
    pub fn submit_transaction(&self, mutations: Vec<Mutation>) -> ServiceResult<Ticket> {
        self.submit_request(Request::Transaction(mutations), None)
    }

    /// Submits a transaction and blocks for its summed outcome.
    pub fn execute_transaction(&self, mutations: Vec<Mutation>) -> ServiceResult<MutationResponse> {
        self.submit_transaction(mutations)?.wait_mutation()
    }

    /// Runs a parsed transaction script. A script that ended in `ROLLBACK`
    /// applies nothing and reports a zero outcome without touching the queue.
    fn run_transaction_script(
        &self,
        mutations: Vec<Mutation>,
        commit: bool,
    ) -> ServiceResult<MutationResponse> {
        if !commit {
            return Ok(MutationResponse {
                outcome: MutationOutcome::default(),
                queue_wait: Duration::ZERO,
                exec_time: Duration::ZERO,
            });
        }
        self.execute_transaction(mutations)
    }

    /// Compiles any SQL statement — SELECT, INSERT, or DELETE — and executes
    /// it, returning the matching response variant. This is the entry point
    /// the TCP front end uses, so network clients can ingest masks while
    /// other clients query.
    pub fn execute_statement(&self, sql: &str) -> ServiceResult<Response> {
        let start = self.begin_capture();
        let result = self.execute_statement_inner(sql);
        if start.is_some() {
            self.capture_response(start, RecordKind::Statement, 0, sql, &result);
        }
        result
    }

    /// Records an `execute_statement`-shaped result (used by both the plain
    /// and tokened entry points).
    fn capture_response(
        &self,
        start: Option<CaptureStart>,
        kind: RecordKind,
        aux: u64,
        sql: &str,
        result: &ServiceResult<Response>,
    ) {
        let outcome = match result {
            Ok(Response::Single(r)) => CapturedOutcome::Query(r, None),
            Ok(Response::Partial(p)) => CapturedOutcome::Query(&p.response, p.bound),
            Ok(Response::Mutation(m)) => CapturedOutcome::Mutation(m),
            Ok(Response::Plan(lines)) => CapturedOutcome::Plan(lines),
            // Batches never come through the statement entry points.
            Ok(Response::Batch(_)) => return,
            Err(e) => CapturedOutcome::Error(e),
        };
        self.capture(start, kind, aux, sql, outcome);
    }

    fn execute_statement_inner(&self, sql: &str) -> ServiceResult<Response> {
        if let Some((mode, inner)) = masksearch_sql::strip_explain(sql) {
            return Ok(Response::Plan(
                self.explain_sql(mode == ExplainMode::Analyze, inner)?,
            ));
        }
        if let Some((mutations, commit)) = compile_transaction_script(sql)? {
            return Ok(Response::Mutation(
                self.run_transaction_script(mutations, commit)?,
            ));
        }
        match masksearch_sql::compile_statement(sql)? {
            Statement::Query(query) => Ok(Response::Single(
                self.submit_labeled(Request::Single(query), None, Some(Arc::from(sql)))?
                    .wait_single()?,
            )),
            Statement::Mutation(mutation) => Ok(Response::Mutation(
                self.submit_mutation(mutation)?.wait_mutation()?,
            )),
            Statement::Control(_) => Err(bare_control_error()),
        }
    }

    /// Compiles a SQL query and returns its rendered plan tree, executing it
    /// first when `analyze` is set (`EXPLAIN ANALYZE`) so the plan carries
    /// the measured statistics. Writes cannot be explained.
    pub fn explain_sql(&self, analyze: bool, sql: &str) -> ServiceResult<Vec<String>> {
        match masksearch_sql::compile_statement(sql)? {
            Statement::Query(query) => self
                .submit_labeled(
                    Request::Explain { query, analyze },
                    None,
                    Some(Arc::from(sql)),
                )?
                .wait_plan(),
            Statement::Mutation(_) | Statement::Control(_) => Err(ServiceError::Sql(
                "EXPLAIN applies to queries, not writes".to_string(),
            )),
        }
    }

    /// Executes a SQL statement carrying a client deduplication token
    /// (`TOKEN <id> <sql>`). Queries execute normally (tokens are
    /// meaningless for side-effect-free reads). A mutation whose token
    /// already applied is answered from the recorded outcome without
    /// touching the store — this is what makes a client's
    /// resend-after-transport-error exactly-once. A duplicate racing the
    /// original blocks until the original finishes.
    pub fn execute_statement_tokened(&self, token: u64, sql: &str) -> ServiceResult<Response> {
        let start = self.begin_capture();
        let result = self.execute_statement_tokened_inner(token, sql);
        if start.is_some() {
            self.capture_response(start, RecordKind::Tokened, token, sql, &result);
        }
        result
    }

    fn execute_statement_tokened_inner(&self, token: u64, sql: &str) -> ServiceResult<Response> {
        if let Some((mode, inner)) = masksearch_sql::strip_explain(sql) {
            // Dedup tokens are meaningless for side-effect-free explains.
            return Ok(Response::Plan(
                self.explain_sql(mode == ExplainMode::Analyze, inner)?,
            ));
        }
        if let Some((mutations, commit)) = compile_transaction_script(sql)? {
            // The whole script dedups as one unit: a resent script whose
            // original committed replays the recorded summed outcome.
            return match self.shared.dedup.begin(token) {
                Admission::Replay(outcome) => {
                    self.shared.metrics.record_mutation_deduped();
                    Ok(Response::Mutation(MutationResponse {
                        outcome,
                        queue_wait: Duration::ZERO,
                        exec_time: Duration::ZERO,
                    }))
                }
                Admission::Execute => {
                    let permit = self.shared.dedup.permit(token);
                    let response = self.run_transaction_script(mutations, commit)?;
                    permit.finish(response.outcome);
                    Ok(Response::Mutation(response))
                }
            };
        }
        match masksearch_sql::compile_statement(sql)? {
            Statement::Query(query) => Ok(Response::Single(
                self.submit_labeled(Request::Single(query), None, Some(Arc::from(sql)))?
                    .wait_single()?,
            )),
            Statement::Mutation(mutation) => {
                match self.shared.dedup.begin(token) {
                    Admission::Replay(outcome) => {
                        self.shared.metrics.record_mutation_deduped();
                        Ok(Response::Mutation(MutationResponse {
                            outcome,
                            queue_wait: Duration::ZERO,
                            exec_time: Duration::ZERO,
                        }))
                    }
                    Admission::Execute => {
                        // The permit abandons the token on *any* exit —
                        // error or unwind — that does not record an
                        // outcome, so a resend can never park forever
                        // behind a dead execution.
                        let permit = self.shared.dedup.permit(token);
                        let response = self.execute_mutation(mutation)?;
                        permit.finish(response.outcome);
                        Ok(Response::Mutation(response))
                    }
                }
            }
            Statement::Control(_) => Err(bare_control_error()),
        }
    }

    /// Submits a query and blocks for its result.
    pub fn execute(&self, query: &Query) -> ServiceResult<QueryResponse> {
        self.submit(query.clone())?.wait_single()
    }

    /// Compiles a SQL statement in the MaskSearch dialect and executes it.
    pub fn execute_sql(&self, sql: &str) -> ServiceResult<QueryResponse> {
        let start = self.begin_capture();
        let result = self.execute_sql_inner(sql);
        if start.is_some() {
            let outcome = match &result {
                Ok(r) => CapturedOutcome::Query(r, None),
                Err(e) => CapturedOutcome::Error(e),
            };
            self.capture(start, RecordKind::Statement, 0, sql, outcome);
        }
        result
    }

    fn execute_sql_inner(&self, sql: &str) -> ServiceResult<QueryResponse> {
        let query = masksearch_sql::compile(sql)?;
        self.submit_labeled(Request::Single(query), None, Some(Arc::from(sql)))?
            .wait_single()
    }

    /// Submits a batch and blocks for all of its results.
    pub fn execute_batch(&self, queries: Vec<Query>) -> ServiceResult<BatchOutput> {
        self.submit_batch(queries)?.wait_batch()
    }

    /// Stops accepting work, fails queued-but-unstarted jobs with
    /// [`ServiceError::ShuttingDown`], and joins the worker pool. Idempotent;
    /// also happens automatically when the last `Engine` clone drops.
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }
}

/// The error a bare interactive `BEGIN` / `COMMIT` / `ROLLBACK` gets at the
/// engine's statement entry points: transaction state is connection-scoped,
/// which the embedded API has none of.
fn bare_control_error() -> ServiceError {
    ServiceError::Sql(
        "BEGIN/COMMIT/ROLLBACK control a connection's open transaction; \
         here send the whole transaction as one `BEGIN; ...; COMMIT` script"
            .to_string(),
    )
}

/// Recognises a multi-statement `BEGIN; …; COMMIT` (or `… ROLLBACK`) script
/// and extracts its mutations. Returns `Ok(None)` for anything that is a
/// single statement (including one with a trailing `;`), which then takes
/// the ordinary [`masksearch_sql::compile_statement`] path. Multi-statement
/// scripts that are not a well-formed transaction are rejected loudly —
/// nothing is ever partially applied.
fn compile_transaction_script(sql: &str) -> ServiceResult<Option<(Vec<Mutation>, bool)>> {
    if !sql.contains(';') {
        return Ok(None);
    }
    let statements = masksearch_sql::compile_script(sql)?;
    if statements.len() <= 1 {
        return Ok(None);
    }
    let err = |msg: &str| Err(ServiceError::Sql(msg.to_string()));
    let mut iter = statements.into_iter();
    if !matches!(iter.next(), Some(Statement::Control(TxnControl::Begin))) {
        return err("a multi-statement script must be wrapped in BEGIN ... COMMIT");
    }
    let mut mutations = Vec::new();
    let mut finished = None;
    for statement in iter {
        if finished.is_some() {
            return err("statements after COMMIT/ROLLBACK in a transaction script");
        }
        match statement {
            Statement::Mutation(m) => mutations.push(m),
            Statement::Control(TxnControl::Commit) => finished = Some(true),
            Statement::Control(TxnControl::Rollback) => finished = Some(false),
            Statement::Control(TxnControl::Begin) => {
                return err("nested BEGIN in a transaction script");
            }
            Statement::Query(_) => {
                return err("queries are not allowed inside a transaction script");
            }
        }
    }
    match finished {
        Some(commit) => Ok(Some((mutations, commit))),
        None => err("a transaction script must end with COMMIT (or ROLLBACK)"),
    }
}

/// Arrival timestamp and start instant of one recorded statement.
struct CaptureStart {
    arrival_us: u64,
    started: Instant,
}

/// What a captured statement produced, borrowed from the caller's result so
/// capture adds no allocation or copying when recording is off.
enum CapturedOutcome<'a> {
    Query(&'a QueryResponse, Option<f64>),
    Mutation(&'a MutationResponse),
    Plan(&'a [String]),
    Error(&'a ServiceError),
}

/// One worker thread: pop, check deadline, execute, reply, repeat.
///
/// Query execution is wrapped in `catch_unwind` so a panicking query fails
/// only its own job (the caller sees [`ServiceError::Internal`]) instead of
/// killing the worker thread — a dead worker on a small pool would leave
/// later submissions queued forever.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let picked_up = Instant::now();
        let wait = picked_up.duration_since(job.submitted);
        shared.metrics.record_queue_wait(wait);
        if job.expired(picked_up) {
            shared.metrics.record_deadline_expired();
            let _ = job
                .reply
                .send(Err(ServiceError::DeadlineExceeded { waited: wait }));
            continue;
        }
        match job.request {
            Request::Single(query) => {
                let exec_start = Instant::now();
                let trace = shared.tracing.then(|| masksearch_obs::trace("query"));
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.session.execute(&query)
                }));
                match result {
                    Ok(Ok(output)) => {
                        let exec_time = exec_start.elapsed();
                        shared.observe_query(
                            trace,
                            job.statement.as_ref(),
                            &query,
                            &output.stats,
                            exec_time,
                        );
                        shared
                            .metrics
                            .record_completed(&output.stats, job.submitted.elapsed());
                        shared.observe_series(exec_time, true, Some(&output.stats));
                        let _ = job.reply.send(Ok(Response::Single(QueryResponse {
                            output,
                            queue_wait: wait,
                            exec_time,
                        })));
                    }
                    Ok(Err(e)) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job.reply.send(Err(e.into()));
                    }
                    Err(panic) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job
                            .reply
                            .send(Err(ServiceError::Internal(panic_message(&panic))));
                    }
                }
            }
            Request::Explain { query, analyze } => {
                if !analyze {
                    // Plan shape only: no execution, no stats, no trace.
                    let plan = shared.session.explain(&query);
                    let _ = job.reply.send(Ok(Response::Plan(plan.render())));
                    continue;
                }
                let exec_start = Instant::now();
                let trace = shared.tracing.then(|| masksearch_obs::trace("query"));
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.session.explain_analyze(&query)
                }));
                match result {
                    Ok(Ok((plan, output))) => {
                        let exec_time = exec_start.elapsed();
                        shared.observe_query(
                            trace,
                            job.statement.as_ref(),
                            &query,
                            &output.stats,
                            exec_time,
                        );
                        shared
                            .metrics
                            .record_completed(&output.stats, job.submitted.elapsed());
                        shared.observe_series(exec_time, true, Some(&output.stats));
                        let _ = job.reply.send(Ok(Response::Plan(plan.render())));
                    }
                    Ok(Err(e)) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job.reply.send(Err(e.into()));
                    }
                    Err(panic) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job
                            .reply
                            .send(Err(ServiceError::Internal(panic_message(&panic))));
                    }
                }
            }
            Request::Partial { query, k } => {
                let exec_start = Instant::now();
                let trace = shared.tracing.then(|| masksearch_obs::trace("query"));
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.session.execute_topk_partial(&query, Some(k))
                }));
                match result {
                    Ok(Ok(partial)) => {
                        let exec_time = exec_start.elapsed();
                        shared.observe_query(
                            trace,
                            job.statement.as_ref(),
                            &query,
                            &partial.output.stats,
                            exec_time,
                        );
                        shared
                            .metrics
                            .record_completed(&partial.output.stats, job.submitted.elapsed());
                        shared.observe_series(exec_time, true, Some(&partial.output.stats));
                        let _ = job.reply.send(Ok(Response::Partial(PartialResponse {
                            response: QueryResponse {
                                output: partial.output,
                                queue_wait: wait,
                                exec_time,
                            },
                            bound: partial.bound,
                        })));
                    }
                    Ok(Err(e)) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job.reply.send(Err(e.into()));
                    }
                    Err(panic) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job
                            .reply
                            .send(Err(ServiceError::Internal(panic_message(&panic))));
                    }
                }
            }
            Request::Mutation(mutation) => {
                let exec_start = Instant::now();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.session.apply(&mutation)
                }));
                match result {
                    Ok(Ok(outcome)) => {
                        shared.metrics.record_mutation(&outcome);
                        shared.observe_series(exec_start.elapsed(), true, None);
                        let _ = job.reply.send(Ok(Response::Mutation(MutationResponse {
                            outcome,
                            queue_wait: wait,
                            exec_time: exec_start.elapsed(),
                        })));
                    }
                    Ok(Err(e)) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job.reply.send(Err(e.into()));
                    }
                    Err(panic) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job
                            .reply
                            .send(Err(ServiceError::Internal(panic_message(&panic))));
                    }
                }
            }
            Request::Transaction(mutations) => {
                let exec_start = Instant::now();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.session.apply_transaction(&mutations)
                }));
                match result {
                    Ok(Ok(outcome)) => {
                        shared.metrics.record_mutation(&outcome);
                        shared.observe_series(exec_start.elapsed(), true, None);
                        let _ = job.reply.send(Ok(Response::Mutation(MutationResponse {
                            outcome,
                            queue_wait: wait,
                            exec_time: exec_start.elapsed(),
                        })));
                    }
                    Ok(Err(e)) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job.reply.send(Err(e.into()));
                    }
                    Err(panic) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job
                            .reply
                            .send(Err(ServiceError::Internal(panic_message(&panic))));
                    }
                }
            }
            Request::Batch(queries) => {
                shared.metrics.record_batch();
                let exec_start = Instant::now();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    batch::execute(&shared.session, &queries)
                }));
                match result {
                    Ok(Ok(output)) => {
                        let latency = job.submitted.elapsed();
                        let exec_time = exec_start.elapsed();
                        for out in &output.outputs {
                            shared.metrics.record_completed(&out.stats, latency);
                            shared.observe_series(exec_time, true, Some(&out.stats));
                        }
                        let _ = job.reply.send(Ok(Response::Batch(output)));
                    }
                    Ok(Err(e)) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job.reply.send(Err(e.into()));
                    }
                    Err(panic) => {
                        shared.metrics.record_failed();
                        shared.observe_series(exec_start.elapsed(), false, None);
                        let _ = job
                            .reply
                            .send(Err(ServiceError::Internal(panic_message(&panic))));
                    }
                }
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "query execution panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{ImageId, Mask, MaskId, MaskRecord, PixelRange, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_query::{IndexingMode, SessionConfig};
    use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};

    fn test_session(n: u64, mode: IndexingMode) -> Session {
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        for i in 0..n {
            let mask = Mask::from_fn(16, 16, move |x, y| ((x + y + i as u32) % 10) as f32 / 10.0);
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i / 2))
                    .shape(16, 16)
                    .object_box(Roi::new(2, 2, 12, 12).unwrap())
                    .build(),
            );
        }
        Session::new(
            store as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
                .threads(1)
                .indexing_mode(mode),
        )
        .unwrap()
    }

    #[test]
    fn verify_pool_is_divided_across_workers() {
        let make = |threads: usize| {
            Session::new(
                Arc::new(MemoryMaskStore::for_tests()) as Arc<dyn MaskStore>,
                Catalog::new(),
                SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap()).threads(threads),
            )
            .unwrap()
        };
        // 8 verify threads over 4 workers -> 2 per query.
        let engine = Engine::new(make(8), ServiceConfig::new(4));
        assert_eq!(engine.session().config().threads, 2);
        // Floor of one, even with more workers than verify threads.
        let engine = Engine::new(make(2), ServiceConfig::new(8));
        assert_eq!(engine.session().config().threads, 1);
        // A single worker keeps the session's full pool.
        let engine = Engine::new(make(8), ServiceConfig::new(1));
        assert_eq!(engine.session().config().threads, 8);
    }

    fn sample_query() -> Query {
        Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.5, 1.0).unwrap(),
            50.0,
        )
    }

    /// A store whose reads panic — simulates a bug deep in query execution.
    struct PanickingStore(Arc<MemoryMaskStore>);

    impl masksearch_storage::MaskStore for PanickingStore {
        fn put(&self, id: MaskId, mask: &Mask) -> masksearch_storage::StorageResult<()> {
            self.0.put(id, mask)
        }
        fn get(&self, _id: MaskId) -> masksearch_storage::StorageResult<Mask> {
            panic!("simulated executor bug");
        }
        fn contains(&self, id: MaskId) -> bool {
            self.0.contains(id)
        }
        fn ids(&self) -> Vec<MaskId> {
            self.0.ids()
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn stored_bytes(&self, id: MaskId) -> masksearch_storage::StorageResult<u64> {
            self.0.stored_bytes(id)
        }
        fn total_bytes(&self) -> u64 {
            self.0.total_bytes()
        }
        fn io_stats(&self) -> Arc<masksearch_storage::IoStats> {
            self.0.io_stats()
        }
        fn disk_profile(&self) -> masksearch_storage::DiskProfile {
            self.0.disk_profile()
        }
    }

    #[test]
    fn a_panicking_query_does_not_kill_the_worker() {
        let inner = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        for i in 0..4u64 {
            let mask = Mask::from_fn(16, 16, move |x, y| ((x + y + i as u32) % 10) as f32 / 10.0);
            inner.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(MaskRecord::builder(MaskId::new(i)).shape(16, 16).build());
        }
        let session = Session::new(
            Arc::new(PanickingStore(inner)) as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
                .threads(1)
                .indexing_mode(IndexingMode::Disabled),
        )
        .unwrap();
        // Single worker: if the panic killed it, the second submit would
        // hang forever.
        let engine = Engine::new(session, ServiceConfig::new(1));
        match engine.execute(&sample_query()) {
            // The panic may be rewrapped by the executor's internal thread
            // scope, so only the variant (not the message) is asserted.
            Err(ServiceError::Internal(_)) => {}
            other => panic!("expected Internal error, got {other:?}"),
        }
        // The worker survived and still serves (and fails) further queries.
        assert!(matches!(
            engine.execute(&sample_query()),
            Err(ServiceError::Internal(_))
        ));
        assert_eq!(engine.metrics().failed, 2);
        engine.shutdown();
    }

    #[test]
    fn engine_executes_queries_like_the_session() {
        let reference = test_session(10, IndexingMode::Eager);
        let expected = reference.execute(&sample_query()).unwrap();

        let engine = Engine::new(test_session(10, IndexingMode::Eager), ServiceConfig::new(2));
        let response = engine.execute(&sample_query()).unwrap();
        assert_eq!(response.output.rows, expected.rows);
        assert!(response.exec_time > Duration::ZERO);
        let m = engine.metrics();
        assert_eq!(m.submitted, 1);
        assert_eq!(m.completed, 1);
        engine.shutdown();
    }

    #[test]
    fn sql_path_round_trips() {
        let engine = Engine::new(test_session(10, IndexingMode::Eager), ServiceConfig::new(1));
        let response = engine
            .execute_sql(
                "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, 16, 16), (0.5, 1.0)) > 50",
            )
            .unwrap();
        assert!(!response.output.rows.is_empty());
        assert!(matches!(
            engine.execute_sql("SELECT nonsense"),
            Err(ServiceError::Sql(_))
        ));
        engine.shutdown();
    }

    /// A mask store whose reads block until the gate opens — used to pin a
    /// worker inside a query deterministically.
    struct GatedStore {
        inner: Arc<MemoryMaskStore>,
        gate: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
        /// Signalled as soon as any read has started waiting.
        entered: Arc<(std::sync::Mutex<u64>, std::sync::Condvar)>,
    }

    impl GatedStore {
        fn new(inner: Arc<MemoryMaskStore>) -> Self {
            Self {
                inner,
                gate: Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new())),
                entered: Arc::new((std::sync::Mutex::new(0), std::sync::Condvar::new())),
            }
        }

        fn open_gate(&self) {
            *self.gate.0.lock().unwrap() = true;
            self.gate.1.notify_all();
        }

        fn wait_for_reader(&self) {
            let (lock, cvar) = &*self.entered;
            let mut count = lock.lock().unwrap();
            while *count == 0 {
                count = cvar.wait(count).unwrap();
            }
        }
    }

    impl masksearch_storage::MaskStore for GatedStore {
        fn put(&self, id: MaskId, mask: &Mask) -> masksearch_storage::StorageResult<()> {
            self.inner.put(id, mask)
        }
        fn get(&self, id: MaskId) -> masksearch_storage::StorageResult<Mask> {
            {
                let (lock, cvar) = &*self.entered;
                *lock.lock().unwrap() += 1;
                cvar.notify_all();
            }
            let (lock, cvar) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cvar.wait(open).unwrap();
            }
            drop(open);
            self.inner.get(id)
        }
        fn contains(&self, id: MaskId) -> bool {
            self.inner.contains(id)
        }
        fn ids(&self) -> Vec<MaskId> {
            self.inner.ids()
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn stored_bytes(&self, id: MaskId) -> masksearch_storage::StorageResult<u64> {
            self.inner.stored_bytes(id)
        }
        fn total_bytes(&self) -> u64 {
            self.inner.total_bytes()
        }
        fn io_stats(&self) -> Arc<masksearch_storage::IoStats> {
            self.inner.io_stats()
        }
        fn disk_profile(&self) -> masksearch_storage::DiskProfile {
            self.inner.disk_profile()
        }
    }

    #[test]
    fn sql_dml_flows_through_the_engine() {
        let engine = Engine::new(test_session(4, IndexingMode::Eager), ServiceConfig::new(2));
        // Insert a bright 16x16 mask via SQL.
        let pixels: Vec<String> = (0..256).map(|_| "0.95".to_string()).collect();
        let insert = format!(
            "INSERT INTO masks VALUES (100, 50, 16, 16, ({}))",
            pixels.join(", ")
        );
        let response = engine.execute_statement(&insert).unwrap();
        match response {
            Response::Mutation(m) => {
                assert_eq!(m.outcome.inserted, 1);
                assert_eq!(m.outcome.deleted, 0);
            }
            other => panic!("expected a mutation response, got {other:?}"),
        }
        // The new mask is immediately visible to queries.
        let response = engine
            .execute_sql(
                "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, 16, 16), (0.9, 1.0)) > 200",
            )
            .unwrap();
        assert_eq!(response.output.mask_ids(), vec![MaskId::new(100)]);

        let response = engine
            .execute_statement("DELETE FROM masks WHERE mask_id = 100")
            .unwrap();
        match response {
            Response::Mutation(m) => assert_eq!(m.outcome.deleted, 1),
            other => panic!("expected a mutation response, got {other:?}"),
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.mutations, 2);
        assert_eq!(metrics.masks_inserted, 1);
        assert_eq!(metrics.masks_deleted, 1);
        // A failed delete surfaces as a query error and counts as failed.
        assert!(matches!(
            engine.execute_statement("DELETE FROM masks WHERE mask_id = 100"),
            Err(ServiceError::Query(_))
        ));
        assert_eq!(engine.metrics().failed, 1);
        engine.shutdown();
    }

    #[test]
    fn admission_control_rejects_when_full() {
        // One worker pinned inside a read, depth-1 queue: the third
        // submission must be rejected — deterministically.
        let inner = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        for i in 0..4u64 {
            let mask = Mask::from_fn(16, 16, move |x, y| ((x + y + i as u32) % 10) as f32 / 10.0);
            inner.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(MaskRecord::builder(MaskId::new(i)).shape(16, 16).build());
        }
        let gated = Arc::new(GatedStore::new(inner));
        let session = Session::new(
            Arc::clone(&gated) as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
                .threads(1)
                .indexing_mode(IndexingMode::Disabled),
        )
        .unwrap();
        let engine = Engine::new(session, ServiceConfig::new(1).queue_depth(1));

        let hold = engine.submit(sample_query()).unwrap();
        gated.wait_for_reader(); // the worker is now blocked inside `get`
        let queued = engine.submit(sample_query());
        assert!(queued.is_ok());
        let overflow = engine.submit(sample_query());
        assert!(matches!(overflow, Err(ServiceError::QueueFull { .. })));

        gated.open_gate();
        hold.wait_single().unwrap();
        queued.unwrap().wait_single().unwrap();
        assert_eq!(engine.metrics().rejected, 1);
        engine.shutdown();
    }

    #[test]
    fn queue_deadline_abandons_stale_queries() {
        let engine = Engine::new(
            test_session(8, IndexingMode::Eager),
            ServiceConfig::new(1).default_deadline(Duration::from_nanos(1)),
        );
        // Occupy the worker so the next job waits long enough to expire.
        let first = engine.submit(sample_query()).unwrap();
        let second = engine.submit(sample_query()).unwrap();
        let _ = first.wait_single();
        match second.wait() {
            Err(ServiceError::DeadlineExceeded { .. }) => {}
            Ok(_) => {
                // The worker may have been fast enough; tolerated, but the
                // deadline machinery is separately asserted below.
            }
            Err(other) => panic!("unexpected error {other}"),
        }
        engine.shutdown();
    }

    #[test]
    fn shutdown_fails_pending_work_and_is_idempotent() {
        let engine = Engine::new(test_session(8, IndexingMode::Eager), ServiceConfig::new(1));
        engine.shutdown();
        engine.shutdown();
        assert!(matches!(
            engine.submit(sample_query()),
            Err(ServiceError::ShuttingDown)
        ));
    }

    #[test]
    fn clones_share_the_pool_and_drop_shuts_down() {
        let engine = Engine::new(test_session(10, IndexingMode::Eager), ServiceConfig::new(2));
        let clone = engine.clone();
        let r1 = engine.execute(&sample_query()).unwrap();
        let r2 = clone.execute(&sample_query()).unwrap();
        assert_eq!(r1.output.rows, r2.output.rows);
        assert_eq!(clone.metrics().completed, 2);
        drop(engine);
        // The surviving clone still works.
        assert!(clone.execute(&sample_query()).is_ok());
        drop(clone); // last handle joins the pool
    }

    #[test]
    fn batch_jobs_flow_through_the_pool() {
        let engine = Engine::new(
            test_session(12, IndexingMode::Incremental),
            ServiceConfig::new(2),
        );
        let queries = vec![sample_query(), sample_query()];
        let batch = engine.execute_batch(queries).unwrap();
        assert_eq!(batch.outputs.len(), 2);
        assert_eq!(batch.outputs[0].rows, batch.outputs[1].rows);
        assert_eq!(engine.metrics().batches, 1);
        engine.shutdown();
    }
}
