//! # masksearch-service
//!
//! A concurrent query-serving subsystem over the MaskSearch CHI engine: the
//! layer that turns the single-caller [`Session`](masksearch_query::Session)
//! of `masksearch-query` into a long-lived server handling many interactive
//! clients — the usage the MaskSearch demonstration describes (ML-workflow
//! users exploring one shared mask database).
//!
//! ## Architecture
//!
//! ```text
//!   TCP clients (masksearch-sql dialect, line protocol)
//!        │ 1 thread per connection
//!        ▼
//!   ┌─────────┐   submit    ┌──────────────────┐   pop    ┌───────────┐
//!   │ Server   │ ──────────▶ │ bounded JobQueue │ ───────▶ │ worker    │
//!   └─────────┘   (admission │ + deadlines      │          │ pool      │
//!   in-process    control)   └──────────────────┘          └────┬──────┘
//!   callers via                                                 │ &Session
//!   Engine::execute / execute_batch                             ▼
//!                                              ┌───────────────────────────┐
//!                                              │ shared Session            │
//!                                              │  CHI store · mask cache   │
//!                                              │  catalog · mask store     │
//!                                              └───────────────────────────┘
//! ```
//!
//! * [`Engine`] — a cloneable handle wrapping an `Arc<Session>`; submits
//!   jobs, enforces admission control and deadlines, and records metrics.
//! * [`queue::JobQueue`] — the bounded MPMC queue between submitters and the
//!   worker pool.
//! * [`batch`] — multi-query execution that shares CHI bound computation and
//!   mask loads across a group of queries.
//! * [`ServiceMetrics`] — QPS, latency histograms, filter rate, cache hit
//!   rate.
//! * [`Server`] / [`Client`] — a minimal line-oriented TCP front end over
//!   `std::net` speaking the `masksearch-sql` dialect.
//!
//! ## Quickstart
//!
//! ```
//! use masksearch_core::{Mask, MaskId, MaskRecord};
//! use masksearch_index::ChiConfig;
//! use masksearch_query::{IndexingMode, Session, SessionConfig};
//! use masksearch_service::{Client, Engine, Server, ServiceConfig};
//! use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
//! use std::sync::Arc;
//!
//! // A tiny database.
//! let store = MemoryMaskStore::for_tests();
//! let mut catalog = Catalog::new();
//! for i in 0..4u64 {
//!     let mask = Mask::from_fn(16, 16, move |x, _| ((x + i as u32) % 8) as f32 / 8.0);
//!     store.put(MaskId::new(i), &mask).unwrap();
//!     catalog.insert(MaskRecord::builder(MaskId::new(i)).shape(16, 16).build());
//! }
//! let session = Session::new(
//!     Arc::new(store),
//!     catalog,
//!     SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap()).indexing_mode(IndexingMode::Eager),
//! )
//! .unwrap();
//!
//! // Serve it.
//! let engine = Engine::new(session, ServiceConfig::new(2));
//! let server = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
//!
//! // Query it over TCP.
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let response = client
//!     .query("SELECT mask_id FROM masks WHERE CP(mask, (0, 0, 16, 16), (0.5, 1.0)) > 0")
//!     .unwrap();
//! assert_eq!(response.rows.len(), 4);
//! client.quit().unwrap();
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod client;
pub mod config;
pub mod dedup;
pub mod engine;
pub mod error;
pub mod job;
pub mod metrics;
pub mod mux;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod server;

pub use batch::{BatchOutput, BatchStats};
pub use client::{Client, MonitorFrame};
pub use config::{AdmissionPolicy, ServiceConfig};
pub use dedup::{Admission, MutationDedup};
pub use engine::Engine;
pub use error::{ServiceError, ServiceResult};
pub use job::{MutationResponse, PartialResponse, QueryResponse, Request, Response, Ticket};
pub use metrics::{LatencyHistogram, LatencySnapshot, MetricsSnapshot, ServiceMetrics};
pub use mux::{MuxClient, MuxPending};
pub use pool::{ClientPool, PooledClient};
pub use protocol::{ClientRequest, WireResponse, WireSummary, PROTOCOL_VERSION};
pub use server::{Server, ServerHandle};
