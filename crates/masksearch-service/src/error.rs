//! Service-level errors: everything that can go wrong between a query
//! arriving at the service and its result leaving it.

use masksearch_query::QueryError;
use std::time::Duration;

/// Result alias for service operations.
pub type ServiceResult<T> = Result<T, ServiceError>;

/// An error produced by the serving layer (as opposed to query execution
/// itself, which is wrapped as [`ServiceError::Query`]).
#[derive(Debug)]
pub enum ServiceError {
    /// The job queue was at capacity and the admission policy rejected the
    /// query instead of blocking.
    QueueFull {
        /// Configured queue depth at the time of rejection.
        depth: usize,
    },
    /// The query's deadline expired before a worker could finish it.
    DeadlineExceeded {
        /// How long the query had been in the system when it was abandoned.
        waited: Duration,
    },
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
    /// Query execution failed.
    Query(QueryError),
    /// A SQL statement failed to parse or lower.
    Sql(String),
    /// A network or protocol failure on the TCP front end.
    Io(String),
    /// The server sent a response the client could not interpret.
    Protocol(String),
    /// The server answered with an `ERR` frame: the request failed on the
    /// peer, but the frame was well-formed and fully consumed — the
    /// connection remains usable.
    Remote(String),
    /// Query execution panicked inside a worker (the panic was contained and
    /// the worker kept running).
    Internal(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { depth } => {
                write!(
                    f,
                    "job queue full ({depth} queued queries); admission denied"
                )
            }
            Self::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after {waited:?}")
            }
            Self::ShuttingDown => write!(f, "engine is shutting down"),
            Self::Query(e) => write!(f, "query failed: {e}"),
            Self::Sql(msg) => write!(f, "SQL error: {msg}"),
            Self::Io(msg) => write!(f, "I/O error: {msg}"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
            Self::Remote(msg) => write!(f, "server error: {msg}"),
            Self::Internal(msg) => write!(f, "internal error: query panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> Self {
        Self::Query(e)
    }
}

impl From<masksearch_sql::SqlError> for ServiceError {
    fn from(e: masksearch_sql::SqlError) -> Self {
        Self::Sql(e.to_string())
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

impl ServiceError {
    /// A stable, single-line rendering used by the wire protocol.
    pub fn wire_message(&self) -> String {
        self.to_string().replace(['\r', '\n'], " ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_single_line_on_the_wire() {
        let e = ServiceError::Sql("unexpected\ntoken".to_string());
        assert!(!e.wire_message().contains('\n'));
        let e = ServiceError::QueueFull { depth: 8 };
        assert!(e.wire_message().contains("8"));
    }

    #[test]
    fn query_errors_convert() {
        let q = QueryError::UnknownMask(masksearch_core::MaskId::new(7));
        let s: ServiceError = q.into();
        assert!(matches!(s, ServiceError::Query(_)));
        assert!(std::error::Error::source(&s).is_some());
    }
}
