//! The line-oriented wire protocol of the TCP front end.
//!
//! Requests are single lines of UTF-8. A line equal to `PING`, `STATS`, or
//! `QUIT` (case-insensitive) is a control command; any other non-empty line
//! is a SQL statement in the `masksearch-sql` dialect.
//!
//! Every request produces one response *frame*: a sequence of lines
//! terminated by `END`.
//!
//! ```text
//! >> SELECT mask_id FROM masks WHERE CP(mask, (0,0,16,16), (0.5,1.0)) > 50
//! << OK 2 candidates=10 pruned=7 verified=1 loaded=1 wall_us=184
//! << mask 3
//! << mask 7
//! << END
//! >> PING
//! << PONG v2
//! << END
//! >> garbage
//! << ERR SQL error: ...
//! << END
//! ```
//!
//! Row values (when a query computes them) are appended to the row line
//! using Rust's shortest round-trip float formatting, so a value parsed back
//! by the client is bit-identical to the value the server computed.

use crate::error::{ServiceError, ServiceResult};
use crate::job::{MutationResponse, QueryResponse};
use crate::metrics::MetricsSnapshot;
use masksearch_core::{ImageId, MaskId};
use masksearch_query::{QueryOutput, ResultRow, RowKey};

use std::io::{BufRead, Write};

/// Terminates every response frame.
pub const END_MARKER: &str = "END";

/// Version of the wire protocol spoken by this build. Carried in the `PONG`
/// handshake reply (`PONG v<N>`); peers with a different version reject the
/// connection with a clear error instead of mis-parsing frames.
///
/// History: v1 — the original PR-1 protocol (bare `PONG`); v2 — versioned
/// handshake, `PARTIAL K=<n>` bounded top-k with `bound=` summaries,
/// `LOOKUP`, and saturation fields in `STATS`; v3 — `TOKEN <id> <sql>`
/// deduplicated mutations (exactly-once resend after transport errors),
/// self-join pair queries in the SQL dialect, and `deduped=` /
/// `pairs_bound=` in `STATS`; v4 — observability: `EXPLAIN [ANALYZE]`
/// statements answered with `PLAN <n>` frames, `METRICS` returning a
/// Prometheus text exposition, and `STATS PROFILES [n]` returning recent
/// traced query profiles; v5 — temporal observability: `METRICS WINDOW
/// <secs>` windowed gauges, `RECORD START/STOP/STATUS` flight-recorder
/// control answered with `RECORD` control frames, and `MONITOR <frames>
/// [<interval_ms>]` streaming counted `DELTA <n>` metric-delta frames.
/// Within v5 the query planner added `planner_*` counters to `STATS` —
/// additive key/value tokens, so no version bump was needed; v6 —
/// multiplexing: a request line may be prefixed with a `@<id>` tag, and the
/// server answers it with a frame whose header line carries the same
/// `@<id>` prefix. Tagged requests may be pipelined — many in flight on one
/// connection, answered in completion order — while untagged requests keep
/// the v5 one-at-a-time FIFO contract. `MONITOR` subscriptions stream
/// multiple frames and therefore stay untagged-only; v7 — indexes and
/// transactions: mutation `OK` headers carry `updated=` (in-place
/// re-masking), `STATS` grows `updated` / `index_probes` / `index_rows` /
/// `planner_index_on` / `planner_index_off`, `LOOKUP *` answers with every
/// mask id the server holds (cluster owner-map seeding), and connections
/// accept interactive `BEGIN` / `COMMIT` / `ROLLBACK` plus one-line
/// `BEGIN; …; COMMIT` scripts applied as a single storage commit.
pub const PROTOCOL_VERSION: u32 = 7;

/// Default number of profiles returned by a bare `STATS PROFILES`.
pub const DEFAULT_PROFILES: usize = 16;

/// Default delta interval of a `MONITOR` subscription in milliseconds.
pub const DEFAULT_MONITOR_INTERVAL_MS: u64 = 1000;

/// Upper bound on frames per `MONITOR` subscription; a subscription is one
/// blocking request on its connection, so its span must be bounded.
pub const MAX_MONITOR_FRAMES: u32 = 3600;

/// A parsed `RECORD <cmd>` flight-recorder control command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordControl {
    /// Start (or resume) capturing. With a path, record there; without, the
    /// server uses its configured recording path.
    Start(Option<String>),
    /// Flush and stop capturing.
    Stop,
    /// Report recorder state without changing it.
    Status,
}

/// A parsed client request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientRequest {
    /// Liveness check and version handshake.
    Ping,
    /// Server metrics summary.
    Stats,
    /// Prometheus text exposition of every server metric.
    Metrics,
    /// Windowed time-series gauges over the last `secs` seconds
    /// (`METRICS WINDOW <secs>`), answered with a `METRICS` frame.
    MetricsWindow(u64),
    /// Flight-recorder control (`RECORD START [<path>] | STOP | STATUS`),
    /// answered with a `RECORD` control frame.
    Record(RecordControl),
    /// Subscribe this connection to `frames` periodic metric-delta frames
    /// (`MONITOR <frames> [<interval_ms>]`), each a counted `DELTA` frame.
    Monitor {
        /// Number of delta frames to stream before the request completes.
        frames: u32,
        /// Milliseconds between frames.
        interval_ms: u64,
    },
    /// The most recent `n` traced query profiles (`STATS PROFILES [n]`).
    Profiles(usize),
    /// Close the connection.
    Quit,
    /// Which of the given mask ids this server holds (cluster routing).
    Lookup(Vec<MaskId>),
    /// Every mask id this server holds (`LOOKUP *`) — how a cluster
    /// coordinator seeds its mask-id → shard owner map in one round trip.
    LookupAll,
    /// A ranked SQL statement executed in partial (cluster-shard) mode with
    /// the per-shard `k` override.
    Partial {
        /// Per-shard `k` replacing the statement's own `LIMIT`.
        k: usize,
        /// The SQL statement.
        sql: String,
    },
    /// A SQL statement carrying a client-chosen deduplication token: if a
    /// mutation with this token already applied, the server replays the
    /// recorded outcome instead of re-applying — making a post-transport-
    /// error resend exactly-once.
    Tokened {
        /// The client's per-request token.
        token: u64,
        /// The SQL statement.
        sql: String,
    },
    /// A SQL statement to compile and execute.
    Sql(String),
}

impl ClientRequest {
    /// Classifies one request line.
    pub fn parse(line: &str) -> Option<Self> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return None;
        }
        let upper = trimmed.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("LOOKUP ") {
            if rest.trim() == "*" {
                return Some(Self::LookupAll);
            }
            let ids: Option<Vec<MaskId>> = rest
                .split_ascii_whitespace()
                .map(|t| t.parse::<u64>().ok().map(MaskId::new))
                .collect();
            // A malformed LOOKUP falls through to the SQL path, which
            // produces a descriptive ERR frame.
            if let Some(ids) = ids {
                return Some(Self::Lookup(ids));
            }
        }
        if upper.starts_with("TOKEN ") {
            let rest = trimmed[5..].trim_start();
            if let Some(tok) = rest.split_ascii_whitespace().next() {
                if let Ok(token) = tok.parse::<u64>() {
                    let sql = rest[tok.len()..].trim_start().to_string();
                    if !sql.is_empty() {
                        return Some(Self::Tokened { token, sql });
                    }
                }
            }
        }
        if let Some(rest) = upper.strip_prefix("METRICS WINDOW") {
            if let Ok(secs) = rest.trim().parse::<u64>() {
                if secs > 0 {
                    return Some(Self::MetricsWindow(secs));
                }
            }
            // Malformed window: fall through to the SQL path (-> ERR frame).
        }
        if let Some(rest) = upper.strip_prefix("RECORD ") {
            let cmd = rest.trim();
            if cmd == "STOP" {
                return Some(Self::Record(RecordControl::Stop));
            }
            if cmd == "STATUS" {
                return Some(Self::Record(RecordControl::Status));
            }
            if cmd == "START" {
                return Some(Self::Record(RecordControl::Start(None)));
            }
            if cmd.starts_with("START ") {
                // Take the path from the original line: paths are
                // case-sensitive.
                let path = trimmed[trimmed.len() - rest.len()..].trim()["START ".len()..]
                    .trim()
                    .to_string();
                if !path.is_empty() {
                    return Some(Self::Record(RecordControl::Start(Some(path))));
                }
            }
            // Unknown subcommand: fall through to the SQL path (-> ERR).
        }
        if let Some(rest) = upper.strip_prefix("MONITOR") {
            let mut parts = rest.split_ascii_whitespace();
            let frames = parts.next().map(|t| t.parse::<u32>());
            let interval = parts.next().map(|t| t.parse::<u64>());
            match (frames, interval, parts.next()) {
                (None, None, None) => {
                    return Some(Self::Monitor {
                        frames: 1,
                        interval_ms: DEFAULT_MONITOR_INTERVAL_MS,
                    });
                }
                (Some(Ok(frames)), None, None) if frames > 0 => {
                    return Some(Self::Monitor {
                        frames: frames.min(MAX_MONITOR_FRAMES),
                        interval_ms: DEFAULT_MONITOR_INTERVAL_MS,
                    });
                }
                (Some(Ok(frames)), Some(Ok(interval_ms)), None) if frames > 0 => {
                    return Some(Self::Monitor {
                        frames: frames.min(MAX_MONITOR_FRAMES),
                        interval_ms,
                    });
                }
                // Malformed: fall through to the SQL path (-> ERR frame).
                _ => {}
            }
        }
        if let Some(rest) = upper.strip_prefix("STATS PROFILES") {
            let rest = rest.trim();
            if rest.is_empty() {
                return Some(Self::Profiles(DEFAULT_PROFILES));
            }
            if let Ok(n) = rest.parse::<usize>() {
                return Some(Self::Profiles(n));
            }
            // Malformed count: fall through to the SQL path (-> ERR frame).
        }
        if upper.starts_with("PARTIAL ") {
            let rest = trimmed[7..].trim_start();
            if let Some(kv) = rest.split_ascii_whitespace().next() {
                if let Some(k) = kv
                    .strip_prefix("K=")
                    .or_else(|| kv.strip_prefix("k="))
                    .and_then(|v| v.parse::<usize>().ok())
                {
                    let sql = rest[kv.len()..].trim_start().to_string();
                    if !sql.is_empty() {
                        return Some(Self::Partial { k, sql });
                    }
                }
            }
        }
        Some(match upper.as_str() {
            "PING" => Self::Ping,
            "STATS" => Self::Stats,
            "METRICS" => Self::Metrics,
            "QUIT" => Self::Quit,
            // A LOOKUP of zero ids is a valid (empty) question.
            "LOOKUP" => Self::Lookup(Vec::new()),
            _ => Self::Sql(trimmed.to_string()),
        })
    }
}

/// Encodes one result row as a protocol line.
pub fn encode_row(row: &ResultRow) -> String {
    let mut line = String::new();
    encode_row_into(&mut line, row);
    line
}

/// Appends [`encode_row`]'s line for `row` to `out` (no trailing newline).
/// The allocation-free form the response digests use per row.
fn encode_row_into(out: &mut String, row: &ResultRow) {
    use std::fmt::Write as _;
    let (kind, id) = match row.key {
        RowKey::Mask(id) => ("mask", id.raw()),
        RowKey::Image(id) => ("image", id.raw()),
    };
    match row.value {
        Some(v) => write!(out, "{kind} {id} {v}").expect("write to string"),
        None => write!(out, "{kind} {id}").expect("write to string"),
    }
}

/// Decodes a protocol line produced by [`encode_row`].
pub fn parse_row(line: &str) -> ServiceResult<ResultRow> {
    let mut parts = line.split_ascii_whitespace();
    let kind = parts
        .next()
        .ok_or_else(|| ServiceError::Protocol("empty row line".to_string()))?;
    let id: u64 = parts
        .next()
        .ok_or_else(|| ServiceError::Protocol(format!("row line missing id: {line:?}")))?
        .parse()
        .map_err(|_| ServiceError::Protocol(format!("bad row id in {line:?}")))?;
    let value = match parts.next() {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| ServiceError::Protocol(format!("bad row value in {line:?}")))?,
        ),
        None => None,
    };
    match kind {
        "mask" => Ok(ResultRow {
            key: RowKey::Mask(MaskId::new(id)),
            value,
        }),
        "image" => Ok(ResultRow {
            key: RowKey::Image(ImageId::new(id)),
            value,
        }),
        other => Err(ServiceError::Protocol(format!(
            "unknown row kind {other:?}"
        ))),
    }
}

/// Writes a successful query response frame.
pub fn write_response<W: Write>(w: &mut W, response: &QueryResponse) -> std::io::Result<()> {
    write_response_with_bound(w, response, None)
}

/// Writes a query response frame carrying a partial-execution `bound=`
/// summary token (the shard's k-th value; see `PARTIAL K=<n>` requests).
pub fn write_response_with_bound<W: Write>(
    w: &mut W,
    response: &QueryResponse,
    bound: Option<f64>,
) -> std::io::Result<()> {
    let s = &response.output.stats;
    write!(
        w,
        "OK {} candidates={} pruned={} verified={} loaded={} wall_us={}",
        response.output.rows.len(),
        s.candidates,
        s.pruned,
        s.verified,
        s.masks_loaded,
        response.exec_time.as_micros(),
    )?;
    if let Some(bound) = bound {
        write!(w, " bound={bound}")?;
    }
    writeln!(w)?;
    for row in &response.output.rows {
        writeln!(w, "{}", encode_row(row))?;
    }
    writeln!(w, "{END_MARKER}")
}

/// Writes a `LOOKUP` response frame: one mask row per id this server holds.
pub fn write_lookup_response<W: Write>(w: &mut W, present: &[MaskId]) -> std::io::Result<()> {
    writeln!(w, "OK {}", present.len())?;
    for id in present {
        writeln!(w, "mask {}", id.raw())?;
    }
    writeln!(w, "{END_MARKER}")
}

/// Writes a successful mutation response frame: an `OK` header with zero
/// rows and `inserted=` / `deleted=` / `updated=` counters, so query-only
/// clients parse it as an empty result while write-aware clients read the
/// counts.
pub fn write_mutation_response<W: Write>(
    w: &mut W,
    response: &MutationResponse,
) -> std::io::Result<()> {
    writeln!(
        w,
        "OK 0 inserted={} deleted={} updated={} wall_us={}",
        response.outcome.inserted,
        response.outcome.deleted,
        response.outcome.updated,
        response.exec_time.as_micros(),
    )?;
    writeln!(w, "{END_MARKER}")
}

/// Writes a plan frame (the answer to an `EXPLAIN [ANALYZE]` statement):
/// a `PLAN <n>` header followed by the n rendered plan lines.
pub fn write_plan_response<W: Write>(w: &mut W, lines: &[String]) -> std::io::Result<()> {
    write_text_frame(w, "PLAN", lines.iter().map(String::as_str))
}

/// Writes a `METRICS` frame: a `METRICS <n>` header followed by the n lines
/// of a Prometheus text exposition.
pub fn write_metrics_response<W: Write>(w: &mut W, exposition: &str) -> std::io::Result<()> {
    write_text_frame(w, "METRICS", exposition.lines())
}

/// Writes a `STATS PROFILES` frame: a `PROFILES <n>` header followed by the
/// n rendered profile lines (each profile is a `profile seq=..` header line
/// with its span tree indented under it).
pub fn write_profiles_response<W: Write>(w: &mut W, lines: &[String]) -> std::io::Result<()> {
    write_text_frame(w, "PROFILES", lines.iter().map(String::as_str))
}

/// Writes one `MONITOR` delta frame: a counted `DELTA <n>` frame whose
/// payload is a `seq=<k>` line followed by `key=value` delta lines.
pub fn write_delta_frame<W: Write>(
    w: &mut W,
    seq: u64,
    deltas: &[(&str, u64)],
) -> std::io::Result<()> {
    let lines: Vec<String> = std::iter::once(format!("seq={seq}"))
        .chain(deltas.iter().map(|(k, v)| format!("{k}={v}")))
        .collect();
    write_text_frame(w, "DELTA", lines.iter().map(String::as_str))
}

/// Parses one `DELTA` frame payload back into its sequence number and
/// `(key, delta)` pairs. Unknown or malformed lines are skipped.
pub fn parse_delta_lines(lines: &[String]) -> (u64, Vec<(String, u64)>) {
    let mut seq = 0;
    let mut deltas = Vec::with_capacity(lines.len().saturating_sub(1));
    for line in lines {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        if key == "seq" {
            seq = value;
        } else {
            deltas.push((key.to_string(), value));
        }
    }
    (seq, deltas)
}

/// Writes a `RECORD` control frame answering a recorder-control request.
pub fn write_record_status<W: Write>(
    w: &mut W,
    status: &masksearch_obs::RecorderStatus,
) -> std::io::Result<()> {
    writeln!(
        w,
        "RECORD active={} path={} records={} bytes={} dropped={}",
        u8::from(status.active),
        status
            .path
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "-".to_string()),
        status.records,
        status.bytes,
        status.dropped,
    )?;
    writeln!(w, "{END_MARKER}")
}

/// Writes a counted raw-text frame: `<kind> <n>`, n lines verbatim, `END`.
/// The count (not a sentinel) delimits the payload, so payload lines may be
/// anything — including indented span trees and `#`-prefixed comments.
fn write_text_frame<'a, W: Write>(
    w: &mut W,
    kind: &str,
    lines: impl Iterator<Item = &'a str> + Clone,
) -> std::io::Result<()> {
    writeln!(w, "{kind} {}", lines.clone().count())?;
    for line in lines {
        writeln!(w, "{line}")?;
    }
    writeln!(w, "{END_MARKER}")
}

/// Writes an error frame.
pub fn write_error<W: Write>(w: &mut W, error: &ServiceError) -> std::io::Result<()> {
    writeln!(w, "ERR {}", error.wire_message())?;
    writeln!(w, "{END_MARKER}")
}

/// Writes a `PONG` frame carrying the protocol version (`PONG v<N>`).
pub fn write_pong<W: Write>(w: &mut W) -> std::io::Result<()> {
    writeln!(w, "PONG v{PROTOCOL_VERSION}")?;
    writeln!(w, "{END_MARKER}")
}

/// Extracts the protocol version from a `PONG` control line. A bare `PONG`
/// (the pre-versioning protocol) reports version 1.
pub fn pong_version(line: &str) -> Option<u32> {
    let rest = line.strip_prefix("PONG")?;
    let rest = rest.trim();
    if rest.is_empty() {
        return Some(1);
    }
    rest.strip_prefix('v').and_then(|v| v.parse().ok())
}

/// Writes a server-metrics frame.
///
/// Every aggregatable key is spelled via [`masksearch_obs::keys`], the same
/// registry the cluster coordinator's sum/max merge reads — renaming a key
/// there changes writer and aggregator together.
pub fn write_stats<W: Write>(w: &mut W, m: &MetricsSnapshot) -> std::io::Result<()> {
    use masksearch_obs::keys as k;
    use std::fmt::Write as _;
    let mut line = format!("STATS {}={:.3}", k::QPS, m.qps);
    for (key, value) in [
        (k::COMPLETED, m.completed),
        (k::FAILED, m.failed),
        (k::REJECTED, m.rejected),
        (k::DEADLINE_EXPIRED, m.deadline_expired),
    ] {
        let _ = write!(line, " {key}={value}");
    }
    let _ = write!(
        line,
        " {}={} {}={} mean_us={} filter_rate={:.6} cache_hit_rate={:.6} uptime_ms={}",
        k::P50_US,
        m.latency.p50().as_micros(),
        k::P99_US,
        m.latency.p99().as_micros(),
        m.latency.mean().as_micros(),
        m.filter_rate,
        m.cache_hit_rate,
        m.uptime.as_millis(),
    );
    for (key, value) in [
        (k::MUTATIONS, m.mutations),
        (k::INSERTED, m.masks_inserted),
        (k::DELETED, m.masks_deleted),
        (k::UPDATED, m.masks_updated),
        (k::DEDUPED, m.mutations_deduped),
        (k::WAL_BYTES, m.ingest.wal_bytes),
        (k::CHECKPOINTS, m.ingest.checkpoints),
        (k::COMMITS, m.ingest.commits),
        (k::TILES_PRUNED, m.tiles_pruned),
        (k::TILES_HIST, m.tiles_hist),
        (k::TILES_SCANNED, m.tiles_scanned),
        (k::PAIRS_BOUND, m.pairs_bound),
        (k::PLANNER_KERNEL_ON, m.planner_kernel_on),
        (k::PLANNER_KERNEL_OFF, m.planner_kernel_off),
        (k::PLANNER_BOUNDS_SKIPPED, m.planner_bounds_skipped),
        (k::PLANNER_REORDERS, m.planner_reorders),
        (k::INDEX_PROBES, m.index_probes),
        (k::INDEX_ROWS, m.index_rows),
        (k::PLANNER_INDEX_ON, m.planner_index_on),
        (k::PLANNER_INDEX_OFF, m.planner_index_off),
        (k::ACTIVE_CONNECTIONS, m.active_connections),
        (k::QUEUE_DEPTH, m.queue_depth),
    ] {
        let _ = write!(line, " {key}={value}");
    }
    writeln!(w, "{line}")?;
    writeln!(w, "{END_MARKER}")
}

/// Summary line of an `OK` frame, as parsed back by the client.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WireSummary {
    /// Declared number of rows in the frame.
    pub rows: u64,
    /// `QueryStats::candidates` on the server.
    pub candidates: u64,
    /// `QueryStats::pruned` on the server.
    pub pruned: u64,
    /// `QueryStats::verified` on the server.
    pub verified: u64,
    /// `QueryStats::masks_loaded` on the server.
    pub loaded: u64,
    /// Masks inserted, when the frame answers a write statement.
    pub inserted: u64,
    /// Masks deleted, when the frame answers a write statement.
    pub deleted: u64,
    /// Masks re-masked in place, when the frame answers a write statement.
    pub updated: u64,
    /// Server-side execution time in microseconds.
    pub wall_us: u64,
    /// The shard's k-th value, when the frame answers a `PARTIAL K=<n>`
    /// request and candidates beyond the returned rows remain on the shard.
    pub bound: Option<f64>,
}

/// A parsed `OK` frame.
#[derive(Debug, Clone, Default)]
pub struct WireResponse {
    /// Result rows in server order.
    pub rows: Vec<ResultRow>,
    /// Parsed summary line.
    pub summary: WireSummary,
}

impl WireResponse {
    /// Mask ids of mask-keyed rows, in order (mirror of
    /// [`QueryOutput::mask_ids`]).
    pub fn mask_ids(&self) -> Vec<MaskId> {
        self.rows
            .iter()
            .filter_map(|r| match r.key {
                RowKey::Mask(id) => Some(id),
                RowKey::Image(_) => None,
            })
            .collect()
    }
}

fn parse_kv(token: &str, key: &str) -> ServiceResult<u64> {
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ServiceError::Protocol(format!("expected {key}=<n>, got {token:?}")))
}

/// Splits a `@<id>`-tagged line into its request id and the rest of the
/// line. Returns `None` when the line carries no well-formed tag — such a
/// line is an ordinary untagged request (or frame header) and keeps its v5
/// FIFO semantics, so a malformed tag degrades to an error *frame* rather
/// than a poisoned connection.
pub fn parse_tag(line: &str) -> Option<(u64, &str)> {
    let rest = line.strip_prefix('@')?;
    let (id, rest) = rest.split_once(' ')?;
    if id.is_empty() || !id.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((id.parse().ok()?, rest))
}

/// Reads one response frame, peeling an optional `@<id>` multiplexing tag
/// from its header line.
///
/// The outer `Err` is a *transport or framing* failure: the stream is no
/// longer at a frame boundary and the connection must be torn down. The
/// inner result attributes a complete frame to its tag — `Err` there is
/// always [`ServiceError::Remote`] (a well-formed `ERR` frame), which a
/// multiplexing reader routes to the tagged caller instead of killing the
/// connection.
pub fn read_tagged_frame<R: BufRead>(
    reader: &mut R,
) -> ServiceResult<(Option<u64>, ServiceResult<Frame>)> {
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(ServiceError::Io("connection closed mid-frame".to_string()));
    }
    let header = header.trim_end();
    let (tag, header) = match parse_tag(header) {
        Some((id, rest)) => (Some(id), rest.to_string()),
        None => (None, header.to_string()),
    };
    match read_frame_body(&header, reader) {
        Ok(frame) => Ok((tag, Ok(frame))),
        Err(err @ ServiceError::Remote(_)) => Ok((tag, Err(err))),
        Err(fatal) => Err(fatal),
    }
}

/// Reads one response frame (all lines up to `END`) and interprets it.
///
/// Returns the frame's payload. `ERR` frames become `Err(..)`; `PONG` and
/// `STATS` frames are returned as raw lines in [`Frame::Control`]. A
/// `@<id>`-tagged frame is a protocol error here — callers expecting tags
/// use [`read_tagged_frame`].
pub fn read_frame<R: BufRead>(reader: &mut R) -> ServiceResult<Frame> {
    match read_tagged_frame(reader)? {
        (None, result) => result,
        (Some(id), _) => Err(ServiceError::Protocol(format!(
            "unexpected @{id}-tagged frame on an untagged stream"
        ))),
    }
}

/// Interprets one frame whose (tag-stripped) header line has already been
/// read, consuming the frame's remaining lines from `reader`.
fn read_frame_body<R: BufRead>(header: &str, reader: &mut R) -> ServiceResult<Frame> {
    if let Some(msg) = header.strip_prefix("ERR ") {
        // Consume the END line: the frame is complete, so the connection
        // stays at a clean boundary and the error is a *remote* failure.
        expect_end(reader)?;
        return Err(ServiceError::Remote(msg.to_string()));
    }
    if header.starts_with("PONG") || header.starts_with("STATS ") || header.starts_with("RECORD ") {
        expect_end(reader)?;
        return Ok(Frame::Control(header.to_string()));
    }
    for (kind, make) in [
        ("PLAN", Frame::Plan as fn(Vec<String>) -> Frame),
        ("METRICS", Frame::Metrics as fn(Vec<String>) -> Frame),
        ("PROFILES", Frame::Profiles as fn(Vec<String>) -> Frame),
        ("DELTA", Frame::Delta as fn(Vec<String>) -> Frame),
    ] {
        if let Some(count) = header
            .strip_prefix(kind)
            .and_then(|rest| rest.strip_prefix(' '))
        {
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| ServiceError::Protocol(format!("bad line count in {header:?}")))?;
            return Ok(make(read_raw_lines(reader, count)?));
        }
    }
    let mut tokens = header.split_ascii_whitespace();
    match tokens.next() {
        Some("OK") => {}
        other => {
            return Err(ServiceError::Protocol(format!(
                "unexpected frame header {other:?}"
            )))
        }
    }
    let rows: u64 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ServiceError::Protocol("OK header missing row count".to_string()))?;
    let mut summary = WireSummary {
        rows,
        ..Default::default()
    };
    for token in tokens {
        if let Ok(v) = parse_kv(token, "candidates") {
            summary.candidates = v;
        } else if let Ok(v) = parse_kv(token, "pruned") {
            summary.pruned = v;
        } else if let Ok(v) = parse_kv(token, "verified") {
            summary.verified = v;
        } else if let Ok(v) = parse_kv(token, "loaded") {
            summary.loaded = v;
        } else if let Ok(v) = parse_kv(token, "inserted") {
            summary.inserted = v;
        } else if let Ok(v) = parse_kv(token, "deleted") {
            summary.deleted = v;
        } else if let Ok(v) = parse_kv(token, "updated") {
            summary.updated = v;
        } else if let Ok(v) = parse_kv(token, "wall_us") {
            summary.wall_us = v;
        } else if let Some(v) = token
            .strip_prefix("bound=")
            .and_then(|v| v.parse::<f64>().ok())
        {
            summary.bound = Some(v);
        }
    }
    // Cap the pre-allocation: the count is wire data and must not let a
    // corrupt or hostile header drive an unbounded allocation.
    let mut parsed_rows = Vec::with_capacity(rows.min(1024) as usize);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ServiceError::Io("connection closed mid-frame".to_string()));
        }
        let line = line.trim_end();
        if line == END_MARKER {
            break;
        }
        parsed_rows.push(parse_row(line)?);
    }
    if parsed_rows.len() as u64 != rows {
        return Err(ServiceError::Protocol(format!(
            "frame declared {rows} rows but carried {}",
            parsed_rows.len()
        )));
    }
    Ok(Frame::Rows(WireResponse {
        rows: parsed_rows,
        summary,
    }))
}

/// Reads exactly `count` verbatim payload lines followed by the `END`
/// marker (the counted-frame body of `PLAN` / `METRICS` / `PROFILES`).
fn read_raw_lines<R: BufRead>(reader: &mut R, count: usize) -> ServiceResult<Vec<String>> {
    // Cap the pre-allocation: the count is wire data.
    let mut lines = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ServiceError::Io("connection closed mid-frame".to_string()));
        }
        lines.push(line.trim_end_matches(['\r', '\n']).to_string());
    }
    expect_end(reader)?;
    Ok(lines)
}

fn expect_end<R: BufRead>(reader: &mut R) -> ServiceResult<()> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ServiceError::Io("connection closed mid-frame".to_string()));
    }
    if line.trim_end() == END_MARKER {
        Ok(())
    } else {
        Err(ServiceError::Protocol(format!(
            "expected {END_MARKER}, got {:?}",
            line.trim_end()
        )))
    }
}

/// One parsed response frame.
#[derive(Debug)]
pub enum Frame {
    /// An `OK` frame with rows.
    Rows(WireResponse),
    /// A `PONG`, `STATS`, or `RECORD` control frame (raw first line).
    Control(String),
    /// A `PLAN` frame: rendered plan-tree lines of an `EXPLAIN [ANALYZE]`.
    Plan(Vec<String>),
    /// A `METRICS` frame: Prometheus text-exposition lines.
    Metrics(Vec<String>),
    /// A `PROFILES` frame: rendered recent query profiles.
    Profiles(Vec<String>),
    /// A `DELTA` frame: one `MONITOR` metric-delta sample
    /// (`seq=<k>` then `key=value` lines).
    Delta(Vec<String>),
}

/// Round-trip helper: renders a [`QueryOutput`]'s rows as wire lines.
pub fn encode_rows(output: &QueryOutput) -> Vec<String> {
    output.rows.iter().map(encode_row).collect()
}

// ---------------------------------------------------------------------------
// Response digests for the flight recorder.
//
// The recorder stores an FNV-1a digest of each response with wall time
// excluded, and the replay harness recomputes the same digest from the
// frames it reads back. The canonical form below is shared by both sides;
// because row values use shortest round-trip float formatting, a value
// parsed by the client re-encodes to the identical bytes the server wrote.
// ---------------------------------------------------------------------------

fn digest_ok_frame<'a>(
    rows: u64,
    stats: [u64; 7],
    bound: Option<f64>,
    row_iter: impl Iterator<Item = &'a ResultRow>,
) -> u64 {
    use std::fmt::Write as _;
    let mut h = masksearch_obs::Fnv64::new();
    let [candidates, pruned, verified, loaded, inserted, deleted, updated] = stats;
    // One reused buffer: the digest sits on the hot query path whenever the
    // recorder is active, so it must not allocate per row.
    let mut buf = String::with_capacity(64);
    write!(
        buf,
        "OK {rows} candidates={candidates} pruned={pruned} verified={verified} \
         loaded={loaded} inserted={inserted} deleted={deleted} updated={updated}"
    )
    .expect("write to string");
    if let Some(bound) = bound {
        write!(buf, " bound={bound}").expect("write to string");
    }
    buf.push('\n');
    h.update(buf.as_bytes());
    for row in row_iter {
        buf.clear();
        encode_row_into(&mut buf, row);
        buf.push('\n');
        h.update(buf.as_bytes());
    }
    h.finish()
}

/// Digest of a successful query response (wall time excluded), as stored in
/// flight recordings. `bound` must match what the wire frame carried.
pub fn digest_query_response(response: &QueryResponse, bound: Option<f64>) -> u64 {
    let s = &response.output.stats;
    digest_ok_frame(
        response.output.rows.len() as u64,
        [s.candidates, s.pruned, s.verified, s.masks_loaded, 0, 0, 0],
        bound,
        response.output.rows.iter(),
    )
}

/// Digest of a successful mutation response (wall time excluded).
pub fn digest_mutation_response(response: &MutationResponse) -> u64 {
    digest_ok_frame(
        0,
        [
            0,
            0,
            0,
            0,
            response.outcome.inserted as u64,
            response.outcome.deleted as u64,
            response.outcome.updated as u64,
        ],
        None,
        std::iter::empty(),
    )
}

/// Digest of a parsed `OK` frame, computed client-side by the replay
/// harness; matches [`digest_query_response`] / [`digest_mutation_response`]
/// for the same response.
pub fn digest_wire_response(response: &WireResponse) -> u64 {
    let s = &response.summary;
    digest_ok_frame(
        response.rows.len() as u64,
        [
            s.candidates,
            s.pruned,
            s.verified,
            s.loaded,
            s.inserted,
            s.deleted,
            s.updated,
        ],
        s.bound,
        response.rows.iter(),
    )
}

/// Digest of an error response: errors are part of a workload's observable
/// behaviour, so replays must reproduce them too.
pub fn digest_error_message(message: &str) -> u64 {
    masksearch_obs::fnv1a(format!("ERR {message}\n").as_bytes())
}

/// Digest of a `PLAN` frame with `wall_us=` values masked (EXPLAIN ANALYZE
/// plans embed per-node wall times, which legitimately vary run to run).
pub fn digest_plan_lines(lines: &[String]) -> u64 {
    let mut h = masksearch_obs::Fnv64::new();
    for line in lines {
        h.update(mask_wall_tokens(line).as_bytes());
        h.update(b"\n");
    }
    h.finish()
}

/// Replaces the digits of every `wall_us=<n>` token in a line with `_`.
fn mask_wall_tokens(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find("wall_us=") {
        let after = at + "wall_us=".len();
        out.push_str(&rest[..after]);
        out.push('_');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_query::QueryStats;
    use std::io::BufReader;
    use std::time::Duration;

    #[test]
    fn request_classification() {
        assert_eq!(ClientRequest::parse("  PING "), Some(ClientRequest::Ping));
        assert_eq!(ClientRequest::parse("stats"), Some(ClientRequest::Stats));
        assert_eq!(ClientRequest::parse("Quit"), Some(ClientRequest::Quit));
        assert_eq!(
            ClientRequest::parse("SELECT mask_id FROM masks"),
            Some(ClientRequest::Sql("SELECT mask_id FROM masks".to_string()))
        );
        assert_eq!(ClientRequest::parse("   "), None);
    }

    #[test]
    fn rows_round_trip_bit_exactly() {
        let rows = vec![
            ResultRow::mask(MaskId::new(7), None),
            ResultRow::mask(MaskId::new(8), Some(0.1 + 0.2)),
            ResultRow::image(ImageId::new(3), Some(f64::MIN_POSITIVE)),
            ResultRow::image(ImageId::new(4), Some(-1234.5678e-9)),
        ];
        for row in rows {
            let parsed = parse_row(&encode_row(&row)).unwrap();
            assert_eq!(parsed, row);
        }
    }

    #[test]
    fn response_frame_round_trips() {
        let response = QueryResponse {
            output: QueryOutput {
                rows: vec![
                    ResultRow::mask(MaskId::new(1), None),
                    ResultRow::mask(MaskId::new(5), Some(0.25)),
                ],
                stats: QueryStats {
                    candidates: 10,
                    pruned: 7,
                    verified: 1,
                    masks_loaded: 1,
                    ..Default::default()
                },
            },
            queue_wait: Duration::from_micros(5),
            exec_time: Duration::from_micros(184),
        };
        let mut wire = Vec::new();
        write_response(&mut wire, &response).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        match read_frame(&mut reader).unwrap() {
            Frame::Rows(parsed) => {
                assert_eq!(parsed.rows, response.output.rows);
                assert_eq!(parsed.summary.candidates, 10);
                assert_eq!(parsed.summary.pruned, 7);
                assert_eq!(parsed.summary.wall_us, 184);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn mutation_frames_round_trip() {
        let response = MutationResponse {
            outcome: masksearch_query::MutationOutcome {
                inserted: 3,
                deleted: 1,
                updated: 2,
            },
            queue_wait: Duration::from_micros(2),
            exec_time: Duration::from_micros(77),
        };
        let mut wire = Vec::new();
        write_mutation_response(&mut wire, &response).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        match read_frame(&mut reader).unwrap() {
            Frame::Rows(parsed) => {
                assert!(parsed.rows.is_empty());
                assert_eq!(parsed.summary.inserted, 3);
                assert_eq!(parsed.summary.deleted, 1);
                assert_eq!(parsed.summary.updated, 2);
                assert_eq!(parsed.summary.wall_us, 77);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn error_frames_surface_as_errors() {
        let mut wire = Vec::new();
        write_error(&mut wire, &ServiceError::Sql("bad token".to_string())).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        assert!(matches!(
            read_frame(&mut reader),
            Err(ServiceError::Remote(_))
        ));
    }

    #[test]
    fn truncated_frames_are_detected() {
        let wire = b"OK 2 candidates=5\nmask 1\n".to_vec();
        let mut reader = BufReader::new(&wire[..]);
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn control_frames_pass_through() {
        let mut wire = Vec::new();
        write_pong(&mut wire).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        match read_frame(&mut reader).unwrap() {
            Frame::Control(line) => assert_eq!(line, format!("PONG v{PROTOCOL_VERSION}")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pong_versions_parse() {
        assert_eq!(pong_version("PONG"), Some(1));
        assert_eq!(pong_version("PONG v2"), Some(2));
        assert_eq!(pong_version("PONG v17"), Some(17));
        assert_eq!(pong_version("PONG vX"), None);
        assert_eq!(pong_version("NOPE"), None);
    }

    #[test]
    fn partial_and_lookup_requests_parse() {
        assert_eq!(
            ClientRequest::parse("PARTIAL K=5 SELECT mask_id FROM masks ORDER BY s DESC LIMIT 9"),
            Some(ClientRequest::Partial {
                k: 5,
                sql: "SELECT mask_id FROM masks ORDER BY s DESC LIMIT 9".to_string()
            })
        );
        assert_eq!(
            ClientRequest::parse("partial k=2 select 1"),
            Some(ClientRequest::Partial {
                k: 2,
                sql: "select 1".to_string()
            })
        );
        // Malformed PARTIAL lines fall back to the SQL path (-> ERR frame).
        assert!(matches!(
            ClientRequest::parse("PARTIAL SELECT 1"),
            Some(ClientRequest::Sql(_))
        ));
        assert_eq!(
            ClientRequest::parse("LOOKUP 3 7 11"),
            Some(ClientRequest::Lookup(vec![
                MaskId::new(3),
                MaskId::new(7),
                MaskId::new(11)
            ]))
        );
        assert_eq!(
            ClientRequest::parse("lookup 4"),
            Some(ClientRequest::Lookup(vec![MaskId::new(4)]))
        );
        assert!(matches!(
            ClientRequest::parse("LOOKUP nope"),
            Some(ClientRequest::Sql(_))
        ));
        assert_eq!(
            ClientRequest::parse("LOOKUP *"),
            Some(ClientRequest::LookupAll)
        );
        assert_eq!(
            ClientRequest::parse("lookup  * "),
            Some(ClientRequest::LookupAll)
        );
    }

    #[test]
    fn bound_summaries_round_trip() {
        let response = QueryResponse {
            output: QueryOutput {
                rows: vec![ResultRow::mask(MaskId::new(1), Some(42.5))],
                stats: QueryStats::default(),
            },
            queue_wait: Duration::ZERO,
            exec_time: Duration::from_micros(9),
        };
        for bound in [Some(0.1 + 0.2), Some(f64::INFINITY), None] {
            let mut wire = Vec::new();
            write_response_with_bound(&mut wire, &response, bound).unwrap();
            let mut reader = BufReader::new(&wire[..]);
            match read_frame(&mut reader).unwrap() {
                Frame::Rows(parsed) => assert_eq!(parsed.summary.bound, bound),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    #[test]
    fn metrics_and_profiles_requests_parse() {
        assert_eq!(
            ClientRequest::parse("METRICS"),
            Some(ClientRequest::Metrics)
        );
        assert_eq!(
            ClientRequest::parse("metrics "),
            Some(ClientRequest::Metrics)
        );
        assert_eq!(
            ClientRequest::parse("STATS PROFILES"),
            Some(ClientRequest::Profiles(DEFAULT_PROFILES))
        );
        assert_eq!(
            ClientRequest::parse("stats profiles 3"),
            Some(ClientRequest::Profiles(3))
        );
        // A malformed count falls through to the SQL path (-> ERR frame).
        assert!(matches!(
            ClientRequest::parse("STATS PROFILES nope"),
            Some(ClientRequest::Sql(_))
        ));
        // EXPLAIN is not a control command: it rides the SQL path and the
        // engine answers it with a PLAN frame.
        assert!(matches!(
            ClientRequest::parse("EXPLAIN SELECT mask_id FROM masks"),
            Some(ClientRequest::Sql(_))
        ));
    }

    #[test]
    fn counted_text_frames_round_trip() {
        // Plan lines include indentation and k=v tokens; metrics lines
        // include `#` comments; profile payloads may be empty. All must
        // survive verbatim because the count, not a sentinel, frames them.
        let plan = vec![
            "query kind=filter wall_us=12 candidates=10".to_string(),
            "  filter terms=1 pruned=7".to_string(),
            "  verify verified=1".to_string(),
        ];
        let mut wire = Vec::new();
        write_plan_response(&mut wire, &plan).unwrap();
        match read_frame(&mut BufReader::new(&wire[..])).unwrap() {
            Frame::Plan(lines) => assert_eq!(lines, plan),
            other => panic!("unexpected frame {other:?}"),
        }

        let exposition = "# HELP masksearch_up Up.\n# TYPE masksearch_up gauge\nmasksearch_up 1\n";
        let mut wire = Vec::new();
        write_metrics_response(&mut wire, exposition).unwrap();
        match read_frame(&mut BufReader::new(&wire[..])).unwrap() {
            Frame::Metrics(lines) => {
                assert_eq!(lines.len(), 3);
                assert_eq!(lines[2], "masksearch_up 1");
            }
            other => panic!("unexpected frame {other:?}"),
        }

        let mut wire = Vec::new();
        write_profiles_response(&mut wire, &[]).unwrap();
        match read_frame(&mut BufReader::new(&wire[..])).unwrap() {
            Frame::Profiles(lines) => assert!(lines.is_empty()),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn truncated_text_frames_are_detected() {
        let wire = b"PLAN 3\nquery wall_us=1\n".to_vec();
        assert!(read_frame(&mut BufReader::new(&wire[..])).is_err());
        let wire = b"PLAN nope\n".to_vec();
        assert!(read_frame(&mut BufReader::new(&wire[..])).is_err());
    }

    #[test]
    fn metrics_window_requests_parse() {
        assert_eq!(
            ClientRequest::parse("METRICS WINDOW 60"),
            Some(ClientRequest::MetricsWindow(60))
        );
        assert_eq!(
            ClientRequest::parse("metrics window 5"),
            Some(ClientRequest::MetricsWindow(5))
        );
        // Zero or malformed windows fall back to the SQL path (-> ERR).
        assert!(matches!(
            ClientRequest::parse("METRICS WINDOW 0"),
            Some(ClientRequest::Sql(_))
        ));
        assert!(matches!(
            ClientRequest::parse("METRICS WINDOW soon"),
            Some(ClientRequest::Sql(_))
        ));
    }

    #[test]
    fn record_requests_parse_and_keep_path_case() {
        assert_eq!(
            ClientRequest::parse("RECORD STOP"),
            Some(ClientRequest::Record(RecordControl::Stop))
        );
        assert_eq!(
            ClientRequest::parse("record status"),
            Some(ClientRequest::Record(RecordControl::Status))
        );
        assert_eq!(
            ClientRequest::parse("RECORD START"),
            Some(ClientRequest::Record(RecordControl::Start(None)))
        );
        assert_eq!(
            ClientRequest::parse("record start /tmp/Flight.bin"),
            Some(ClientRequest::Record(RecordControl::Start(Some(
                "/tmp/Flight.bin".to_string()
            ))))
        );
        assert!(matches!(
            ClientRequest::parse("RECORD REWIND"),
            Some(ClientRequest::Sql(_))
        ));
    }

    #[test]
    fn monitor_requests_parse() {
        assert_eq!(
            ClientRequest::parse("MONITOR"),
            Some(ClientRequest::Monitor {
                frames: 1,
                interval_ms: DEFAULT_MONITOR_INTERVAL_MS
            })
        );
        assert_eq!(
            ClientRequest::parse("monitor 5"),
            Some(ClientRequest::Monitor {
                frames: 5,
                interval_ms: DEFAULT_MONITOR_INTERVAL_MS
            })
        );
        assert_eq!(
            ClientRequest::parse("MONITOR 3 250"),
            Some(ClientRequest::Monitor {
                frames: 3,
                interval_ms: 250
            })
        );
        assert_eq!(
            ClientRequest::parse("MONITOR 999999 250"),
            Some(ClientRequest::Monitor {
                frames: MAX_MONITOR_FRAMES,
                interval_ms: 250
            })
        );
        assert!(matches!(
            ClientRequest::parse("MONITOR 0"),
            Some(ClientRequest::Sql(_))
        ));
        assert!(matches!(
            ClientRequest::parse("MONITOR 3 fast"),
            Some(ClientRequest::Sql(_))
        ));
        assert!(matches!(
            ClientRequest::parse("MONITORING SELECT 1"),
            Some(ClientRequest::Sql(_))
        ));
    }

    #[test]
    fn delta_frames_round_trip() {
        let deltas = [("completed", 12u64), ("failed", 0), ("tiles_pruned", 99)];
        let mut wire = Vec::new();
        write_delta_frame(&mut wire, 7, &deltas).unwrap();
        match read_frame(&mut BufReader::new(&wire[..])).unwrap() {
            Frame::Delta(lines) => {
                let (seq, parsed) = parse_delta_lines(&lines);
                assert_eq!(seq, 7);
                assert_eq!(
                    parsed,
                    deltas
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect::<Vec<_>>()
                );
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn record_status_frames_are_control() {
        let status = masksearch_obs::RecorderStatus {
            active: true,
            path: Some("/tmp/f.bin".into()),
            records: 12,
            bytes: 3400,
            dropped: 1,
        };
        let mut wire = Vec::new();
        write_record_status(&mut wire, &status).unwrap();
        match read_frame(&mut BufReader::new(&wire[..])).unwrap() {
            Frame::Control(line) => {
                assert_eq!(
                    line,
                    "RECORD active=1 path=/tmp/f.bin records=12 bytes=3400 dropped=1"
                );
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn digests_match_across_the_wire() {
        let response = QueryResponse {
            output: QueryOutput {
                rows: vec![
                    ResultRow::mask(MaskId::new(1), None),
                    ResultRow::mask(MaskId::new(5), Some(0.1 + 0.2)),
                ],
                stats: QueryStats {
                    candidates: 10,
                    pruned: 7,
                    verified: 1,
                    masks_loaded: 1,
                    ..Default::default()
                },
            },
            queue_wait: Duration::from_micros(5),
            exec_time: Duration::from_micros(184),
        };
        for bound in [None, Some(0.1 + 0.2)] {
            let server = digest_query_response(&response, bound);
            let mut wire = Vec::new();
            write_response_with_bound(&mut wire, &response, bound).unwrap();
            match read_frame(&mut BufReader::new(&wire[..])).unwrap() {
                Frame::Rows(parsed) => assert_eq!(digest_wire_response(&parsed), server),
                other => panic!("unexpected frame {other:?}"),
            }
        }
        // Different wall times must not change the digest...
        let mut slower = response;
        slower.exec_time = Duration::from_secs(2);
        let baseline = QueryResponse {
            exec_time: Duration::from_micros(184),
            queue_wait: slower.queue_wait,
            output: slower.output.clone(),
        };
        assert_eq!(
            digest_query_response(&slower, None),
            digest_query_response(&baseline, None)
        );
        // ...but different rows must.
        slower.output.rows.pop();
        assert_ne!(
            digest_query_response(&slower, None),
            digest_query_response(&baseline, None)
        );
    }

    #[test]
    fn mutation_digests_match_across_the_wire() {
        let response = MutationResponse {
            outcome: masksearch_query::MutationOutcome {
                inserted: 3,
                deleted: 1,
                updated: 2,
            },
            queue_wait: Duration::from_micros(2),
            exec_time: Duration::from_micros(77),
        };
        let server = digest_mutation_response(&response);
        let mut wire = Vec::new();
        write_mutation_response(&mut wire, &response).unwrap();
        match read_frame(&mut BufReader::new(&wire[..])).unwrap() {
            Frame::Rows(parsed) => assert_eq!(digest_wire_response(&parsed), server),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn plan_digests_mask_wall_times() {
        let a = vec![
            "query kind=filter wall_us=12 candidates=10".to_string(),
            "  filter terms=1 wall_us=7".to_string(),
        ];
        let b = vec![
            "query kind=filter wall_us=99999 candidates=10".to_string(),
            "  filter terms=1 wall_us=1".to_string(),
        ];
        assert_eq!(digest_plan_lines(&a), digest_plan_lines(&b));
        let c = vec![
            "query kind=filter wall_us=12 candidates=11".to_string(),
            "  filter terms=1 wall_us=7".to_string(),
        ];
        assert_ne!(digest_plan_lines(&a), digest_plan_lines(&c));
    }

    #[test]
    fn lookup_frames_round_trip() {
        let mut wire = Vec::new();
        write_lookup_response(&mut wire, &[MaskId::new(2), MaskId::new(9)]).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        match read_frame(&mut reader).unwrap() {
            Frame::Rows(parsed) => {
                assert_eq!(parsed.mask_ids(), vec![MaskId::new(2), MaskId::new(9)]);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}
