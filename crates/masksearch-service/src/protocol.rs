//! The line-oriented wire protocol of the TCP front end.
//!
//! Requests are single lines of UTF-8. A line equal to `PING`, `STATS`, or
//! `QUIT` (case-insensitive) is a control command; any other non-empty line
//! is a SQL statement in the `masksearch-sql` dialect.
//!
//! Every request produces one response *frame*: a sequence of lines
//! terminated by `END`.
//!
//! ```text
//! >> SELECT mask_id FROM masks WHERE CP(mask, (0,0,16,16), (0.5,1.0)) > 50
//! << OK 2 candidates=10 pruned=7 verified=1 loaded=1 wall_us=184
//! << mask 3
//! << mask 7
//! << END
//! >> PING
//! << PONG
//! << END
//! >> garbage
//! << ERR SQL error: ...
//! << END
//! ```
//!
//! Row values (when a query computes them) are appended to the row line
//! using Rust's shortest round-trip float formatting, so a value parsed back
//! by the client is bit-identical to the value the server computed.

use crate::error::{ServiceError, ServiceResult};
use crate::job::{MutationResponse, QueryResponse};
use crate::metrics::MetricsSnapshot;
use masksearch_core::{ImageId, MaskId};
use masksearch_query::{QueryOutput, ResultRow, RowKey};

use std::io::{BufRead, Write};

/// Terminates every response frame.
pub const END_MARKER: &str = "END";

/// A parsed client request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientRequest {
    /// Liveness check.
    Ping,
    /// Server metrics summary.
    Stats,
    /// Close the connection.
    Quit,
    /// A SQL statement to compile and execute.
    Sql(String),
}

impl ClientRequest {
    /// Classifies one request line.
    pub fn parse(line: &str) -> Option<Self> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return None;
        }
        Some(match trimmed.to_ascii_uppercase().as_str() {
            "PING" => Self::Ping,
            "STATS" => Self::Stats,
            "QUIT" => Self::Quit,
            _ => Self::Sql(trimmed.to_string()),
        })
    }
}

/// Encodes one result row as a protocol line.
pub fn encode_row(row: &ResultRow) -> String {
    let (kind, id) = match row.key {
        RowKey::Mask(id) => ("mask", id.raw()),
        RowKey::Image(id) => ("image", id.raw()),
    };
    match row.value {
        Some(v) => format!("{kind} {id} {v}"),
        None => format!("{kind} {id}"),
    }
}

/// Decodes a protocol line produced by [`encode_row`].
pub fn parse_row(line: &str) -> ServiceResult<ResultRow> {
    let mut parts = line.split_ascii_whitespace();
    let kind = parts
        .next()
        .ok_or_else(|| ServiceError::Protocol("empty row line".to_string()))?;
    let id: u64 = parts
        .next()
        .ok_or_else(|| ServiceError::Protocol(format!("row line missing id: {line:?}")))?
        .parse()
        .map_err(|_| ServiceError::Protocol(format!("bad row id in {line:?}")))?;
    let value = match parts.next() {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| ServiceError::Protocol(format!("bad row value in {line:?}")))?,
        ),
        None => None,
    };
    match kind {
        "mask" => Ok(ResultRow {
            key: RowKey::Mask(MaskId::new(id)),
            value,
        }),
        "image" => Ok(ResultRow {
            key: RowKey::Image(ImageId::new(id)),
            value,
        }),
        other => Err(ServiceError::Protocol(format!(
            "unknown row kind {other:?}"
        ))),
    }
}

/// Writes a successful query response frame.
pub fn write_response<W: Write>(w: &mut W, response: &QueryResponse) -> std::io::Result<()> {
    let s = &response.output.stats;
    writeln!(
        w,
        "OK {} candidates={} pruned={} verified={} loaded={} wall_us={}",
        response.output.rows.len(),
        s.candidates,
        s.pruned,
        s.verified,
        s.masks_loaded,
        response.exec_time.as_micros(),
    )?;
    for row in &response.output.rows {
        writeln!(w, "{}", encode_row(row))?;
    }
    writeln!(w, "{END_MARKER}")
}

/// Writes a successful mutation response frame: an `OK` header with zero
/// rows and `inserted=` / `deleted=` counters, so query-only clients parse
/// it as an empty result while write-aware clients read the counts.
pub fn write_mutation_response<W: Write>(
    w: &mut W,
    response: &MutationResponse,
) -> std::io::Result<()> {
    writeln!(
        w,
        "OK 0 inserted={} deleted={} wall_us={}",
        response.outcome.inserted,
        response.outcome.deleted,
        response.exec_time.as_micros(),
    )?;
    writeln!(w, "{END_MARKER}")
}

/// Writes an error frame.
pub fn write_error<W: Write>(w: &mut W, error: &ServiceError) -> std::io::Result<()> {
    writeln!(w, "ERR {}", error.wire_message())?;
    writeln!(w, "{END_MARKER}")
}

/// Writes a `PONG` frame.
pub fn write_pong<W: Write>(w: &mut W) -> std::io::Result<()> {
    writeln!(w, "PONG")?;
    writeln!(w, "{END_MARKER}")
}

/// Writes a server-metrics frame.
pub fn write_stats<W: Write>(w: &mut W, m: &MetricsSnapshot) -> std::io::Result<()> {
    writeln!(
        w,
        "STATS qps={:.3} completed={} failed={} rejected={} deadline_expired={} \
         p50_us={} p99_us={} mean_us={} filter_rate={:.6} cache_hit_rate={:.6} uptime_ms={} \
         mutations={} inserted={} deleted={} wal_bytes={} checkpoints={} commits={}",
        m.qps,
        m.completed,
        m.failed,
        m.rejected,
        m.deadline_expired,
        m.latency.p50().as_micros(),
        m.latency.p99().as_micros(),
        m.latency.mean().as_micros(),
        m.filter_rate,
        m.cache_hit_rate,
        m.uptime.as_millis(),
        m.mutations,
        m.masks_inserted,
        m.masks_deleted,
        m.ingest.wal_bytes,
        m.ingest.checkpoints,
        m.ingest.commits,
    )?;
    writeln!(w, "{END_MARKER}")
}

/// Summary line of an `OK` frame, as parsed back by the client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSummary {
    /// Declared number of rows in the frame.
    pub rows: u64,
    /// `QueryStats::candidates` on the server.
    pub candidates: u64,
    /// `QueryStats::pruned` on the server.
    pub pruned: u64,
    /// `QueryStats::verified` on the server.
    pub verified: u64,
    /// `QueryStats::masks_loaded` on the server.
    pub loaded: u64,
    /// Masks inserted, when the frame answers a write statement.
    pub inserted: u64,
    /// Masks deleted, when the frame answers a write statement.
    pub deleted: u64,
    /// Server-side execution time in microseconds.
    pub wall_us: u64,
}

/// A parsed `OK` frame.
#[derive(Debug, Clone, Default)]
pub struct WireResponse {
    /// Result rows in server order.
    pub rows: Vec<ResultRow>,
    /// Parsed summary line.
    pub summary: WireSummary,
}

impl WireResponse {
    /// Mask ids of mask-keyed rows, in order (mirror of
    /// [`QueryOutput::mask_ids`]).
    pub fn mask_ids(&self) -> Vec<MaskId> {
        self.rows
            .iter()
            .filter_map(|r| match r.key {
                RowKey::Mask(id) => Some(id),
                RowKey::Image(_) => None,
            })
            .collect()
    }
}

fn parse_kv(token: &str, key: &str) -> ServiceResult<u64> {
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ServiceError::Protocol(format!("expected {key}=<n>, got {token:?}")))
}

/// Reads one response frame (all lines up to `END`) and interprets it.
///
/// Returns the frame's payload. `ERR` frames become `Err(..)`; `PONG` and
/// `STATS` frames are returned as raw lines in [`Frame::Control`].
pub fn read_frame<R: BufRead>(reader: &mut R) -> ServiceResult<Frame> {
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(ServiceError::Io("connection closed mid-frame".to_string()));
    }
    let header = header.trim_end().to_string();
    if let Some(msg) = header.strip_prefix("ERR ") {
        // Consume the END line.
        expect_end(reader)?;
        return Err(ServiceError::Protocol(msg.to_string()));
    }
    if header == "PONG" || header.starts_with("STATS ") {
        expect_end(reader)?;
        return Ok(Frame::Control(header));
    }
    let mut tokens = header.split_ascii_whitespace();
    match tokens.next() {
        Some("OK") => {}
        other => {
            return Err(ServiceError::Protocol(format!(
                "unexpected frame header {other:?}"
            )))
        }
    }
    let rows: u64 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ServiceError::Protocol("OK header missing row count".to_string()))?;
    let mut summary = WireSummary {
        rows,
        ..Default::default()
    };
    for token in tokens {
        if let Ok(v) = parse_kv(token, "candidates") {
            summary.candidates = v;
        } else if let Ok(v) = parse_kv(token, "pruned") {
            summary.pruned = v;
        } else if let Ok(v) = parse_kv(token, "verified") {
            summary.verified = v;
        } else if let Ok(v) = parse_kv(token, "loaded") {
            summary.loaded = v;
        } else if let Ok(v) = parse_kv(token, "inserted") {
            summary.inserted = v;
        } else if let Ok(v) = parse_kv(token, "deleted") {
            summary.deleted = v;
        } else if let Ok(v) = parse_kv(token, "wall_us") {
            summary.wall_us = v;
        }
    }
    // Cap the pre-allocation: the count is wire data and must not let a
    // corrupt or hostile header drive an unbounded allocation.
    let mut parsed_rows = Vec::with_capacity(rows.min(1024) as usize);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ServiceError::Io("connection closed mid-frame".to_string()));
        }
        let line = line.trim_end();
        if line == END_MARKER {
            break;
        }
        parsed_rows.push(parse_row(line)?);
    }
    if parsed_rows.len() as u64 != rows {
        return Err(ServiceError::Protocol(format!(
            "frame declared {rows} rows but carried {}",
            parsed_rows.len()
        )));
    }
    Ok(Frame::Rows(WireResponse {
        rows: parsed_rows,
        summary,
    }))
}

fn expect_end<R: BufRead>(reader: &mut R) -> ServiceResult<()> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ServiceError::Io("connection closed mid-frame".to_string()));
    }
    if line.trim_end() == END_MARKER {
        Ok(())
    } else {
        Err(ServiceError::Protocol(format!(
            "expected {END_MARKER}, got {:?}",
            line.trim_end()
        )))
    }
}

/// One parsed response frame.
#[derive(Debug)]
pub enum Frame {
    /// An `OK` frame with rows.
    Rows(WireResponse),
    /// A `PONG` or `STATS` control frame (raw first line).
    Control(String),
}

/// Round-trip helper: renders a [`QueryOutput`]'s rows as wire lines.
pub fn encode_rows(output: &QueryOutput) -> Vec<String> {
    output.rows.iter().map(encode_row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_query::QueryStats;
    use std::io::BufReader;
    use std::time::Duration;

    #[test]
    fn request_classification() {
        assert_eq!(ClientRequest::parse("  PING "), Some(ClientRequest::Ping));
        assert_eq!(ClientRequest::parse("stats"), Some(ClientRequest::Stats));
        assert_eq!(ClientRequest::parse("Quit"), Some(ClientRequest::Quit));
        assert_eq!(
            ClientRequest::parse("SELECT mask_id FROM masks"),
            Some(ClientRequest::Sql("SELECT mask_id FROM masks".to_string()))
        );
        assert_eq!(ClientRequest::parse("   "), None);
    }

    #[test]
    fn rows_round_trip_bit_exactly() {
        let rows = vec![
            ResultRow::mask(MaskId::new(7), None),
            ResultRow::mask(MaskId::new(8), Some(0.1 + 0.2)),
            ResultRow::image(ImageId::new(3), Some(f64::MIN_POSITIVE)),
            ResultRow::image(ImageId::new(4), Some(-1234.5678e-9)),
        ];
        for row in rows {
            let parsed = parse_row(&encode_row(&row)).unwrap();
            assert_eq!(parsed, row);
        }
    }

    #[test]
    fn response_frame_round_trips() {
        let response = QueryResponse {
            output: QueryOutput {
                rows: vec![
                    ResultRow::mask(MaskId::new(1), None),
                    ResultRow::mask(MaskId::new(5), Some(0.25)),
                ],
                stats: QueryStats {
                    candidates: 10,
                    pruned: 7,
                    verified: 1,
                    masks_loaded: 1,
                    ..Default::default()
                },
            },
            queue_wait: Duration::from_micros(5),
            exec_time: Duration::from_micros(184),
        };
        let mut wire = Vec::new();
        write_response(&mut wire, &response).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        match read_frame(&mut reader).unwrap() {
            Frame::Rows(parsed) => {
                assert_eq!(parsed.rows, response.output.rows);
                assert_eq!(parsed.summary.candidates, 10);
                assert_eq!(parsed.summary.pruned, 7);
                assert_eq!(parsed.summary.wall_us, 184);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn mutation_frames_round_trip() {
        let response = MutationResponse {
            outcome: masksearch_query::MutationOutcome {
                inserted: 3,
                deleted: 1,
            },
            queue_wait: Duration::from_micros(2),
            exec_time: Duration::from_micros(77),
        };
        let mut wire = Vec::new();
        write_mutation_response(&mut wire, &response).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        match read_frame(&mut reader).unwrap() {
            Frame::Rows(parsed) => {
                assert!(parsed.rows.is_empty());
                assert_eq!(parsed.summary.inserted, 3);
                assert_eq!(parsed.summary.deleted, 1);
                assert_eq!(parsed.summary.wall_us, 77);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn error_frames_surface_as_errors() {
        let mut wire = Vec::new();
        write_error(&mut wire, &ServiceError::Sql("bad token".to_string())).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        assert!(matches!(
            read_frame(&mut reader),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_frames_are_detected() {
        let wire = b"OK 2 candidates=5\nmask 1\n".to_vec();
        let mut reader = BufReader::new(&wire[..]);
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn control_frames_pass_through() {
        let mut wire = Vec::new();
        write_pong(&mut wire).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        match read_frame(&mut reader).unwrap() {
            Frame::Control(line) => assert_eq!(line, "PONG"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
