//! Service configuration: worker pool sizing, queue bounds, admission
//! control, deadlines, and observability sinks.

use std::path::PathBuf;
use std::time::Duration;

/// Default flight-recorder byte budget (64 MiB): enough for millions of
/// captured statements while bounding disk use on a forgotten recorder.
pub const DEFAULT_RECORDER_BUDGET: u64 = 64 << 20;

/// What `submit` does when the bounded job queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail fast with [`crate::ServiceError::QueueFull`]. This is the
    /// production-facing default: back-pressure is surfaced to the caller
    /// instead of building an unbounded backlog.
    Reject,
    /// Block the submitting thread until a slot frees up (or the engine
    /// shuts down).
    Block,
}

/// Configuration of a [`crate::Engine`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker threads executing queries. Each worker runs one
    /// query at a time; the session's own intra-query parallelism is
    /// controlled separately by `SessionConfig::threads`.
    pub workers: usize,
    /// Maximum number of queries waiting in the job queue (admission
    /// control). Must be at least 1.
    pub queue_depth: usize,
    /// Admission policy when the queue is full.
    pub admission: AdmissionPolicy,
    /// Deadline applied to queries that do not carry their own: measured
    /// from submission; a query whose deadline passes while still queued is
    /// abandoned without executing. `None` means no deadline.
    pub default_deadline: Option<Duration>,
    /// Whether workers open a tracing span tree around each query. Traces
    /// feed the profile ring (`STATS PROFILES`) and the slow-query log; with
    /// tracing off the hot path takes the pre-observability code path and
    /// produces byte-identical responses.
    pub tracing: bool,
    /// Threshold above which a completed query is written to the structured
    /// slow-query log. `None` disables the log.
    pub slow_query: Option<Duration>,
    /// Destination file for the slow-query log (JSON lines, appended).
    /// `None` keeps the historical default of stderr.
    pub slow_query_path: Option<PathBuf>,
    /// When set, the flight recorder starts capturing to this file as soon
    /// as the engine comes up (an existing recording is appended to, the
    /// way the shape-stats file survives reopen). Recording can also be
    /// started and stopped over the wire with `RECORD START/STOP`.
    pub record_to: Option<PathBuf>,
    /// Byte budget for the flight recorder; statements past the budget are
    /// counted as dropped instead of growing the recording.
    pub recorder_budget: u64,
}

impl ServiceConfig {
    /// A configuration with `workers` worker threads and defaults otherwise
    /// (queue depth 1024, reject-on-full, no deadline).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            queue_depth: 1024,
            admission: AdmissionPolicy::Reject,
            default_deadline: None,
            tracing: true,
            slow_query: None,
            slow_query_path: None,
            record_to: None,
            recorder_budget: DEFAULT_RECORDER_BUDGET,
        }
    }

    /// Sets the queue depth (clamped to at least 1).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the admission policy.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Sets the default per-query deadline.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Enables or disables per-query tracing (profiles and slow-query log).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Sets the slow-query threshold (queries at least this slow are logged).
    pub fn slow_query(mut self, threshold: Duration) -> Self {
        self.slow_query = Some(threshold);
        self
    }

    /// Sends the slow-query log to a file (JSON lines, appended) instead of
    /// stderr.
    pub fn slow_query_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.slow_query_path = Some(path.into());
        self
    }

    /// Starts the flight recorder at engine construction, capturing every
    /// executed statement to `path`.
    pub fn record_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.record_to = Some(path.into());
        self
    }

    /// Sets the flight-recorder byte budget.
    pub fn recorder_budget(mut self, bytes: u64) -> Self {
        self.recorder_budget = bytes.max(1);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_and_sets() {
        let c = ServiceConfig::new(0)
            .queue_depth(0)
            .admission(AdmissionPolicy::Block)
            .default_deadline(Duration::from_millis(5))
            .tracing(false)
            .slow_query(Duration::from_millis(100))
            .slow_query_path("/tmp/slow.jsonl")
            .record_to("/tmp/flight.bin")
            .recorder_budget(0);
        assert_eq!(c.workers, 1);
        assert_eq!(c.queue_depth, 1);
        assert_eq!(c.admission, AdmissionPolicy::Block);
        assert_eq!(c.default_deadline, Some(Duration::from_millis(5)));
        assert!(!c.tracing);
        assert_eq!(c.slow_query, Some(Duration::from_millis(100)));
        assert_eq!(c.slow_query_path, Some(PathBuf::from("/tmp/slow.jsonl")));
        assert_eq!(c.record_to, Some(PathBuf::from("/tmp/flight.bin")));
        assert_eq!(c.recorder_budget, 1);
    }

    #[test]
    fn default_uses_available_parallelism() {
        let c = ServiceConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.admission, AdmissionPolicy::Reject);
        assert!(c.default_deadline.is_none());
        assert!(c.tracing);
        assert!(c.slow_query.is_none());
        assert!(c.slow_query_path.is_none());
        assert!(c.record_to.is_none());
        assert_eq!(c.recorder_budget, DEFAULT_RECORDER_BUDGET);
    }
}
