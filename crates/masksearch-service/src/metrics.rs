//! Server-wide metrics: throughput, a log-bucketed latency histogram,
//! filter effectiveness, and cache efficiency.
//!
//! Everything here is lock-free (`AtomicU64` + `Ordering::Relaxed`): metrics
//! recording sits on the per-query hot path of every worker thread and must
//! never contend with query execution.

use masksearch_query::{MutationOutcome, QueryStats};
use masksearch_storage::IngestSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of logarithmic latency buckets. Bucket `i` holds durations in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is unbounded above.
pub const LATENCY_BUCKETS: usize = 32;

/// A concurrent latency histogram with power-of-two microsecond buckets.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(micros: u64) -> usize {
        ((64 - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the histogram for reporting.
    pub fn snapshot(&self) -> LatencySnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        LatencySnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time view of a [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations in microseconds.
    pub total_micros: u64,
    /// Largest observation in microseconds.
    pub max_micros: u64,
    /// Per-bucket counts (see [`LATENCY_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl LatencySnapshot {
    /// Mean latency, zero when empty.
    pub fn mean(&self) -> Duration {
        self.total_micros
            .checked_div(self.count)
            .map(Duration::from_micros)
            .unwrap_or(Duration::ZERO)
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket boundaries.
    /// The upper edge of the bucket containing the q-th observation is
    /// returned, so the estimate errs on the conservative (larger) side.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i holds observations in [2^(i-1), 2^i - 1] us; report
                // its upper edge, clamped to the largest observation.
                let upper = 1u64 << i;
                return Duration::from_micros(upper.min(self.max_micros.max(1)));
            }
        }
        Duration::from_micros(self.max_micros)
    }

    /// Median (p50).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Renders this snapshot as Prometheus `histogram` sample lines:
    /// cumulative `_bucket{le=...}` counts with upper edges in **seconds**
    /// (Prometheus convention), then `_sum` and `_count`. The caller emits
    /// the `# TYPE name histogram` header.
    pub fn render_prometheus(&self, name: &str, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if c == 0 && i + 1 < self.buckets.len() {
                // Compact exposition: skip empty buckets (cumulative counts
                // make them recoverable), but always close with the last.
                continue;
            }
            // Bucket i holds observations in [2^(i-1), 2^i) µs, so its
            // inclusive upper edge is 2^i µs.
            let le_seconds = (1u64 << i.min(63)) as f64 / 1e6;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{le_seconds}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", self.count));
        out.push_str(&format!("{name}_sum {}\n", self.total_micros as f64 / 1e6));
        out.push_str(&format!("{name}_count {}\n", self.count));
    }
}

/// Counters and histograms describing everything a server has done since it
/// started.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    deadline_expired: AtomicU64,
    batches: AtomicU64,
    mutations: AtomicU64,
    masks_inserted: AtomicU64,
    masks_deleted: AtomicU64,
    masks_updated: AtomicU64,
    /// Mutations answered from the token-dedup registry instead of being
    /// re-applied (a client resent after a transport error).
    mutations_deduped: AtomicU64,
    /// Sum of `QueryStats::candidates` over completed queries.
    candidates: AtomicU64,
    /// Sum of `QueryStats::masks_loaded` over completed queries.
    masks_loaded: AtomicU64,
    /// Sum of `QueryStats::pruned` over completed queries.
    pruned: AtomicU64,
    /// Sum of `QueryStats::tiles_pruned` over completed queries.
    tiles_pruned: AtomicU64,
    /// Sum of `QueryStats::tiles_hist` over completed queries.
    tiles_hist: AtomicU64,
    /// Sum of `QueryStats::tiles_scanned` over completed queries.
    tiles_scanned: AtomicU64,
    /// Sum of `QueryStats::pairs_bound` over completed queries.
    pairs_bound: AtomicU64,
    /// Sum of `QueryStats::planner_kernel_on` over completed queries.
    planner_kernel_on: AtomicU64,
    /// Sum of `QueryStats::planner_kernel_off` over completed queries.
    planner_kernel_off: AtomicU64,
    /// Sum of `QueryStats::planner_bounds_skipped` over completed queries.
    planner_bounds_skipped: AtomicU64,
    /// Sum of `QueryStats::planner_reorders` over completed queries.
    planner_reorders: AtomicU64,
    /// Sum of `QueryStats::index_probes` over completed queries.
    index_probes: AtomicU64,
    /// Sum of `QueryStats::index_rows` over completed queries.
    index_rows: AtomicU64,
    /// Sum of `QueryStats::planner_index_on` over completed queries.
    planner_index_on: AtomicU64,
    /// Sum of `QueryStats::planner_index_off` over completed queries.
    planner_index_off: AtomicU64,
    /// End-to-end latency (submission to completion).
    latency: LatencyHistogram,
    /// Time spent waiting in the queue before a worker picked the job up.
    queue_wait: LatencyHistogram,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Creates a zeroed registry with the uptime clock starting now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            masks_inserted: AtomicU64::new(0),
            masks_deleted: AtomicU64::new(0),
            masks_updated: AtomicU64::new(0),
            mutations_deduped: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            masks_loaded: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            tiles_pruned: AtomicU64::new(0),
            tiles_hist: AtomicU64::new(0),
            tiles_scanned: AtomicU64::new(0),
            pairs_bound: AtomicU64::new(0),
            planner_kernel_on: AtomicU64::new(0),
            planner_kernel_off: AtomicU64::new(0),
            planner_bounds_skipped: AtomicU64::new(0),
            planner_reorders: AtomicU64::new(0),
            index_probes: AtomicU64::new(0),
            index_rows: AtomicU64::new(0),
            planner_index_on: AtomicU64::new(0),
            planner_index_off: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
        }
    }

    /// Records that a query was admitted to the queue.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rejection by admission control.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query abandoned because its deadline passed in the queue.
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query that failed during execution.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch job (in addition to its member queries).
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successfully applied write and what it did. Mutation
    /// latencies are deliberately kept out of the query latency histogram so
    /// ingestion bursts do not distort read p99s.
    pub fn record_mutation(&self, outcome: &MutationOutcome) {
        self.mutations.fetch_add(1, Ordering::Relaxed);
        self.masks_inserted
            .fetch_add(outcome.inserted as u64, Ordering::Relaxed);
        self.masks_deleted
            .fetch_add(outcome.deleted as u64, Ordering::Relaxed);
        self.masks_updated
            .fetch_add(outcome.updated as u64, Ordering::Relaxed);
    }

    /// Records a mutation answered from the token-dedup registry (the write
    /// had already been applied; only the recorded outcome was replayed).
    pub fn record_mutation_deduped(&self) {
        self.mutations_deduped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records how long a job sat in the queue before execution started.
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(wait);
    }

    /// Records a successfully completed query with its execution statistics
    /// and end-to-end latency.
    pub fn record_completed(&self, stats: &QueryStats, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.candidates
            .fetch_add(stats.candidates, Ordering::Relaxed);
        self.masks_loaded
            .fetch_add(stats.masks_loaded, Ordering::Relaxed);
        self.pruned.fetch_add(stats.pruned, Ordering::Relaxed);
        self.tiles_pruned
            .fetch_add(stats.tiles_pruned, Ordering::Relaxed);
        self.tiles_hist
            .fetch_add(stats.tiles_hist, Ordering::Relaxed);
        self.tiles_scanned
            .fetch_add(stats.tiles_scanned, Ordering::Relaxed);
        self.pairs_bound
            .fetch_add(stats.pairs_bound, Ordering::Relaxed);
        self.planner_kernel_on
            .fetch_add(stats.planner_kernel_on, Ordering::Relaxed);
        self.planner_kernel_off
            .fetch_add(stats.planner_kernel_off, Ordering::Relaxed);
        self.planner_bounds_skipped
            .fetch_add(stats.planner_bounds_skipped, Ordering::Relaxed);
        self.planner_reorders
            .fetch_add(stats.planner_reorders, Ordering::Relaxed);
        self.index_probes
            .fetch_add(stats.index_probes, Ordering::Relaxed);
        self.index_rows
            .fetch_add(stats.index_rows, Ordering::Relaxed);
        self.planner_index_on
            .fetch_add(stats.planner_index_on, Ordering::Relaxed);
        self.planner_index_off
            .fetch_add(stats.planner_index_off, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Point-in-time summary of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let uptime = self.started.elapsed();
        let completed = self.completed.load(Ordering::Relaxed);
        let candidates = self.candidates.load(Ordering::Relaxed);
        let loaded = self.masks_loaded.load(Ordering::Relaxed);
        MetricsSnapshot {
            uptime,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            masks_inserted: self.masks_inserted.load(Ordering::Relaxed),
            masks_deleted: self.masks_deleted.load(Ordering::Relaxed),
            masks_updated: self.masks_updated.load(Ordering::Relaxed),
            mutations_deduped: self.mutations_deduped.load(Ordering::Relaxed),
            tiles_pruned: self.tiles_pruned.load(Ordering::Relaxed),
            tiles_hist: self.tiles_hist.load(Ordering::Relaxed),
            tiles_scanned: self.tiles_scanned.load(Ordering::Relaxed),
            pairs_bound: self.pairs_bound.load(Ordering::Relaxed),
            planner_kernel_on: self.planner_kernel_on.load(Ordering::Relaxed),
            planner_kernel_off: self.planner_kernel_off.load(Ordering::Relaxed),
            planner_bounds_skipped: self.planner_bounds_skipped.load(Ordering::Relaxed),
            planner_reorders: self.planner_reorders.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            index_rows: self.index_rows.load(Ordering::Relaxed),
            planner_index_on: self.planner_index_on.load(Ordering::Relaxed),
            planner_index_off: self.planner_index_off.load(Ordering::Relaxed),
            // Store-level write-path counters; the engine overwrites this
            // from the session store's `ingest_stats` at snapshot time, like
            // the cache hit rate below.
            ingest: IngestSnapshot::default(),
            qps: if uptime.as_secs_f64() > 0.0 {
                completed as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            filter_rate: if candidates == 0 {
                0.0
            } else {
                1.0 - loaded as f64 / candidates as f64
            },
            // Attributing shared-cache hits to individual queries across
            // concurrent workers would double count; the engine fills this
            // from the session cache's own counters at snapshot time.
            cache_hit_rate: 0.0,
            // Saturation signals live outside the registry: the engine fills
            // the queue depth and the TCP front end the connection count.
            active_connections: 0,
            queue_depth: 0,
            latency: self.latency.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
        }
    }
}

/// Point-in-time view of [`ServiceMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Time since the registry (server) started.
    pub uptime: Duration,
    /// Queries admitted.
    pub submitted: u64,
    /// Queries finished successfully.
    pub completed: u64,
    /// Queries that failed during execution.
    pub failed: u64,
    /// Queries rejected by admission control.
    pub rejected: u64,
    /// Queries abandoned on queue-deadline expiry.
    pub deadline_expired: u64,
    /// Batch jobs executed.
    pub batches: u64,
    /// Write statements applied through the service.
    pub mutations: u64,
    /// Masks inserted by served writes.
    pub masks_inserted: u64,
    /// Masks deleted by served writes.
    pub masks_deleted: u64,
    /// Masks re-masked in place (`UPDATE`) by served writes.
    pub masks_updated: u64,
    /// Mutations answered from the token-dedup registry (client resends
    /// after transport errors) instead of being re-applied.
    pub mutations_deduped: u64,
    /// Verification-kernel tiles decided from min/max summaries, summed
    /// over completed queries.
    pub tiles_pruned: u64,
    /// Verification-kernel tiles answered from tile histograms.
    pub tiles_hist: u64,
    /// Verification-kernel tiles that fell back to a pixel scan.
    pub tiles_scanned: u64,
    /// Pair-query images bound (both join sides resolved), summed over
    /// completed queries.
    pub pairs_bound: u64,
    /// Masks the planner routed to the tiled verification kernel.
    pub planner_kernel_on: u64,
    /// Masks the planner routed to the reference scan.
    pub planner_kernel_off: u64,
    /// Pairs whose bounds classification the planner skipped (load-first).
    pub planner_bounds_skipped: u64,
    /// Queries whose CP terms the planner evaluated out of written order.
    pub planner_reorders: u64,
    /// Secondary-index probes issued by metadata resolution.
    pub index_probes: u64,
    /// Candidate rows produced by secondary-index probes.
    pub index_rows: u64,
    /// Queries whose metadata filter was answered through an index.
    pub planner_index_on: u64,
    /// Index-eligible queries the planner kept on the catalog scan.
    pub planner_index_off: u64,
    /// Store-level write-path counters (WAL bytes, checkpoints, commits) for
    /// stores that track them; zeros otherwise. Filled by the engine at
    /// snapshot time.
    pub ingest: IngestSnapshot,
    /// Completed queries per second of uptime.
    pub qps: f64,
    /// Fraction of candidate masks the index let the server avoid loading
    /// (`1 - masks_loaded / candidates`), aggregated over completed queries.
    pub filter_rate: f64,
    /// Hit rate of the session's shared mask cache (filled by the engine;
    /// zero in a bare [`ServiceMetrics::snapshot`]).
    pub cache_hit_rate: f64,
    /// Currently open TCP client connections (filled by the server; zero in
    /// a bare [`ServiceMetrics::snapshot`]).
    pub active_connections: u64,
    /// Jobs waiting in the bounded queue right now (filled by the engine) —
    /// together with `active_connections` the operator's saturation signal.
    pub queue_depth: u64,
    /// End-to-end latency histogram.
    pub latency: LatencySnapshot,
    /// Queue-wait histogram.
    pub queue_wait: LatencySnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 2, 3, 5, 8, 13, 200] {
            h.record(Duration::from_millis(ms));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert!(s.p50() <= s.p99());
        assert!(s.p99() <= Duration::from_micros(s.max_micros.max(1)));
        assert!(s.mean() >= Duration::from_millis(1));
        assert_eq!(s.max_micros, 200_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
    }

    #[test]
    fn snapshot_derives_rates() {
        let m = ServiceMetrics::new();
        m.record_submitted();
        m.record_submitted();
        m.record_rejected();
        let stats = QueryStats {
            candidates: 100,
            masks_loaded: 25,
            pruned: 60,
            ..Default::default()
        };
        m.record_completed(&stats, Duration::from_millis(3));
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.rejected, 1);
        assert!((s.filter_rate - 0.75).abs() < 1e-12);
        assert!(s.qps > 0.0);
    }

    #[test]
    fn bucket_mapping_covers_the_range() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert!(LatencyHistogram::bucket_of(u64::MAX) < LATENCY_BUCKETS);
        // Buckets are non-decreasing in the observation.
        let mut last = 0;
        for exp in 0..40u32 {
            let b = LatencyHistogram::bucket_of(1u64 << exp);
            assert!(b >= last);
            last = b;
        }
    }
}
