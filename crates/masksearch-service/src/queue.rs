//! A bounded, closable MPMC job queue built on `std::sync` primitives.
//!
//! This is the admission-control point of the service: producers either fail
//! fast when the queue is at capacity ([`JobQueue::try_push`]) or block until
//! a slot frees ([`JobQueue::push_blocking`]); consumers block in
//! [`JobQueue::pop`] until work arrives or the queue is closed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct JobQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    /// Signalled when an item is pushed or the queue closes.
    not_empty: Condvar,
    /// Signalled when an item is popped or the queue closes.
    not_full: Condvar,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity (the item is handed back).
    Full(T),
    /// The queue is closed (the item is handed back).
    Closed(T),
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is at capacity. Fails only if the
    /// queue closes while waiting.
    pub fn push_blocking(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues the oldest item, blocking until one is available. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: waiting producers fail, waiting consumers drain the
    /// backlog and then receive `None`. Returns the number of items still
    /// queued at close time.
    pub fn close(&self) -> usize {
        let mut inner = self.lock();
        inner.closed = true;
        let backlog = inner.items.len();
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        backlog
    }

    /// Returns `true` if [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Drains all queued items immediately (used on shutdown to fail
    /// outstanding tickets).
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.lock();
        let items = std::mem::take(&mut inner.items);
        drop(inner);
        self.not_full.notify_all();
        items.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::new(4);
        q.try_push("a").unwrap();
        assert_eq!(q.close(), 1);
        assert!(matches!(q.try_push("b"), Err(PushError::Closed("b"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_a_slot() {
        let q = Arc::new(JobQueue::new(1));
        q.try_push(1u32).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_blocking(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn consumers_block_until_work_arrives() {
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(7u64).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(JobQueue::new(8));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    q.push_blocking(p * 1000 + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 200);
        all.dedup();
        assert_eq!(all.len(), 200, "duplicated or lost items");
    }
}
