//! A pipelined, multiplexed client for the TCP front end (protocol v6).
//!
//! Where [`Client`](crate::Client) is strictly request/response — one frame
//! in flight, the caller blocked for a full round trip — [`MuxClient`]
//! tags every request line with a `@<id>` prefix and keeps many requests in
//! flight on one connection. A dedicated reader thread routes response
//! frames back to their callers by tag, so N callers (or one caller with a
//! scatter batch) pay one round trip instead of N.
//!
//! ## Id discipline (what makes reconnect safe)
//!
//! Request ids are allocated from one monotonically increasing counter for
//! the lifetime of the client and are **never reused**, across requests or
//! across reconnect generations. Each connection generation carries its own
//! pending-request table:
//!
//! * a frame whose tag is not in the table **poisons the connection**
//!   (every waiter gets a transport error) — it is never delivered to an
//!   arbitrary caller;
//! * a duplicated tag cannot double-resolve a caller: the first frame
//!   consumes the table entry, so the duplicate hits the unknown-tag path;
//! * when a connection dies, every pending request on it is failed with a
//!   transport error *before* a new generation is dialed, so a stale id
//!   from the dead connection can never be confused with a live one.
//!
//! ## Resend rules
//!
//! With reconnect enabled, a request that failed with a transport error is
//! resent (once, with a fresh id) on a fresh connection — but only when the
//! resend is safe: reads, control commands, and `TOKEN`-wrapped mutations
//! (deduplicated server-side). A bare `INSERT`/`DELETE` stays ambiguous and
//! surfaces the transport error, exactly like [`Client`](crate::Client).

use crate::client::{next_mutation_token, resend_is_safe, RECONNECT_BACKOFF};
use crate::error::{ServiceError, ServiceResult};
use crate::protocol::{self, Frame, WireResponse, PROTOCOL_VERSION};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};

/// Completed-or-failed slot a pending request resolves to.
type Resolution = ServiceResult<Frame>;

/// One connection generation: the write half plus the table of requests
/// awaiting their tagged response frame.
struct Conn {
    /// Write half. Whole request lines (or whole coalesced batches) are
    /// written and flushed under this lock, so concurrent callers can never
    /// interleave bytes mid-line.
    writer: Mutex<BufWriter<TcpStream>>,
    /// In-flight requests by id, plus the poison marker once the connection
    /// has died. Guarded together so a send can never register on a
    /// connection that has already drained its waiters.
    pending: Mutex<Pending>,
    /// Raw handle kept for `shutdown`, which unblocks the reader thread.
    stream: TcpStream,
}

struct Pending {
    waiters: HashMap<u64, mpsc::Sender<Resolution>>,
    /// Why the connection died, once it has. Sends after death fail fast.
    dead: Option<String>,
}

impl Conn {
    /// Dials the peer, performs the (untagged) version handshake, and
    /// spawns the reader thread for this generation.
    fn dial(peer: SocketAddr) -> ServiceResult<Arc<Self>> {
        let stream = TcpStream::connect(peer)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream.try_clone()?);
        writeln!(writer, "PING")?;
        writer.flush()?;
        match protocol::read_frame(&mut reader)? {
            Frame::Control(line) => match protocol::pong_version(&line) {
                Some(PROTOCOL_VERSION) => {}
                Some(other) => {
                    return Err(ServiceError::Protocol(format!(
                        "protocol version mismatch: peer speaks v{other}, this client v{PROTOCOL_VERSION}"
                    )))
                }
                None => {
                    return Err(ServiceError::Protocol(format!(
                        "unexpected handshake reply {line:?}"
                    )))
                }
            },
            other => {
                return Err(ServiceError::Protocol(format!(
                    "unexpected frame in handshake: {other:?}"
                )))
            }
        }
        let conn = Arc::new(Self {
            writer: Mutex::new(writer),
            pending: Mutex::new(Pending {
                waiters: HashMap::new(),
                dead: None,
            }),
            stream,
        });
        let for_reader = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("mux-reader".to_string())
            .spawn(move || for_reader.reader_loop(reader))
            .map_err(|e| ServiceError::Io(format!("spawn mux reader: {e}")))?;
        Ok(conn)
    }

    /// Routes tagged frames to their waiters until the connection dies or
    /// violates the protocol, then fails every remaining waiter.
    fn reader_loop(self: Arc<Self>, mut reader: BufReader<TcpStream>) {
        loop {
            match protocol::read_tagged_frame(&mut reader) {
                Ok((Some(id), resolution)) => {
                    let waiter = self.lock_pending().waiters.remove(&id);
                    match waiter {
                        // A dropped receiver (abandoned waiter) is fine.
                        Some(tx) => drop(tx.send(resolution)),
                        None => {
                            self.poison(format!(
                                "frame for unknown or already-answered request id {id}"
                            ));
                            return;
                        }
                    }
                }
                Ok((None, _)) => {
                    self.poison("untagged frame on a multiplexed connection".to_string());
                    return;
                }
                Err(err) => {
                    self.poison(err.to_string());
                    return;
                }
            }
        }
    }

    fn lock_pending(&self) -> std::sync::MutexGuard<'_, Pending> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Marks the connection dead and fails every in-flight request with a
    /// transport error. Idempotent; the first cause wins.
    fn poison(&self, why: String) {
        let mut pending = self.lock_pending();
        let why = pending.dead.get_or_insert(why).clone();
        for (_, tx) in pending.waiters.drain() {
            let _ = tx.send(Err(ServiceError::Io(format!("connection failed: {why}"))));
        }
        drop(pending);
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Registers `id` and writes its tagged request line (registration
    /// first, so the response cannot race the table entry).
    fn send(&self, id: u64, line: &str) -> ServiceResult<mpsc::Receiver<Resolution>> {
        let (tx, rx) = mpsc::channel();
        {
            let mut pending = self.lock_pending();
            if let Some(why) = &pending.dead {
                return Err(ServiceError::Io(format!("connection failed: {why}")));
            }
            pending.waiters.insert(id, tx);
        }
        let result = (|| {
            let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            writeln!(w, "@{id} {line}")?;
            w.flush()
        })();
        if let Err(err) = result {
            self.lock_pending().waiters.remove(&id);
            self.poison(err.to_string());
            return Err(ServiceError::Io(err.to_string()));
        }
        Ok(rx)
    }

    /// Registers every id and writes the whole batch under one writer lock
    /// with a single flush — the scatter path's per-shard coalescing.
    fn send_batch(
        &self,
        requests: &[(u64, &str)],
    ) -> ServiceResult<Vec<mpsc::Receiver<Resolution>>> {
        let mut rxs = Vec::with_capacity(requests.len());
        {
            let mut pending = self.lock_pending();
            if let Some(why) = &pending.dead {
                return Err(ServiceError::Io(format!("connection failed: {why}")));
            }
            for (id, _) in requests {
                let (tx, rx) = mpsc::channel();
                pending.waiters.insert(*id, tx);
                rxs.push(rx);
            }
        }
        let result = (|| {
            let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            for (id, line) in requests {
                writeln!(w, "@{id} {line}")?;
            }
            w.flush()
        })();
        if let Err(err) = result {
            {
                let mut pending = self.lock_pending();
                for (id, _) in requests {
                    pending.waiters.remove(id);
                }
            }
            self.poison(err.to_string());
            return Err(ServiceError::Io(err.to_string()));
        }
        Ok(rxs)
    }
}

struct MuxInner {
    peer: SocketAddr,
    reconnect: AtomicBool,
    /// Monotonic id source; never reset, so ids are unique across
    /// reconnect generations for the lifetime of the client.
    next_id: AtomicU64,
    conn: Mutex<Option<Arc<Conn>>>,
}

impl MuxInner {
    /// Returns the live connection, dialing one if none exists yet (or the
    /// previous one died).
    fn live_conn(&self) -> ServiceResult<Arc<Conn>> {
        let mut guard = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(conn) = guard.as_ref() {
            if conn.lock_pending().dead.is_none() {
                return Ok(Arc::clone(conn));
            }
        }
        let fresh = Conn::dial(self.peer)?;
        *guard = Some(Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Replaces a failed generation, dialing with the bounded backoff
    /// schedule. If another caller already reconnected, reuses its
    /// connection without dialing again.
    fn reconnect_conn(&self, failed: &Arc<Conn>) -> ServiceResult<Arc<Conn>> {
        let mut guard = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(conn) = guard.as_ref() {
            if !Arc::ptr_eq(conn, failed) && conn.lock_pending().dead.is_none() {
                return Ok(Arc::clone(conn));
            }
        }
        let mut last = None;
        for backoff in RECONNECT_BACKOFF {
            std::thread::sleep(backoff);
            match Conn::dial(self.peer) {
                Ok(fresh) => {
                    *guard = Some(Arc::clone(&fresh));
                    return Ok(fresh);
                }
                // A version mismatch will not heal; fail fast.
                Err(e @ ServiceError::Protocol(_)) => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| ServiceError::Io("reconnect failed".to_string())))
    }
}

impl Drop for MuxInner {
    fn drop(&mut self) {
        if let Ok(mut guard) = self.conn.lock() {
            if let Some(conn) = guard.take() {
                // Unblocks the reader thread so it can exit and release its
                // Arc; without this the socket would linger until process
                // exit.
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// A pipelined, multiplexed MaskSearch client. Cheaply cloneable; clones
/// share one connection (and one id space), so any number of threads can
/// issue requests concurrently.
#[derive(Clone)]
pub struct MuxClient {
    inner: Arc<MuxInner>,
}

/// An in-flight multiplexed request. [`MuxPending::wait`] blocks for the
/// response and applies the bounded reconnect-and-resend policy.
#[must_use = "a pending request resolves only when waited on"]
pub struct MuxPending {
    client: MuxClient,
    line: String,
    sent: ServiceResult<(Arc<Conn>, mpsc::Receiver<Resolution>)>,
}

impl MuxClient {
    /// Connects to a server and performs the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> ServiceResult<Self> {
        let peer = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServiceError::Io("no address to connect to".to_string()))?;
        let inner = Arc::new(MuxInner {
            peer,
            reconnect: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            conn: Mutex::new(None),
        });
        // Dial eagerly so a bad address or version mismatch fails here, not
        // on the first request.
        inner.live_conn()?;
        Ok(Self { inner })
    }

    /// Enables transparent reconnect-with-backoff on transport errors: one
    /// bounded resend per safe request (see the module docs). The setting
    /// is shared by every clone of this client.
    pub fn with_reconnect(self, reconnect: bool) -> Self {
        self.inner.reconnect.store(reconnect, Ordering::Relaxed);
        self
    }

    /// The address this client (re)connects to.
    pub fn peer(&self) -> SocketAddr {
        self.inner.peer
    }

    /// Allocates the next request id (unique for the client's lifetime).
    fn next_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts one request without blocking for the response.
    pub fn begin(&self, line: &str) -> MuxPending {
        let sent = match single_line(line) {
            Err(e) => Err(e),
            Ok(()) => self
                .inner
                .live_conn()
                .and_then(|conn| conn.send(self.next_id(), line).map(|rx| (conn, rx))),
        };
        MuxPending {
            client: self.clone(),
            line: line.to_string(),
            sent,
        }
    }

    /// Starts a batch of requests, written to the connection as one
    /// coalesced block with a single flush. The pendings resolve
    /// independently as their response frames arrive.
    pub fn begin_batch(&self, lines: &[String]) -> Vec<MuxPending> {
        if lines.is_empty() {
            return Vec::new();
        }
        if let Some(bad) = lines.iter().find(|l| single_line(l).is_err()) {
            return lines
                .iter()
                .map(|line| MuxPending {
                    client: self.clone(),
                    line: line.clone(),
                    sent: Err(ServiceError::Protocol(format!(
                        "request must be a single line: {bad:?}"
                    ))),
                })
                .collect();
        }
        let conn = match self.inner.live_conn() {
            Ok(conn) => conn,
            Err(e) => {
                return lines
                    .iter()
                    .map(|line| MuxPending {
                        client: self.clone(),
                        line: line.clone(),
                        sent: Err(clone_error(&e)),
                    })
                    .collect()
            }
        };
        let tagged: Vec<(u64, &str)> = lines
            .iter()
            .map(|line| (self.next_id(), line.as_str()))
            .collect();
        match conn.send_batch(&tagged) {
            Ok(rxs) => lines
                .iter()
                .zip(rxs)
                .map(|(line, rx)| MuxPending {
                    client: self.clone(),
                    line: line.clone(),
                    sent: Ok((Arc::clone(&conn), rx)),
                })
                .collect(),
            Err(e) => lines
                .iter()
                .map(|line| MuxPending {
                    client: self.clone(),
                    line: line.clone(),
                    sent: Err(clone_error(&e)),
                })
                .collect(),
        }
    }

    /// One full round trip: `begin` + `wait`.
    pub fn call(&self, line: &str) -> ServiceResult<Frame> {
        self.begin(line).wait()
    }

    /// Starts a SQL statement without blocking, wrapping mutations in a
    /// `TOKEN` envelope (see [`Client::query`](crate::Client::query)) so the
    /// bounded reconnect can resend them exactly-once. The scatter path's
    /// per-statement entry point.
    pub fn begin_query(&self, sql: &str) -> MuxPending {
        if crate::client::is_mutation_sql(sql) {
            self.begin(&format!("TOKEN {} {sql}", next_mutation_token()))
        } else {
            self.begin(sql)
        }
    }

    /// Executes a SQL statement, wrapping mutations in a `TOKEN` envelope
    /// (see [`Client::query`](crate::Client::query)) and expecting rows.
    pub fn query(&self, sql: &str) -> ServiceResult<WireResponse> {
        self.begin_query(sql).wait_rows()
    }

    /// After a transport failure on `failed`, heals the connection and —
    /// when allowed — resends the request once with a fresh id.
    fn retry(
        &self,
        failed: Option<&Arc<Conn>>,
        line: &str,
        original: ServiceError,
    ) -> ServiceResult<Frame> {
        if !self.inner.reconnect.load(Ordering::Relaxed) {
            return Err(original);
        }
        let healed = match failed {
            Some(conn) => self.inner.reconnect_conn(conn),
            None => self.inner.live_conn(),
        };
        if !resend_is_safe(line) {
            // The connection is healed for subsequent requests, but this
            // one stays ambiguous: report the transport error.
            return Err(original);
        }
        let conn = healed?;
        let rx = conn.send(self.next_id(), line)?;
        match rx.recv() {
            Ok(resolution) => resolution,
            Err(_) => Err(ServiceError::Io(
                "connection closed before response".to_string(),
            )),
        }
    }
}

impl MuxPending {
    /// Blocks for the response frame, retrying once on a fresh connection
    /// when the transport failed and the request is safe to resend.
    pub fn wait(self) -> ServiceResult<Frame> {
        match self.sent {
            Ok((conn, rx)) => {
                let resolution = rx.recv().unwrap_or_else(|_| {
                    Err(ServiceError::Io(
                        "connection closed before response".to_string(),
                    ))
                });
                match resolution {
                    Err(err @ ServiceError::Io(_)) => {
                        self.client.retry(Some(&conn), &self.line, err)
                    }
                    other => other,
                }
            }
            Err(err @ ServiceError::Io(_)) => self.client.retry(None, &self.line, err),
            Err(err) => Err(err),
        }
    }

    /// `wait`, expecting a rows frame.
    pub fn wait_rows(self) -> ServiceResult<WireResponse> {
        expect_rows(self.wait()?)
    }
}

fn expect_rows(frame: Frame) -> ServiceResult<WireResponse> {
    match frame {
        Frame::Rows(response) => Ok(response),
        other => Err(ServiceError::Protocol(format!(
            "expected rows, got {other:?}"
        ))),
    }
}

fn single_line(line: &str) -> ServiceResult<()> {
    if line.contains('\n') || line.contains('\r') {
        return Err(ServiceError::Protocol(
            "request must be a single line".to_string(),
        ));
    }
    Ok(())
}

/// `ServiceError` does not implement `Clone`; batch failures fan one error
/// out to every pending, so re-render it per waiter.
fn clone_error(e: &ServiceError) -> ServiceError {
    match e {
        ServiceError::Io(msg) => ServiceError::Io(msg.clone()),
        ServiceError::Protocol(msg) => ServiceError::Protocol(msg.clone()),
        ServiceError::Remote(msg) => ServiceError::Remote(msg.clone()),
        other => ServiceError::Io(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;

    /// Accepts one connection and completes the v6 handshake, returning the
    /// stream ready for tagged traffic.
    fn accept_handshaken(listener: &TcpListener) -> TcpStream {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "PING");
        let mut w = stream.try_clone().unwrap();
        w.write_all(format!("PONG v{PROTOCOL_VERSION}\nEND\n").as_bytes())
            .unwrap();
        stream
    }

    fn read_tagged_request(reader: &mut BufReader<TcpStream>) -> (u64, String) {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let (id, rest) = protocol::parse_tag(line.trim_end()).expect("tagged request");
        (id, rest.to_string())
    }

    #[test]
    fn pipelined_responses_route_by_tag_even_out_of_order() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let stream = accept_handshaken(&listener);
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream.try_clone().unwrap();
            // Collect the whole pipelined batch before answering anything:
            // a strict request/response server would deadlock a one-at-a-
            // time client here, which is exactly what pipelining removes.
            let requests: Vec<(u64, String)> =
                (0..3).map(|_| read_tagged_request(&mut reader)).collect();
            // Answer in reverse order; tags must still route correctly.
            for (id, request) in requests.iter().rev() {
                let mask = request.strip_prefix("LOOKUP ").unwrap();
                w.write_all(format!("@{id} OK 1\nmask {mask}\nEND\n").as_bytes())
                    .unwrap();
            }
        });
        let client = MuxClient::connect(addr).unwrap();
        let pendings: Vec<MuxPending> = (0..3)
            .map(|i| client.begin(&format!("LOOKUP {}", 100 + i)))
            .collect();
        for (i, pending) in pendings.into_iter().enumerate() {
            let rows = pending.wait_rows().unwrap();
            assert_eq!(
                rows.mask_ids(),
                vec![masksearch_core::MaskId::new(100 + i as u64)],
                "response {i} mis-routed"
            );
        }
        server.join().unwrap();
    }

    #[test]
    fn batch_is_coalesced_and_resolves_independently() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let stream = accept_handshaken(&listener);
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream.try_clone().unwrap();
            for _ in 0..4 {
                let (id, request) = read_tagged_request(&mut reader);
                if request.contains("boom") {
                    w.write_all(format!("@{id} ERR SQL error: boom\nEND\n").as_bytes())
                        .unwrap();
                } else {
                    let mask = request.strip_prefix("LOOKUP ").unwrap();
                    w.write_all(format!("@{id} OK 1\nmask {mask}\nEND\n").as_bytes())
                        .unwrap();
                }
            }
        });
        let client = MuxClient::connect(addr).unwrap();
        let lines = vec![
            "LOOKUP 1".to_string(),
            "LOOKUP boom".to_string(),
            "LOOKUP 3".to_string(),
            "LOOKUP 4".to_string(),
        ];
        let results: Vec<ServiceResult<Frame>> = client
            .begin_batch(&lines)
            .into_iter()
            .map(MuxPending::wait)
            .collect();
        assert!(matches!(results[0], Ok(Frame::Rows(_))));
        // A server-reported ERR fails only its own request.
        assert!(matches!(results[1], Err(ServiceError::Remote(_))));
        assert!(matches!(results[2], Ok(Frame::Rows(_))));
        assert!(matches!(results[3], Ok(Frame::Rows(_))));
        server.join().unwrap();
    }

    /// The satellite-3 scenario: the connection is killed mid-pipeline.
    /// Requests answered before the kill resolve normally; the rest fail
    /// over to a fresh connection with *fresh* ids (stale ids are never
    /// reused, so nothing from the dead generation can mis-deliver), and a
    /// bare mutation is not resent — its transport error surfaces.
    #[test]
    fn connection_kill_mid_pipeline_resends_safely_with_fresh_ids() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Generation 1: answer the first request, then slam the door
            // with two requests (a read and a bare mutation) in flight.
            let stream = accept_handshaken(&listener);
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream.try_clone().unwrap();
            let mut gen1_ids = Vec::new();
            let mut answered_first = false;
            for _ in 0..3 {
                let (id, request) = read_tagged_request(&mut reader);
                gen1_ids.push(id);
                if !answered_first {
                    answered_first = true;
                    let mask = request.strip_prefix("LOOKUP ").unwrap();
                    w.write_all(format!("@{id} OK 1\nmask {mask}\nEND\n").as_bytes())
                        .unwrap();
                }
            }
            drop((reader, w, stream));
            // Generation 2: only the safe read is resent, under an id never
            // seen on generation 1.
            let stream = accept_handshaken(&listener);
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream.try_clone().unwrap();
            let (id, request) = read_tagged_request(&mut reader);
            assert!(
                !gen1_ids.contains(&id),
                "request id {id} reused across reconnect generations"
            );
            let mask = request.strip_prefix("LOOKUP ").unwrap();
            w.write_all(format!("@{id} OK 1\nmask {mask}\nEND\n").as_bytes())
                .unwrap();
            // No further resends arrive: EOF, not another request.
            let mut line = String::new();
            assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0);
        });
        let client = MuxClient::connect(addr).unwrap().with_reconnect(true);
        let answered = client.begin("LOOKUP 1");
        // Give the server a beat to answer the first request before the two
        // doomed requests join the pipeline.
        let first = answered.wait_rows().unwrap();
        assert_eq!(first.mask_ids(), vec![masksearch_core::MaskId::new(1)]);
        let doomed_read = client.begin("LOOKUP 2");
        let doomed_write = client.begin("DELETE FROM masks WHERE mask_id = 9");
        match doomed_write.wait() {
            // The bare mutation must stay ambiguous: transport error, no
            // resend (the server thread asserts no second mutation arrives).
            Err(ServiceError::Io(_)) => {}
            other => panic!("expected a transport error for the mutation, got {other:?}"),
        }
        let rows = doomed_read.wait_rows().unwrap();
        assert_eq!(rows.mask_ids(), vec![masksearch_core::MaskId::new(2)]);
        drop(client);
        server.join().unwrap();
    }

    /// End-to-end over the real server: a pipelined batch of distinct
    /// queries comes back correctly routed, and untagged (v5) requests on a
    /// plain [`crate::Client`] still work against the same server.
    #[test]
    fn tagged_and_untagged_requests_share_a_real_server() {
        use masksearch_core::{Mask, MaskId, MaskRecord};
        use masksearch_query::{Session, SessionConfig};
        use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};

        let store = MemoryMaskStore::for_tests();
        let mut catalog = Catalog::new();
        for i in 0..8u64 {
            let mask = Mask::from_fn(8, 8, move |_, _| if i % 2 == 0 { 0.9 } else { 0.1 });
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(MaskRecord::builder(MaskId::new(i)).shape(8, 8).build());
        }
        let session = Session::new(
            std::sync::Arc::new(store),
            catalog,
            SessionConfig::default(),
        )
        .unwrap();
        let engine = crate::Engine::new(session, crate::ServiceConfig::new(2));
        let server = crate::Server::bind("127.0.0.1:0", engine).unwrap().spawn();

        let mux = MuxClient::connect(server.local_addr()).unwrap();
        let lines: Vec<String> = (0..8).map(|i| format!("LOOKUP {i} {}", i + 100)).collect();
        let results: Vec<WireResponse> = mux
            .begin_batch(&lines)
            .into_iter()
            .map(|p| p.wait_rows().unwrap())
            .collect();
        for (i, rows) in results.iter().enumerate() {
            assert_eq!(
                rows.mask_ids(),
                vec![MaskId::new(i as u64)],
                "batched lookup {i} mis-routed"
            );
        }
        let high = mux
            .query("SELECT mask_id FROM masks WHERE CP(mask, (0, 0, 8, 8), (0.5, 1.0)) > 0")
            .unwrap();
        assert_eq!(high.rows.len(), 4);

        // The same server still speaks v5 FIFO to a plain client.
        let mut plain = crate::Client::connect(server.local_addr()).unwrap();
        assert!(plain.ping().is_ok());
        assert_eq!(
            plain.lookup(&[MaskId::new(3)]).unwrap(),
            vec![MaskId::new(3)]
        );
        plain.quit().unwrap();
        drop(mux);
        server.shutdown();
    }

    /// A frame tagged with an id nobody is waiting on must poison the
    /// connection, not deliver to an arbitrary caller.
    #[test]
    fn unknown_tag_poisons_the_connection_instead_of_misrouting() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let stream = accept_handshaken(&listener);
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream.try_clone().unwrap();
            let (_, _) = read_tagged_request(&mut reader);
            // Answer with a stale/forged id.
            w.write_all(b"@999999 OK 1\nmask 5\nEND\n").unwrap();
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
        });
        let client = MuxClient::connect(addr).unwrap();
        match client.begin("LOOKUP 5").wait() {
            Err(ServiceError::Io(msg)) => assert!(msg.contains("unknown"), "{msg}"),
            other => panic!("expected a poisoned connection, got {other:?}"),
        }
        server.join().unwrap();
    }
}
