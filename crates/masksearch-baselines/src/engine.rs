//! The [`QueryEngine`] trait shared by every evaluated system, plus the
//! streaming brute-force evaluator the baselines are built on.

use masksearch_core::{cp, ImageId, Mask, MaskId, MaskRecord, TileStats, TiledMask};
use masksearch_query::{eval, Query, QueryError, QueryKind, QueryOutput, QueryStats, ResultRow};
use masksearch_storage::Catalog;
use std::collections::BTreeMap;
use std::time::Duration;

/// A system under evaluation: takes a [`Query`], returns rows and statistics.
pub trait QueryEngine {
    /// Short system name used in experiment output ("MaskSearch",
    /// "PostgreSQL", "TileDB", "NumPy").
    fn name(&self) -> &str;

    /// Executes a query and reports its result and cost.
    fn execute(&self, query: &Query) -> Result<EngineReport, QueryError>;
}

/// The result of running one query on one engine.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Result rows (same shape as MaskSearch's [`QueryOutput`]).
    pub output: QueryOutput,
    /// Additional modelled CPU overhead not captured by wall-clock time
    /// (e.g. the PostgreSQL per-tuple UDF cost).
    pub extra_cpu: Duration,
}

impl EngineReport {
    /// Modelled end-to-end time: wall clock + virtual I/O + modelled CPU.
    pub fn modeled_total(&self) -> Duration {
        self.output.stats.modeled_total() + self.extra_cpu
    }

    /// Convenience accessor for the statistics block.
    pub fn stats(&self) -> &QueryStats {
        &self.output.stats
    }
}

/// A streaming brute-force evaluator: feed it `(mask_id, mask)` pairs in any
/// order (only candidates are consumed) and it produces the exact query
/// answer. This is both the execution engine of the baselines and the
/// reference oracle used by integration tests.
pub struct BruteForce<'a> {
    catalog: &'a Catalog,
    query: &'a Query,
    object_box_fallback: bool,
    filter_hits: Vec<MaskId>,
    ranked: Vec<(f64, MaskId)>,
    group_values: BTreeMap<ImageId, Vec<f64>>,
    group_masks: BTreeMap<ImageId, Vec<Mask>>,
    /// Pair queries: every consumed mask per image, keyed for binding.
    pair_masks: BTreeMap<ImageId, Vec<(MaskId, Mask)>>,
    consumed: u64,
}

impl<'a> BruteForce<'a> {
    /// Creates an evaluator for one query.
    pub fn new(catalog: &'a Catalog, query: &'a Query) -> Self {
        Self {
            catalog,
            query,
            object_box_fallback: true,
            filter_hits: Vec::new(),
            ranked: Vec::new(),
            group_values: BTreeMap::new(),
            group_masks: BTreeMap::new(),
            pair_masks: BTreeMap::new(),
            consumed: 0,
        }
    }

    /// Returns `true` if the mask is targeted by the query's selection (for
    /// pair queries: by the outer selection and either join side).
    pub fn is_candidate(&self, mask_id: MaskId) -> bool {
        let Some(record) = self.catalog.get(mask_id) else {
            return false;
        };
        if !self.query.selection.matches(record) {
            return false;
        }
        match &self.query.kind {
            QueryKind::PairFilter { join, .. } | QueryKind::PairTopK { join, .. } => {
                join.left.matches(record) || join.right.matches(record)
            }
            _ => true,
        }
    }

    /// Number of candidate masks consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Consumes one mask. Non-candidates are ignored.
    pub fn consume(&mut self, mask_id: MaskId, mask: &Mask) -> Result<(), QueryError> {
        if !self.is_candidate(mask_id) {
            return Ok(());
        }
        let record = self
            .catalog
            .get(mask_id)
            .ok_or(QueryError::UnknownMask(mask_id))?;
        self.consumed += 1;
        match &self.query.kind {
            QueryKind::Filter { predicate } => {
                if eval::predicate_exact(predicate, record, mask, self.object_box_fallback)? {
                    self.filter_hits.push(mask_id);
                }
            }
            QueryKind::TopK { expr, .. } => {
                let value = eval::expr_exact(expr, record, mask, self.object_box_fallback)?;
                self.ranked.push((value, mask_id));
            }
            QueryKind::Aggregate { expr, .. } => {
                let value = eval::expr_exact(expr, record, mask, self.object_box_fallback)?;
                self.group_values
                    .entry(record.image_id)
                    .or_default()
                    .push(value);
            }
            QueryKind::MaskAggregate { .. } => {
                self.group_masks
                    .entry(record.image_id)
                    .or_default()
                    .push(mask.clone());
            }
            QueryKind::PairFilter { .. } | QueryKind::PairTopK { .. } => {
                self.pair_masks
                    .entry(record.image_id)
                    .or_default()
                    .push((mask_id, mask.clone()));
            }
        }
        Ok(())
    }

    /// Resolves pair bindings from the consumed masks and evaluates `f` on
    /// each bound pair (the load-everything reference for pair queries).
    fn each_pair(
        &self,
        join: &masksearch_query::MaskJoin,
        mut f: impl FnMut(ImageId, &MaskRecord, &MaskRecord, &Mask, &Mask) -> Result<(), QueryError>,
    ) -> Result<(), QueryError> {
        for (image, members) in &self.pair_masks {
            let bind = |side: &masksearch_query::Selection| -> Option<(&MaskId, &Mask)> {
                members
                    .iter()
                    .filter(|(id, _)| {
                        self.catalog
                            .get(*id)
                            .is_some_and(|r| self.query.selection.matches(r) && side.matches(r))
                    })
                    .min_by_key(|(id, _)| *id)
                    .map(|(id, mask)| (id, mask))
            };
            let (Some((left_id, left)), Some((right_id, right))) =
                (bind(&join.left), bind(&join.right))
            else {
                continue;
            };
            let left_rec = self
                .catalog
                .get(*left_id)
                .ok_or(QueryError::UnknownMask(*left_id))?;
            let right_rec = self
                .catalog
                .get(*right_id)
                .ok_or(QueryError::UnknownMask(*right_id))?;
            f(*image, left_rec, right_rec, left, right)?;
        }
        Ok(())
    }

    /// Finishes evaluation and produces the result rows.
    pub fn finish(mut self) -> Result<Vec<ResultRow>, QueryError> {
        match &self.query.kind {
            QueryKind::Filter { .. } => {
                self.filter_hits.sort_unstable();
                Ok(self
                    .filter_hits
                    .into_iter()
                    .map(|id| ResultRow::mask(id, None))
                    .collect())
            }
            QueryKind::TopK { k, order, .. } => {
                sort_ranked(&mut self.ranked, *order, *k);
                Ok(self
                    .ranked
                    .into_iter()
                    .map(|(v, id)| ResultRow::mask(id, Some(v)))
                    .collect())
            }
            QueryKind::Aggregate {
                agg, having, top_k, ..
            } => {
                let mut rows: Vec<(f64, ImageId)> = self
                    .group_values
                    .iter()
                    .map(|(image, values)| (agg.apply(values), *image))
                    .collect();
                Ok(finish_grouped(&mut rows, *having, *top_k))
            }
            QueryKind::MaskAggregate {
                agg,
                term,
                having,
                top_k,
            } => {
                let mut rows: Vec<(f64, ImageId)> = Vec::new();
                for (image, masks) in &self.group_masks {
                    let refs: Vec<&Mask> = masks.iter().collect();
                    let aggregated = agg.apply(&refs)?;
                    let first_id = self
                        .catalog
                        .masks_of_image(*image)
                        .into_iter()
                        .next()
                        .ok_or_else(|| QueryError::invalid("empty image group"))?;
                    let record = self
                        .catalog
                        .get(first_id)
                        .ok_or(QueryError::UnknownMask(first_id))?;
                    let roi = eval::resolve_roi(term, record, self.object_box_fallback)?;
                    let value = cp(&aggregated, &roi, &term.range) as f64;
                    rows.push((value, *image));
                }
                Ok(finish_grouped(&mut rows, *having, *top_k))
            }
            QueryKind::PairFilter { join, predicate } => {
                let opts = eval::VerifyOptions {
                    object_box_fallback: self.object_box_fallback,
                    use_tiled_kernel: false,
                };
                let mut hits: Vec<ImageId> = Vec::new();
                self.each_pair(join, |image, left_rec, right_rec, left, right| {
                    let records = eval::PairRecords {
                        left: left_rec,
                        right: right_rec,
                    };
                    let left = TiledMask::from_mask(left.clone());
                    let right = TiledMask::from_mask(right.clone());
                    let mut tiles = TileStats::default();
                    if eval::pair_predicate_exact_tiled(
                        predicate, &records, &left, &right, &opts, &mut tiles,
                    )? {
                        hits.push(image);
                    }
                    Ok(())
                })?;
                hits.sort_unstable();
                Ok(hits
                    .into_iter()
                    .map(|id| ResultRow::image(id, None))
                    .collect())
            }
            QueryKind::PairTopK {
                join,
                expr,
                k,
                order,
            } => {
                let opts = eval::VerifyOptions {
                    object_box_fallback: self.object_box_fallback,
                    use_tiled_kernel: false,
                };
                let mut rows: Vec<(f64, ImageId)> = Vec::new();
                self.each_pair(join, |image, left_rec, right_rec, left, right| {
                    let records = eval::PairRecords {
                        left: left_rec,
                        right: right_rec,
                    };
                    let left = TiledMask::from_mask(left.clone());
                    let right = TiledMask::from_mask(right.clone());
                    let mut tiles = TileStats::default();
                    let mut value = eval::pair_expr_exact_tiled(
                        expr, &records, &left, &right, &opts, &mut tiles,
                    )?;
                    if value.is_nan() {
                        value = match order {
                            masksearch_query::Order::Desc => f64::NEG_INFINITY,
                            masksearch_query::Order::Asc => f64::INFINITY,
                        };
                    }
                    rows.push((value, image));
                    Ok(())
                })?;
                sort_ranked(&mut rows, *order, *k);
                Ok(rows
                    .into_iter()
                    .map(|(v, id)| ResultRow::image(id, Some(v)))
                    .collect())
            }
        }
    }
}

fn finish_grouped(
    rows: &mut Vec<(f64, ImageId)>,
    having: Option<(masksearch_query::CmpOp, f64)>,
    top_k: Option<(usize, masksearch_query::Order)>,
) -> Vec<ResultRow> {
    if let Some((op, threshold)) = having {
        rows.retain(|(v, _)| op.eval(*v, threshold));
    }
    if let Some((k, order)) = top_k {
        sort_ranked(rows, order, k);
        rows.iter()
            .map(|(v, id)| ResultRow::image(*id, Some(*v)))
            .collect()
    } else {
        rows.sort_by_key(|(_, id)| *id);
        rows.iter()
            .map(|(v, id)| ResultRow::image(*id, Some(*v)))
            .collect()
    }
}

/// Sorts `(value, key)` pairs under `order` with an ascending key tie-break
/// and truncates to `k`.
pub fn sort_ranked<K: Ord + Copy>(
    rows: &mut Vec<(f64, K)>,
    order: masksearch_query::Order,
    k: usize,
) {
    rows.sort_by(|a, b| {
        let cmp = match order {
            masksearch_query::Order::Desc => b.0.partial_cmp(&a.0),
            masksearch_query::Order::Asc => a.0.partial_cmp(&b.0),
        }
        .unwrap_or(std::cmp::Ordering::Equal);
        cmp.then_with(|| a.1.cmp(&b.1))
    });
    rows.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{MaskRecord, PixelRange, Roi};
    use masksearch_query::Order;

    fn catalog_and_masks(n: u64) -> (Catalog, Vec<(MaskId, Mask)>) {
        let mut catalog = Catalog::new();
        let mut masks = Vec::new();
        for i in 0..n {
            let mask = Mask::from_fn(16, 16, move |x, y| {
                if x < (i as u32 % 16) && y < 8 {
                    0.9
                } else {
                    0.1
                }
            });
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i / 2))
                    .shape(16, 16)
                    .object_box(Roi::new(0, 0, 8, 8).unwrap())
                    .build(),
            );
            masks.push((MaskId::new(i), mask));
        }
        (catalog, masks)
    }

    #[test]
    fn brute_force_filter_counts_candidates_only() {
        let (catalog, masks) = catalog_and_masks(10);
        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.5, 1.0).unwrap(),
            20.0,
        )
        .with_selection(
            masksearch_query::Selection::all().with_mask_ids((0..5).map(MaskId::new).collect()),
        );
        let mut bf = BruteForce::new(&catalog, &query);
        for (id, mask) in &masks {
            bf.consume(*id, mask).unwrap();
        }
        assert_eq!(bf.consumed(), 5);
        let rows = bf.finish().unwrap();
        // Masks 0..5 have (i%16)*8 high pixels: > 20 needs i >= 3.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn brute_force_topk_and_aggregate() {
        let (catalog, masks) = catalog_and_masks(8);
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let roi = Roi::new(0, 0, 16, 16).unwrap();

        let query = Query::top_k_cp(roi, range, 3, Order::Desc);
        let mut bf = BruteForce::new(&catalog, &query);
        for (id, mask) in &masks {
            bf.consume(*id, mask).unwrap();
        }
        let rows = bf.finish().unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].value.unwrap() >= rows[1].value.unwrap());

        let query = masksearch_query::Query::aggregate(
            masksearch_query::Expr::cp(roi, range),
            masksearch_query::ScalarAgg::Sum,
        );
        let mut bf = BruteForce::new(&catalog, &query);
        for (id, mask) in &masks {
            bf.consume(*id, mask).unwrap();
        }
        let rows = bf.finish().unwrap();
        assert_eq!(rows.len(), 4); // 8 masks, 2 per image
    }

    #[test]
    fn unknown_masks_are_ignored() {
        let (catalog, _) = catalog_and_masks(2);
        let query = Query::filter_cp_gt(Roi::new(0, 0, 16, 16).unwrap(), PixelRange::full(), 0.0);
        let mut bf = BruteForce::new(&catalog, &query);
        assert!(!bf.is_candidate(MaskId::new(99)));
        bf.consume(MaskId::new(99), &Mask::zeros(16, 16)).unwrap();
        assert_eq!(bf.consumed(), 0);
    }
}
