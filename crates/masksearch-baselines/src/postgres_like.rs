//! The PostgreSQL-like baseline: a sequential heap scan with a per-tuple UDF.
//!
//! PostgreSQL stores each mask as a 2-D array column; evaluating the `CP`
//! UDF requires a sequential scan that reads **every** tuple in the relation
//! — including masks the `WHERE` clause will discard — and pays a fixed
//! per-tuple execution overhead (tuple deforming + UDF invocation).

use crate::engine::{BruteForce, EngineReport, QueryEngine};
use masksearch_query::{Query, QueryError, QueryOutput, QueryStats};
use masksearch_storage::{Catalog, RowStore};
use std::time::Instant;

/// PostgreSQL-like execution over a heap file of mask tuples.
pub struct PostgresEngine {
    heap: RowStore,
    catalog: Catalog,
}

impl PostgresEngine {
    /// Creates the engine over a populated heap file and its catalog.
    pub fn new(heap: RowStore, catalog: Catalog) -> Self {
        Self { heap, catalog }
    }

    /// The heap file backing this engine.
    pub fn heap(&self) -> &RowStore {
        &self.heap
    }
}

impl QueryEngine for PostgresEngine {
    fn name(&self) -> &str {
        "PostgreSQL"
    }

    fn execute(&self, query: &Query) -> Result<EngineReport, QueryError> {
        let start = Instant::now();
        let io_before = self.heap.io_stats().snapshot();
        let mut bf = BruteForce::new(&self.catalog, query);
        let mut candidates = 0u64;
        // A sequential scan visits every tuple; the brute-force evaluator
        // discards non-candidates after the tuple has been read (exactly what
        // a WHERE clause on metadata does without an index).
        let mut scan_error: Option<QueryError> = None;
        let report = self.heap.scan(|mask_id, mask| {
            if scan_error.is_some() {
                return Ok(());
            }
            if bf.is_candidate(mask_id) {
                candidates += 1;
                if let Err(e) = bf.consume(mask_id, &mask) {
                    scan_error = Some(e);
                }
            }
            Ok(())
        })?;
        if let Some(e) = scan_error {
            return Err(e);
        }
        let rows = bf.finish()?;
        let io_delta = self.heap.io_stats().snapshot().delta_since(&io_before);
        let stats = QueryStats {
            candidates,
            verified: candidates,
            masks_loaded: io_delta.masks_loaded,
            bytes_read: io_delta.bytes_read,
            io_virtual: io_delta.virtual_io(),
            total_wall: start.elapsed(),
            ..Default::default()
        };
        Ok(EngineReport {
            output: QueryOutput { rows, stats },
            extra_cpu: report.total_overhead(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{ImageId, Mask, MaskId, MaskRecord, ModelId, PixelRange, Roi};
    use masksearch_query::Selection;
    use masksearch_storage::DiskProfile;

    fn db(n: u64) -> PostgresEngine {
        let path = std::env::temp_dir().join(format!(
            "masksearch-pg-test-{}-{}.heap",
            n,
            std::process::id()
        ));
        let mut heap = RowStore::create(&path, DiskProfile::unthrottled()).unwrap();
        let mut catalog = Catalog::new();
        for i in 0..n {
            let mask = Mask::from_fn(
                16,
                16,
                move |x, _| {
                    if x < (i as u32 % 16) {
                        0.9
                    } else {
                        0.1
                    }
                },
            );
            heap.append(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i))
                    .model_id(ModelId::new(1 + i % 2))
                    .shape(16, 16)
                    .build(),
            );
        }
        PostgresEngine::new(heap, catalog)
    }

    #[test]
    fn postgres_engine_scans_the_whole_heap_even_with_a_selection() {
        let engine = db(10);
        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.5, 1.0).unwrap(),
            32.0,
        )
        .with_selection(Selection::all().with_model(ModelId::new(1)));
        let report = engine.execute(&query).unwrap();
        // Only model-1 masks are candidates...
        assert_eq!(report.stats().candidates, 5);
        // ...but the heap scan reads every tuple.
        assert_eq!(report.stats().masks_loaded, 10);
        assert!(report.extra_cpu > std::time::Duration::ZERO);
        assert_eq!(engine.name(), "PostgreSQL");
    }
}
