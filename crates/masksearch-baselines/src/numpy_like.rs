//! The NumPy-like baseline: one array file per mask, every targeted mask
//! loaded for every query.
//!
//! This is the strongest simple baseline in the paper (and the one used as
//! the reference in the multi-query workload experiment, Figure 11): it does
//! no unnecessary work beyond loading each targeted mask once and evaluating
//! the query with vectorised scans, so its cost is exactly
//! `masks × (read + evaluate)`.

use crate::engine::{BruteForce, EngineReport, QueryEngine};
use masksearch_query::{Query, QueryError, QueryOutput, QueryStats};
use masksearch_storage::{Catalog, MaskStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// NumPy-like execution over an object store of per-mask files.
pub struct NumpyEngine {
    store: Arc<dyn MaskStore>,
    catalog: Catalog,
}

impl NumpyEngine {
    /// Creates the engine over a store and its catalog.
    pub fn new(store: Arc<dyn MaskStore>, catalog: Catalog) -> Self {
        Self { store, catalog }
    }

    /// The catalog backing this engine.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

impl QueryEngine for NumpyEngine {
    fn name(&self) -> &str {
        "NumPy"
    }

    fn execute(&self, query: &Query) -> Result<EngineReport, QueryError> {
        let start = Instant::now();
        let io_before = self.store.io_stats().snapshot();
        let mut bf = BruteForce::new(&self.catalog, query);
        let mut candidates = 0u64;
        for mask_id in self.catalog.mask_ids() {
            if !bf.is_candidate(mask_id) {
                continue;
            }
            candidates += 1;
            let mask = self.store.get(mask_id)?;
            bf.consume(mask_id, &mask)?;
        }
        let rows = bf.finish()?;
        let io_delta = self.store.io_stats().snapshot().delta_since(&io_before);
        let stats = QueryStats {
            candidates,
            verified: candidates,
            masks_loaded: io_delta.masks_loaded,
            bytes_read: io_delta.bytes_read,
            io_virtual: io_delta.virtual_io(),
            total_wall: start.elapsed(),
            ..Default::default()
        };
        Ok(EngineReport {
            output: QueryOutput { rows, stats },
            extra_cpu: Duration::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{ImageId, Mask, MaskId, MaskRecord, PixelRange, Roi};
    use masksearch_storage::MemoryMaskStore;

    fn db(n: u64) -> (Arc<dyn MaskStore>, Catalog) {
        let store = MemoryMaskStore::for_tests();
        let mut catalog = Catalog::new();
        for i in 0..n {
            let mask = Mask::from_fn(
                16,
                16,
                move |x, _| {
                    if x < (i as u32 % 16) {
                        0.9
                    } else {
                        0.1
                    }
                },
            );
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i))
                    .shape(16, 16)
                    .build(),
            );
        }
        (Arc::new(store), catalog)
    }

    #[test]
    fn numpy_engine_loads_every_candidate() {
        let (store, catalog) = db(12);
        let engine = NumpyEngine::new(store, catalog);
        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.5, 1.0).unwrap(),
            64.0,
        );
        let report = engine.execute(&query).unwrap();
        assert_eq!(report.stats().candidates, 12);
        assert_eq!(report.stats().masks_loaded, 12);
        assert!((report.stats().fml() - 1.0).abs() < 1e-12);
        // Masks with (i % 16) > 4 columns of high pixels pass (5*16=80 > 64).
        assert_eq!(report.output.rows.len(), 7);
        assert_eq!(engine.name(), "NumPy");
    }
}
