//! Helpers that copy a generated dataset into the baseline-specific storage
//! layouts (heap file for PostgreSQL-like, dense array for TileDB-like).

use masksearch_core::MaskId;
use masksearch_storage::{ArrayStore, DiskProfile, MaskStore, RowStore, StorageResult};
use std::path::Path;

/// Copies every mask of `store` into a new PostgreSQL-like heap file at
/// `path`, in ascending mask-id order.
pub fn copy_to_row_store(
    store: &dyn MaskStore,
    path: impl AsRef<Path>,
    profile: DiskProfile,
) -> StorageResult<RowStore> {
    let mut heap = RowStore::create(path.as_ref(), profile)?;
    for mask_id in store.ids() {
        let mask = store.get(mask_id)?;
        heap.append(mask_id, &mask)?;
    }
    // Ingestion I/O should not be attributed to subsequent queries.
    heap.io_stats().reset();
    Ok(heap)
}

/// Copies every mask of `store` into a new TileDB-like dense array at
/// `path`. All masks must share the same shape (they do for the paper's
/// datasets); the shape is taken from the first mask.
pub fn copy_to_array_store(
    store: &dyn MaskStore,
    path: impl AsRef<Path>,
    profile: DiskProfile,
) -> StorageResult<ArrayStore> {
    let ids = store.ids();
    let first = ids.first().copied().unwrap_or(MaskId::new(0));
    let (width, height) = if store.is_empty() {
        (1, 1)
    } else {
        let mask = store.get(first)?;
        mask.shape()
    };
    let mut array = ArrayStore::create(path.as_ref(), width, height, profile)?;
    for mask_id in ids {
        let mask = store.get(mask_id)?;
        array.append(mask_id, &mask)?;
    }
    array.flush_directory()?;
    array.io_stats().reset();
    Ok(array)
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::Mask;
    use masksearch_storage::MemoryMaskStore;

    fn populated(n: u64) -> MemoryMaskStore {
        let store = MemoryMaskStore::for_tests();
        for i in 0..n {
            let mask = Mask::from_fn(8, 8, move |x, y| ((x + y + i as u32) % 5) as f32 / 5.0);
            store.put(MaskId::new(i), &mask).unwrap();
        }
        store
    }

    #[test]
    fn round_trips_into_both_layouts() {
        let store = populated(6);
        let base = std::env::temp_dir().join(format!("masksearch-ingest-{}", std::process::id()));
        let heap_path = base.with_extension("heap");
        let array_path = base.with_extension("arr");

        let heap = copy_to_row_store(&store, &heap_path, DiskProfile::unthrottled()).unwrap();
        assert_eq!(heap.len(), 6);
        assert_eq!(
            heap.get(MaskId::new(3)).unwrap(),
            store.get(MaskId::new(3)).unwrap()
        );
        assert_eq!(heap.io_stats().read_ops(), 1); // only the verification read above

        let array = copy_to_array_store(&store, &array_path, DiskProfile::unthrottled()).unwrap();
        assert_eq!(array.len(), 6);
        assert_eq!(
            array.get(MaskId::new(5)).unwrap(),
            store.get(MaskId::new(5)).unwrap()
        );

        let _ = std::fs::remove_file(&heap_path);
        let _ = std::fs::remove_file(&array_path);
        let _ = std::fs::remove_file(format!("{}.dir", array_path.display()));
    }
}
