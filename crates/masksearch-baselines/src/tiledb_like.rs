//! The TileDB-like baseline: a single dense 3-D array of masks.
//!
//! With one tile per mask (the configuration the paper found fastest), a
//! query whose ROI is constant across masks can stream the array
//! sequentially in large chunks, fully utilising disk bandwidth — so TileDB
//! matches the other baselines on Q1/Q3. When the ROI is mask-specific
//! (`roi = object`, Q2/Q4/Q5) the engine must issue one random read per
//! mask, under-utilising bandwidth, which is why the paper measures TileDB
//! as the slowest system on those queries.

use crate::engine::{BruteForce, EngineReport, QueryEngine};
use masksearch_query::{Query, QueryError, QueryOutput, QueryStats};
use masksearch_storage::{ArrayStore, Catalog};
use std::time::{Duration, Instant};

/// Number of masks read per sequential chunk when the access pattern allows
/// streaming.
const SEQUENTIAL_CHUNK_MASKS: usize = 64;

/// TileDB-like execution over a dense array store.
pub struct TileDbEngine {
    array: ArrayStore,
    catalog: Catalog,
}

impl TileDbEngine {
    /// Creates the engine over a populated array store and its catalog.
    pub fn new(array: ArrayStore, catalog: Catalog) -> Self {
        Self { array, catalog }
    }

    /// The array store backing this engine.
    pub fn array(&self) -> &ArrayStore {
        &self.array
    }
}

impl QueryEngine for TileDbEngine {
    fn name(&self) -> &str {
        "TileDB"
    }

    fn execute(&self, query: &Query) -> Result<EngineReport, QueryError> {
        let start = Instant::now();
        let io_before = self.array.io_stats().snapshot();
        let mut bf = BruteForce::new(&self.catalog, query);
        let mut candidates = 0u64;

        let mask_specific_roi = query.roi_specs().iter().any(|spec| spec.is_mask_specific());

        if mask_specific_roi {
            // Per-mask random reads: the same region cannot be sliced across
            // masks because every mask has its own ROI.
            for mask_id in self.catalog.mask_ids() {
                if !bf.is_candidate(mask_id) {
                    continue;
                }
                candidates += 1;
                let mask = self.array.get(mask_id)?;
                bf.consume(mask_id, &mask)?;
            }
        } else {
            // Constant ROI: stream the array sequentially in large chunks.
            let mut scan_error: Option<QueryError> = None;
            self.array
                .scan_sequential(SEQUENTIAL_CHUNK_MASKS, |mask_id, mask| {
                    if scan_error.is_some() {
                        return Ok(());
                    }
                    if bf.is_candidate(mask_id) {
                        candidates += 1;
                        if let Err(e) = bf.consume(mask_id, &mask) {
                            scan_error = Some(e);
                        }
                    }
                    Ok(())
                })?;
            if let Some(e) = scan_error {
                return Err(e);
            }
        }

        let rows = bf.finish()?;
        let io_delta = self.array.io_stats().snapshot().delta_since(&io_before);
        let stats = QueryStats {
            candidates,
            verified: candidates,
            masks_loaded: io_delta.masks_loaded,
            bytes_read: io_delta.bytes_read,
            io_virtual: io_delta.virtual_io(),
            total_wall: start.elapsed(),
            ..Default::default()
        };
        Ok(EngineReport {
            output: QueryOutput { rows, stats },
            extra_cpu: Duration::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{ImageId, Mask, MaskId, MaskRecord, PixelRange, Roi};
    use masksearch_query::{Expr, Predicate};
    use masksearch_storage::DiskProfile;
    use std::path::PathBuf;

    fn db(n: u64, name: &str) -> (TileDbEngine, PathBuf) {
        let path = std::env::temp_dir().join(format!(
            "masksearch-tiledb-test-{}-{}.arr",
            name,
            std::process::id()
        ));
        let mut array = ArrayStore::create(&path, 16, 16, DiskProfile::ebs_gp3()).unwrap();
        let mut catalog = Catalog::new();
        for i in 0..n {
            let mask = Mask::from_fn(
                16,
                16,
                move |x, _| {
                    if x < (i as u32 % 16) {
                        0.9
                    } else {
                        0.1
                    }
                },
            );
            array.append(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i))
                    .shape(16, 16)
                    .object_box(Roi::new(0, 0, 8, 8).unwrap())
                    .build(),
            );
        }
        (TileDbEngine::new(array, catalog), path)
    }

    #[test]
    fn constant_roi_uses_sequential_chunked_reads() {
        let (engine, path) = db(100, "seq");
        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.5, 1.0).unwrap(),
            64.0,
        );
        let report = engine.execute(&query).unwrap();
        assert_eq!(report.stats().masks_loaded, 100);
        // 100 masks in chunks of 64 -> 2 read operations.
        let ops = engine.array.io_stats().read_ops();
        assert_eq!(ops, 2);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{}.dir", path.display()));
    }

    #[test]
    fn mask_specific_roi_falls_back_to_per_mask_reads() {
        let (engine, path) = db(50, "rand");
        let query = Query::filter(Predicate::gt(
            Expr::cp_object(PixelRange::new(0.5, 1.0).unwrap()),
            10.0,
        ));
        let report = engine.execute(&query).unwrap();
        assert_eq!(report.stats().masks_loaded, 50);
        // One read operation per mask.
        assert_eq!(engine.array.io_stats().read_ops(), 50);
        // The per-operation latency makes this costlier than a sequential
        // scan of the same bytes.
        let sequential_cost = DiskProfile::ebs_gp3().read_cost(report.stats().bytes_read, 1);
        assert!(report.stats().io_virtual > sequential_cost);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{}.dir", path.display()));
    }
}
