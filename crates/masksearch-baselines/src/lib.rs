//! # masksearch-baselines
//!
//! The comparison systems of the paper's evaluation (§4.1), re-implemented
//! over the shared storage substrate and disk cost model so that the
//! comparison *shape* (who wins, by what factor, where the crossovers fall)
//! is faithful:
//!
//! * [`NumpyEngine`] — "masks stored as NumPy arrays on disk": loads every
//!   targeted mask from the object store and evaluates the query with
//!   vectorised full scans.
//! * [`PostgresEngine`] — "masks stored as 2-D arrays in a column, `CP` as a
//!   C UDF": a sequential heap scan that reads **every** tuple (not just the
//!   targeted ones) and pays a per-tuple UDF overhead.
//! * [`TileDbEngine`] — "masks stored as one 3-D dense array": sequential
//!   chunked scans when the query's ROI is constant across masks, but
//!   per-mask random reads when the ROI is mask-specific (which is exactly
//!   why the paper observes TileDB losing on Q2/Q4/Q5).
//! * [`MaskSearchEngine`] — an adapter putting a
//!   [`Session`](masksearch_query::Session) behind the same [`QueryEngine`]
//!   trait so the experiment harness can treat all four systems uniformly.
//!
//! All engines produce exact (not approximate) results; every one of them is
//! tested to return byte-identical result sets to MaskSearch's
//! filter–verification executor.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod ingest;
pub mod masksearch_engine;
pub mod numpy_like;
pub mod postgres_like;
pub mod tiledb_like;

pub use engine::{BruteForce, EngineReport, QueryEngine};
pub use ingest::{copy_to_array_store, copy_to_row_store};
pub use masksearch_engine::MaskSearchEngine;
pub use numpy_like::NumpyEngine;
pub use postgres_like::PostgresEngine;
pub use tiledb_like::TileDbEngine;
