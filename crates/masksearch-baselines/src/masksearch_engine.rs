//! Adapter exposing a MaskSearch [`Session`] through the [`QueryEngine`]
//! trait, so the experiment harness can run MaskSearch and the baselines
//! through one interface.

use crate::engine::{EngineReport, QueryEngine};
use masksearch_query::{Query, QueryError, Session};
use std::time::Duration;

/// MaskSearch (a [`Session`]) behind the common engine interface.
pub struct MaskSearchEngine {
    session: Session,
    name: String,
}

impl MaskSearchEngine {
    /// Wraps a session under the default name "MaskSearch".
    pub fn new(session: Session) -> Self {
        Self {
            session,
            name: "MaskSearch".to_string(),
        }
    }

    /// Wraps a session under a custom display name (e.g. "MS-II" for the
    /// incremental-indexing configuration of Figure 11).
    pub fn with_name(session: Session, name: impl Into<String>) -> Self {
        Self {
            session,
            name: name.into(),
        }
    }

    /// The wrapped session.
    pub fn session(&self) -> &Session {
        &self.session
    }
}

impl QueryEngine for MaskSearchEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&self, query: &Query) -> Result<EngineReport, QueryError> {
        let output = self.session.execute(query)?;
        Ok(EngineReport {
            output,
            extra_cpu: Duration::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{ImageId, Mask, MaskId, MaskRecord, PixelRange, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_query::{IndexingMode, SessionConfig};
    use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
    use std::sync::Arc;

    #[test]
    fn adapter_reports_session_results() {
        let store = MemoryMaskStore::for_tests();
        let mut catalog = Catalog::new();
        for i in 0..6u64 {
            let mask = Mask::from_fn(16, 16, move |x, _| if x < i as u32 { 0.9 } else { 0.1 });
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i))
                    .shape(16, 16)
                    .build(),
            );
        }
        let session = Session::new(
            Arc::new(store) as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap()).indexing_mode(IndexingMode::Eager),
        )
        .unwrap();
        let engine = MaskSearchEngine::with_name(session, "MS");
        assert_eq!(engine.name(), "MS");
        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.5, 1.0).unwrap(),
            40.0,
        );
        let report = engine.execute(&query).unwrap();
        assert_eq!(report.output.rows.len(), 3);
        assert!(report.modeled_total() >= report.stats().total_wall);
    }
}
