//! Abstract syntax tree of the MaskSearch SQL dialect.

use masksearch_core::MaskOp;

/// How the ROI argument of a `CP` call is written.
#[derive(Debug, Clone, PartialEq)]
pub enum RoiExpr {
    /// `(x0, y0, x1, y1)` — half-open pixel coordinates.
    Box {
        /// Left edge (inclusive).
        x0: u32,
        /// Top edge (inclusive).
        y0: u32,
        /// Right edge (exclusive).
        x1: u32,
        /// Bottom edge (exclusive).
        y1: u32,
    },
    /// `object` — the per-mask foreground-object box.
    Object,
    /// `full` — the whole mask.
    Full,
}

/// The first argument of a `CP` call: the plain mask, an aggregation over
/// the group's masks (`INTERSECT(mask > t)` / `UNION(mask > t)` /
/// `MEAN(mask)`), a join-qualified mask (`a.mask`), or a pixelwise
/// composition of the two joined masks (`DIFF(a.mask, b.mask)`).
#[derive(Debug, Clone, PartialEq)]
pub enum MaskArg {
    /// `mask` — the per-mask column.
    Plain,
    /// `INTERSECT(mask > threshold)`.
    Intersect {
        /// The threshold applied before intersecting.
        threshold: f64,
    },
    /// `UNION(mask > threshold)`.
    Union {
        /// The threshold applied before the union.
        threshold: f64,
    },
    /// `MEAN(mask)` — per-pixel mean of the group's masks.
    Mean,
    /// `<alias>.mask` — one side of a self-join (pair query).
    Qualified(String),
    /// `INTERSECT(a.mask, b.mask)` / `UNION(..)` / `DIFF(..)` — the
    /// pixelwise composition of a pair query's two masks.
    Pair {
        /// The composition operator.
        op: MaskOp,
        /// Alias of the left operand.
        left: String,
        /// Alias of the right operand.
        right: String,
    },
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// `CP(mask_arg, roi, (lv, uv))`.
    Cp {
        /// The mask argument (plain or aggregated).
        mask: MaskArg,
        /// The region of interest.
        roi: RoiExpr,
        /// Lower bound of the value range (inclusive).
        lv: f64,
        /// Upper bound of the value range (exclusive).
        uv: f64,
    },
    /// `AGG(expr)` with `AGG` ∈ {SUM, AVG/MEAN, MIN, MAX}.
    ScalarAgg {
        /// Aggregate function name (uppercased).
        func: String,
        /// Aggregated expression.
        expr: Box<SqlExpr>,
    },
    /// `IOU(a.mask, b.mask, roi, θ)` — intersection-over-union of the two
    /// joined masks binarised at `θ`, within `roi`.
    Iou {
        /// Alias of the left operand.
        left: String,
        /// Alias of the right operand.
        right: String,
        /// The region of interest.
        roi: RoiExpr,
        /// Binarisation threshold.
        threshold: f64,
    },
    /// Numeric literal.
    Number(f64),
    /// Reference to a SELECT alias (used in ORDER BY / HAVING).
    Alias(String),
    /// Binary arithmetic.
    Binary {
        /// `+`, `-`, `*`, or `/`.
        op: char,
        /// Left operand.
        lhs: Box<SqlExpr>,
        /// Right operand.
        rhs: Box<SqlExpr>,
    },
}

/// A comparison operator in WHERE / HAVING.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlCmp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
}

/// A WHERE-clause condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// A comparison between an expression and a numeric literal.
    Compare {
        /// Left-hand side expression.
        expr: SqlExpr,
        /// Comparison operator.
        op: SqlCmp,
        /// Right-hand side value.
        value: f64,
    },
    /// A metadata equality (`model_id = 1`, `a.model_id = 1`, ...).
    MetaEq {
        /// Join alias the condition is qualified with, if any.
        qualifier: Option<String>,
        /// Column name (lowercased).
        column: String,
        /// Value.
        value: u64,
    },
    /// A metadata membership test (`mask_type IN (1, 2)`).
    MetaIn {
        /// Join alias the condition is qualified with, if any.
        qualifier: Option<String>,
        /// Column name (lowercased).
        column: String,
        /// Values.
        values: Vec<u64>,
    },
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
}

/// One SELECT item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The selected expression, or `None` for a plain column reference
    /// (`mask_id`, `image_id`, `*`).
    pub expr: Option<SqlExpr>,
    /// Column name when the item is a plain column reference.
    pub column: Option<String>,
    /// `AS` alias, if any.
    pub alias: Option<String>,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlOrder {
    /// `ASC`
    Asc,
    /// `DESC`
    Desc,
}

/// One `(mask_id, image_id, width, height, (pixels...))` tuple of an
/// `INSERT`.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertRow {
    /// Mask id (primary key).
    pub mask_id: u64,
    /// Image the mask annotates.
    pub image_id: u64,
    /// Mask width in pixels.
    pub width: u32,
    /// Mask height in pixels.
    pub height: u32,
    /// Row-major pixel values in `[0, 1]`; must hold `width * height`
    /// entries.
    pub pixels: Vec<f64>,
}

/// A parsed `INSERT INTO masks VALUES (...), (...)` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlInsert {
    /// The inserted tuples, committed as one atomic batch.
    pub rows: Vec<InsertRow>,
}

/// A parsed `DELETE FROM masks WHERE mask_id = n | mask_id IN (...)`
/// statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlDelete {
    /// Ids of the masks to delete, deleted as one atomic batch.
    pub mask_ids: Vec<u64>,
}

/// A parsed `UPDATE masks SET ... WHERE mask_id = n` statement.
///
/// Assignable columns: `pixels` (with optional `width`/`height` to re-shape),
/// `model_id`, `mask_type`, `predicted_label`, `true_label`. The primary key
/// (`mask_id`) and the sharding key (`image_id`) are not assignable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SqlUpdate {
    /// Id of the mask to update.
    pub mask_id: u64,
    /// New pixel values, when `SET pixels = (...)` was given.
    pub pixels: Option<Vec<f64>>,
    /// New mask width; only meaningful together with `pixels`.
    pub width: Option<u32>,
    /// New mask height; only meaningful together with `pixels`.
    pub height: Option<u32>,
    /// New model id.
    pub model_id: Option<u64>,
    /// New mask type code.
    pub mask_type: Option<u16>,
    /// New predicted label.
    pub predicted_label: Option<u64>,
    /// New true label.
    pub true_label: Option<u64>,
}

/// A parsed `CREATE INDEX [IF NOT EXISTS] <name> ON masks (<column>)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlCreateIndex {
    /// Index name.
    pub name: String,
    /// Indexed metadata column (lowercased; validated during lowering).
    pub column: String,
    /// `IF NOT EXISTS` was given.
    pub if_not_exists: bool,
}

/// A parsed `DROP INDEX [IF EXISTS] <name>`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlDropIndex {
    /// Index name.
    pub name: String,
    /// `IF EXISTS` was given.
    pub if_exists: bool,
}

/// Any parsed statement: a query, a write, a DDL, or transaction control.
// A parsed SELECT (with its optional join and clause payloads) is much
// larger than the write variants; statements are parsed once and moved, not
// stored in bulk, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SqlStatement {
    /// A `SELECT` query.
    Query(SqlQuery),
    /// An `INSERT` of new masks.
    Insert(SqlInsert),
    /// A `DELETE` of existing masks.
    Delete(SqlDelete),
    /// An `UPDATE` of one existing mask.
    Update(SqlUpdate),
    /// A `CREATE INDEX` definition.
    CreateIndex(SqlCreateIndex),
    /// A `DROP INDEX`.
    DropIndex(SqlDropIndex),
    /// `BEGIN [TRANSACTION]` — open a multi-statement transaction.
    Begin,
    /// `COMMIT [TRANSACTION]` — apply the open transaction atomically.
    Commit,
    /// `ROLLBACK [TRANSACTION]` — discard the open transaction.
    Rollback,
}

/// A self-join clause: `FROM masks a JOIN masks b ON a.image_id = b.image_id`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlJoin {
    /// Alias of the left relation instance.
    pub left: String,
    /// Alias of the right relation instance.
    pub right: String,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlQuery {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// Self-join on `image_id`, when the query binds two masks per image.
    pub join: Option<SqlJoin>,
    /// WHERE clause.
    pub where_clause: Option<Condition>,
    /// GROUP BY column (only `image_id` is supported).
    pub group_by: Option<String>,
    /// HAVING clause (comparison on the grouped aggregate).
    pub having: Option<(SqlCmp, f64)>,
    /// ORDER BY expression (alias or full expression) and direction.
    pub order_by: Option<(SqlExpr, SqlOrder)>,
    /// LIMIT value.
    pub limit: Option<usize>,
}
