//! Recursive-descent parser for the MaskSearch SQL dialect.

use crate::ast::{
    Condition, InsertRow, MaskArg, RoiExpr, SelectItem, SqlCmp, SqlCreateIndex, SqlDelete,
    SqlDropIndex, SqlExpr, SqlInsert, SqlJoin, SqlOrder, SqlQuery, SqlStatement, SqlUpdate,
};
use crate::lexer::{tokenize, Spanned, Token};
use crate::SqlError;
use masksearch_core::MaskOp;

/// Keywords that may directly follow the FROM relation (and therefore can
/// never be a relation alias).
const CLAUSE_KEYWORDS: [&str; 7] = ["WHERE", "GROUP", "ORDER", "LIMIT", "HAVING", "JOIN", "ON"];

/// Parses one `SELECT` statement (the read-only entry point kept for
/// callers that only speak queries).
pub fn parse(sql: &str) -> Result<SqlQuery, SqlError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.parse_query()?;
    parser.consume_if(&Token::Semicolon);
    if !parser.at_end() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(query)
}

/// Parses any statement: `SELECT`, `INSERT INTO masks VALUES ...`,
/// `DELETE FROM masks WHERE mask_id ...`, `UPDATE masks SET ...`,
/// `CREATE INDEX` / `DROP INDEX`, or `BEGIN` / `COMMIT` / `ROLLBACK`.
pub fn parse_statement(sql: &str) -> Result<SqlStatement, SqlError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let statement = if parser.peek_keyword("SELECT") {
        SqlStatement::Query(parser.parse_query()?)
    } else if parser.peek_keyword("INSERT") {
        SqlStatement::Insert(parser.parse_insert()?)
    } else if parser.peek_keyword("DELETE") {
        SqlStatement::Delete(parser.parse_delete()?)
    } else if parser.peek_keyword("UPDATE") {
        SqlStatement::Update(parser.parse_update()?)
    } else if parser.peek_keyword("CREATE") {
        SqlStatement::CreateIndex(parser.parse_create_index()?)
    } else if parser.peek_keyword("DROP") {
        SqlStatement::DropIndex(parser.parse_drop_index()?)
    } else if parser.peek_keyword("BEGIN") {
        parser.parse_txn_control()?;
        SqlStatement::Begin
    } else if parser.peek_keyword("COMMIT") {
        parser.parse_txn_control()?;
        SqlStatement::Commit
    } else if parser.peek_keyword("ROLLBACK") {
        parser.parse_txn_control()?;
        SqlStatement::Rollback
    } else if parser.peek_keyword("RECORD") || parser.peek_keyword("MONITOR") {
        // A well-formed control request never reaches the SQL front end —
        // it is intercepted by the protocol layer — so this is a malformed
        // one (bad subcommand, stray arguments). Name the real grammar
        // instead of the generic expected-SELECT message.
        return Err(parser.error(
            "RECORD/MONITOR is a wire-protocol control command, not SQL \
             (RECORD START [<path>] | STOP | STATUS; MONITOR [<frames> [<interval_ms>]])",
        ));
    } else {
        return Err(parser.error(
            "expected SELECT, INSERT, UPDATE, DELETE, CREATE INDEX, DROP INDEX, \
             or BEGIN/COMMIT/ROLLBACK",
        ));
    };
    parser.consume_if(&Token::Semicolon);
    if !parser.at_end() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(statement)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.offset)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError::new(message, self.offset())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn consume_if(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), SqlError> {
        if self.consume_if(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    /// Consumes an identifier and returns it uppercased.
    fn keyword(&mut self) -> Result<String, SqlError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s.to_ascii_uppercase()),
            _ => Err(self.error("expected an identifier")),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.peek_keyword(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}")))
        }
    }

    fn number(&mut self) -> Result<f64, SqlError> {
        match self.advance() {
            Some(Token::Number(v)) => Ok(v),
            Some(Token::Minus) => match self.advance() {
                Some(Token::Number(v)) => Ok(-v),
                _ => Err(self.error("expected a number after `-`")),
            },
            _ => Err(self.error("expected a number")),
        }
    }

    /// Consumes a number and requires it to be a non-negative integer.
    ///
    /// Literals reach the parser as `f64`, which represents integers
    /// exactly only below 2^53; anything at or above that bound may already
    /// have been silently rounded by the lexer, so it is rejected rather
    /// than committed under a corrupted id.
    fn integer(&mut self, what: &str) -> Result<u64, SqlError> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        let v = self.number()?;
        if v < 0.0 || v.fract() != 0.0 || v >= MAX_EXACT {
            return Err(self.error(format!("{what} must be a non-negative integer below 2^53")));
        }
        Ok(v as u64)
    }

    /// Consumes a number and requires it to fit in a `u32`.
    fn integer_u32(&mut self, what: &str) -> Result<u32, SqlError> {
        let v = self.integer(what)?;
        u32::try_from(v).map_err(|_| self.error(format!("{what} must fit in 32 bits")))
    }

    /// Parses `INSERT INTO <relation> VALUES (id, image, w, h, (pixels...))
    /// [, (...)]*`.
    fn parse_insert(&mut self) -> Result<SqlInsert, SqlError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let _relation = self.keyword()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen, "`(` opening an INSERT tuple")?;
            let mask_id = self.integer("mask_id")?;
            self.expect(&Token::Comma, "`,` after mask_id")?;
            let image_id = self.integer("image_id")?;
            self.expect(&Token::Comma, "`,` after image_id")?;
            let width = self.integer_u32("width")?;
            self.expect(&Token::Comma, "`,` after width")?;
            let height = self.integer_u32("height")?;
            self.expect(&Token::Comma, "`,` after height")?;
            self.expect(&Token::LParen, "`(` opening the pixel list")?;
            // Cap the pre-allocation: width/height are wire data, and a
            // hostile 4-billion-squared shape must not drive a huge (or
            // panicking) allocation before a single pixel is validated.
            let declared = (width as usize).saturating_mul(height as usize);
            let mut pixels = Vec::with_capacity(declared.min(65_536));
            loop {
                pixels.push(self.number()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "`)` closing the pixel list")?;
            self.expect(&Token::RParen, "`)` closing the INSERT tuple")?;
            rows.push(InsertRow {
                mask_id,
                image_id,
                width,
                height,
                pixels,
            });
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        Ok(SqlInsert { rows })
    }

    /// Parses `DELETE FROM <relation> WHERE mask_id = n` or
    /// `... WHERE mask_id IN (n, ...)`.
    fn parse_delete(&mut self) -> Result<SqlDelete, SqlError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let _relation = self.keyword()?;
        self.expect_keyword("WHERE")?;
        let column = self.keyword()?;
        if column != "MASK_ID" {
            return Err(self.error("DELETE supports only `mask_id = n` or `mask_id IN (...)`"));
        }
        let mask_ids = if self.peek_keyword("IN") {
            self.pos += 1;
            self.expect(&Token::LParen, "`(` after IN")?;
            let mut ids = Vec::new();
            loop {
                ids.push(self.integer("mask_id")?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "`)` closing IN list")?;
            ids
        } else {
            self.expect(&Token::Eq, "`=` or IN in DELETE condition")?;
            vec![self.integer("mask_id")?]
        };
        Ok(SqlDelete { mask_ids })
    }

    /// Parses `UPDATE <relation> SET <col> = <value> [, ...]
    /// WHERE mask_id = n`.
    fn parse_update(&mut self) -> Result<SqlUpdate, SqlError> {
        self.expect_keyword("UPDATE")?;
        let _relation = self.keyword()?;
        self.expect_keyword("SET")?;
        let mut update = SqlUpdate::default();
        loop {
            let column = self.keyword()?;
            self.expect(&Token::Eq, "`=` in SET assignment")?;
            match column.as_str() {
                "PIXELS" => {
                    if update.pixels.is_some() {
                        return Err(self.error("pixels assigned twice"));
                    }
                    self.expect(&Token::LParen, "`(` opening the pixel list")?;
                    let mut pixels = Vec::new();
                    loop {
                        pixels.push(self.number()?);
                        if !self.consume_if(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen, "`)` closing the pixel list")?;
                    update.pixels = Some(pixels);
                }
                "WIDTH" => update.width = Some(self.integer_u32("width")?),
                "HEIGHT" => update.height = Some(self.integer_u32("height")?),
                "MODEL_ID" => update.model_id = Some(self.integer("model_id")?),
                "MASK_TYPE" => {
                    let code = self.integer("mask_type")?;
                    let code = u16::try_from(code)
                        .map_err(|_| self.error("mask_type must fit in 16 bits"))?;
                    update.mask_type = Some(code);
                }
                "PREDICTED_LABEL" => {
                    update.predicted_label = Some(self.integer("predicted_label")?)
                }
                "TRUE_LABEL" => update.true_label = Some(self.integer("true_label")?),
                "MASK_ID" | "IMAGE_ID" => {
                    return Err(self.error(format!(
                        "{} is not assignable (it is a key column)",
                        column.to_ascii_lowercase()
                    )))
                }
                other => {
                    return Err(self.error(format!(
                        "unknown UPDATE column `{}`",
                        other.to_ascii_lowercase()
                    )))
                }
            }
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        self.expect_keyword("WHERE")?;
        let column = self.keyword()?;
        if column != "MASK_ID" {
            return Err(self.error("UPDATE supports only `WHERE mask_id = n`"));
        }
        self.expect(&Token::Eq, "`=` in UPDATE condition")?;
        update.mask_id = self.integer("mask_id")?;
        Ok(update)
    }

    /// Parses `CREATE INDEX [IF NOT EXISTS] <name> ON <relation> (<column>)`.
    fn parse_create_index(&mut self) -> Result<SqlCreateIndex, SqlError> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("INDEX")?;
        let mut if_not_exists = false;
        if self.peek_keyword("IF") {
            self.pos += 1;
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            if_not_exists = true;
        }
        let name = self.index_name()?;
        self.expect_keyword("ON")?;
        let _relation = self.keyword()?;
        self.expect(&Token::LParen, "`(` opening the indexed column")?;
        let column = self.keyword()?.to_ascii_lowercase();
        self.expect(&Token::RParen, "`)` closing the indexed column")?;
        Ok(SqlCreateIndex {
            name,
            column,
            if_not_exists,
        })
    }

    /// Parses `DROP INDEX [IF EXISTS] <name>`.
    fn parse_drop_index(&mut self) -> Result<SqlDropIndex, SqlError> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("INDEX")?;
        let mut if_exists = false;
        if self.peek_keyword("IF") {
            self.pos += 1;
            self.expect_keyword("EXISTS")?;
            if_exists = true;
        }
        let name = self.index_name()?;
        Ok(SqlDropIndex { name, if_exists })
    }

    /// Consumes an index name: a plain identifier, kept lowercased so names
    /// compare case-insensitively like the rest of the dialect.
    fn index_name(&mut self) -> Result<String, SqlError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s.to_ascii_lowercase()),
            _ => Err(self.error("expected an index name")),
        }
    }

    /// Consumes `BEGIN`/`COMMIT`/`ROLLBACK` plus an optional noise keyword
    /// (`TRANSACTION` or `WORK`).
    fn parse_txn_control(&mut self) -> Result<(), SqlError> {
        self.pos += 1; // the control keyword itself, already peeked
        if self.peek_keyword("TRANSACTION") || self.peek_keyword("WORK") {
            self.pos += 1;
        }
        Ok(())
    }

    /// Returns the next token as a relation alias when it is a plain
    /// identifier that cannot start a clause.
    fn maybe_alias(&mut self) -> Option<String> {
        match self.peek() {
            Some(Token::Ident(name))
                if !CLAUSE_KEYWORDS
                    .iter()
                    .any(|kw| name.eq_ignore_ascii_case(kw)) =>
            {
                let alias = name.to_ascii_lowercase();
                self.pos += 1;
                Some(alias)
            }
            _ => None,
        }
    }

    /// Parses `<alias>.image_id` (the only join key the dialect supports).
    fn parse_join_key(&mut self) -> Result<String, SqlError> {
        let alias = self.keyword()?.to_ascii_lowercase();
        self.expect(&Token::Dot, "`.` in join condition")?;
        let column = self.keyword()?;
        if column != "IMAGE_ID" {
            return Err(self.error("joins are supported only on image_id"));
        }
        Ok(alias)
    }

    /// Parses `[alias [JOIN <relation> <alias> ON a.image_id = b.image_id]]`
    /// after the FROM relation.
    fn parse_join(&mut self) -> Result<Option<SqlJoin>, SqlError> {
        let left = self.maybe_alias();
        if !self.peek_keyword("JOIN") {
            return Ok(None);
        }
        let Some(left) = left else {
            return Err(
                self.error("JOIN requires an alias on the left relation (FROM masks a JOIN ...)")
            );
        };
        self.pos += 1; // JOIN
        let _relation = self.keyword()?;
        let Some(right) = self.maybe_alias() else {
            return Err(self.error("JOIN requires an alias on the right relation"));
        };
        if right == left {
            return Err(self.error("JOIN aliases must be distinct"));
        }
        self.expect_keyword("ON")?;
        let on_a = self.parse_join_key()?;
        self.expect(&Token::Eq, "`=` in join condition")?;
        let on_b = self.parse_join_key()?;
        let mut on = [on_a, on_b];
        on.sort();
        let mut declared = [left.clone(), right.clone()];
        declared.sort();
        if on != declared {
            return Err(self.error("the ON clause must equate the two join aliases' image_id"));
        }
        Ok(Some(SqlJoin { left, right }))
    }

    fn parse_query(&mut self) -> Result<SqlQuery, SqlError> {
        self.expect_keyword("SELECT")?;
        let select = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        // The relation name is free-form (`masks`, `MasksDatabaseView`, ...).
        let _relation = self.keyword()?;
        let join = self.parse_join()?;

        let where_clause = if self.peek_keyword("WHERE") {
            self.pos += 1;
            Some(self.parse_condition()?)
        } else {
            None
        };

        let group_by = if self.peek_keyword("GROUP") {
            self.pos += 1;
            self.expect_keyword("BY")?;
            let column = self.keyword()?.to_ascii_lowercase();
            Some(column)
        } else {
            None
        };

        let having = if self.peek_keyword("HAVING") {
            self.pos += 1;
            // HAVING <alias or expr> <cmp> <number>; the lowered query only
            // needs the comparison operator and threshold.
            let _expr = self.parse_expr()?;
            let op = self.parse_cmp()?;
            let value = self.number()?;
            Some((op, value))
        } else {
            None
        };

        let order_by = if self.peek_keyword("ORDER") {
            self.pos += 1;
            self.expect_keyword("BY")?;
            let expr = self.parse_expr()?;
            let order = if self.peek_keyword("DESC") {
                self.pos += 1;
                SqlOrder::Desc
            } else if self.peek_keyword("ASC") {
                self.pos += 1;
                SqlOrder::Asc
            } else {
                SqlOrder::Asc
            };
            Some((expr, order))
        } else {
            None
        };

        let limit = if self.peek_keyword("LIMIT") {
            self.pos += 1;
            let v = self.number()?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(self.error("LIMIT must be a non-negative integer"));
            }
            Some(v as usize)
        } else {
            None
        };

        Ok(SqlQuery {
            select,
            join,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            let item = if self.consume_if(&Token::Star) {
                SelectItem {
                    expr: None,
                    column: Some("*".to_string()),
                    alias: None,
                }
            } else if let Some(Token::Ident(name)) = self.peek() {
                // A bare column name is only a column reference if it is not
                // followed by `(` (which would make it a function call).
                let name = name.clone();
                let is_call = matches!(
                    self.tokens.get(self.pos + 1).map(|s| &s.token),
                    Some(Token::LParen)
                );
                if is_call {
                    let expr = self.parse_expr()?;
                    SelectItem {
                        expr: Some(expr),
                        column: None,
                        alias: None,
                    }
                } else {
                    self.pos += 1;
                    SelectItem {
                        expr: None,
                        column: Some(name.to_ascii_lowercase()),
                        alias: None,
                    }
                }
            } else {
                let expr = self.parse_expr()?;
                SelectItem {
                    expr: Some(expr),
                    column: None,
                    alias: None,
                }
            };
            let item = if self.peek_keyword("AS") {
                self.pos += 1;
                let alias = self.keyword()?.to_ascii_lowercase();
                SelectItem {
                    alias: Some(alias),
                    ..item
                }
            } else {
                item
            };
            items.push(item);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_cmp(&mut self) -> Result<SqlCmp, SqlError> {
        match self.advance() {
            Some(Token::Gt) => Ok(SqlCmp::Gt),
            Some(Token::Ge) => Ok(SqlCmp::Ge),
            Some(Token::Lt) => Ok(SqlCmp::Lt),
            Some(Token::Le) => Ok(SqlCmp::Le),
            Some(Token::Eq) => Ok(SqlCmp::Eq),
            _ => Err(self.error("expected a comparison operator")),
        }
    }

    fn parse_condition(&mut self) -> Result<Condition, SqlError> {
        let mut lhs = self.parse_condition_and()?;
        while self.peek_keyword("OR") {
            self.pos += 1;
            let rhs = self.parse_condition_and()?;
            lhs = Condition::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_condition_and(&mut self) -> Result<Condition, SqlError> {
        let mut lhs = self.parse_condition_atom()?;
        while self.peek_keyword("AND") {
            self.pos += 1;
            let rhs = self.parse_condition_atom()?;
            lhs = Condition::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_condition_atom(&mut self) -> Result<Condition, SqlError> {
        // Metadata columns, optionally join-qualified:
        // `[alias.]<column> = <int>` or `[alias.]<column> IN (<ints>)`.
        if let Some(Token::Ident(name)) = self.peek() {
            let first = name.to_ascii_lowercase();
            let dotted = matches!(
                self.tokens.get(self.pos + 1).map(|s| &s.token),
                Some(Token::Dot)
            );
            let column_name = if dotted {
                match self.tokens.get(self.pos + 2).map(|s| &s.token) {
                    Some(Token::Ident(column)) => Some(column.to_ascii_lowercase()),
                    _ => None,
                }
            } else {
                Some(first.clone())
            };
            if let Some(column) = column_name {
                let is_meta = matches!(
                    column.as_str(),
                    "model_id"
                        | "mask_type"
                        | "image_id"
                        | "mask_id"
                        | "predicted_label"
                        | "true_label"
                );
                if is_meta {
                    let qualifier = if dotted {
                        self.pos += 3; // alias, dot, column
                        Some(first)
                    } else {
                        self.pos += 1;
                        None
                    };
                    if self.peek_keyword("IN") {
                        self.pos += 1;
                        self.expect(&Token::LParen, "`(` after IN")?;
                        let mut values = Vec::new();
                        loop {
                            values.push(self.number()? as u64);
                            if !self.consume_if(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen, "`)` closing IN list")?;
                        return Ok(Condition::MetaIn {
                            qualifier,
                            column,
                            values,
                        });
                    }
                    self.expect(&Token::Eq, "`=` in metadata condition")?;
                    let value = self.number()? as u64;
                    return Ok(Condition::MetaEq {
                        qualifier,
                        column,
                        value,
                    });
                }
            }
        }
        // Otherwise: <expr> <cmp> <number>.
        let expr = self.parse_expr()?;
        let op = self.parse_cmp()?;
        let value = self.number()?;
        Ok(Condition::Compare { expr, op, value })
    }

    fn parse_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => '+',
                Some(Token::Minus) => '-',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_term()?;
            lhs = SqlExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => '*',
                Some(Token::Slash) => '/',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_factor()?;
            lhs = SqlExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<SqlExpr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Number(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Number(v))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.parse_factor()?;
                Ok(SqlExpr::Binary {
                    op: '-',
                    lhs: Box::new(SqlExpr::Number(0.0)),
                    rhs: Box::new(inner),
                })
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                let is_call = matches!(
                    self.tokens.get(self.pos + 1).map(|s| &s.token),
                    Some(Token::LParen)
                );
                if !is_call {
                    self.pos += 1;
                    return Ok(SqlExpr::Alias(name.to_ascii_lowercase()));
                }
                self.pos += 1; // function name
                self.expect(&Token::LParen, "`(`")?;
                match upper.as_str() {
                    "CP" => self.parse_cp_args(),
                    "IOU" => self.parse_iou_args(),
                    "SUM" | "AVG" | "MEAN" | "MIN" | "MAX" => {
                        let inner = self.parse_expr()?;
                        self.expect(&Token::RParen, "`)` closing aggregate")?;
                        Ok(SqlExpr::ScalarAgg {
                            func: if upper == "MEAN" {
                                "AVG".to_string()
                            } else {
                                upper
                            },
                            expr: Box::new(inner),
                        })
                    }
                    other => Err(self.error(format!("unknown function `{other}`"))),
                }
            }
            _ => Err(self.error("expected an expression")),
        }
    }

    /// Returns `true` if the token at `self.pos + offset` is a `.`.
    fn dot_at(&self, offset: usize) -> bool {
        matches!(
            self.tokens.get(self.pos + offset).map(|s| &s.token),
            Some(Token::Dot)
        )
    }

    /// Parses a join-qualified mask reference `<alias>.mask`.
    fn parse_qualified_mask(&mut self) -> Result<String, SqlError> {
        let alias = match self.advance() {
            Some(Token::Ident(name)) => name.to_ascii_lowercase(),
            _ => return Err(self.error("expected a join alias (as in `a.mask`)")),
        };
        self.expect(&Token::Dot, "`.` after the join alias")?;
        self.expect_keyword("MASK")?;
        Ok(alias)
    }

    /// Parses an ROI argument: a box, `object`, `full`, or `-`.
    fn parse_roi(&mut self) -> Result<RoiExpr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Ident(name)) if name.eq_ignore_ascii_case("object") => {
                self.pos += 1;
                Ok(RoiExpr::Object)
            }
            Some(Token::Ident(name)) if name.eq_ignore_ascii_case("full") => {
                self.pos += 1;
                Ok(RoiExpr::Full)
            }
            Some(Token::Minus) => {
                // The paper writes `CP(mask, -, ...)` for "no ROI".
                self.pos += 1;
                Ok(RoiExpr::Full)
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let x0 = self.number()? as u32;
                self.expect(&Token::Comma, "`,`")?;
                let y0 = self.number()? as u32;
                self.expect(&Token::Comma, "`,`")?;
                let x1 = self.number()? as u32;
                self.expect(&Token::Comma, "`,`")?;
                let y1 = self.number()? as u32;
                self.expect(&Token::RParen, "`)` closing ROI")?;
                Ok(RoiExpr::Box { x0, y0, x1, y1 })
            }
            _ => Err(self.error("expected an ROI (box, `object`, `full`, or `-`)")),
        }
    }

    /// Parses the arguments of `IOU(a.mask, b.mask, roi, θ)` after the
    /// opening parenthesis.
    fn parse_iou_args(&mut self) -> Result<SqlExpr, SqlError> {
        let left = self.parse_qualified_mask()?;
        self.expect(&Token::Comma, "`,` after the first IOU operand")?;
        let right = self.parse_qualified_mask()?;
        self.expect(&Token::Comma, "`,` after the second IOU operand")?;
        let roi = self.parse_roi()?;
        self.expect(&Token::Comma, "`,` after the IOU ROI")?;
        let threshold = self.number()?;
        self.expect(&Token::RParen, "`)` closing IOU")?;
        Ok(SqlExpr::Iou {
            left,
            right,
            roi,
            threshold,
        })
    }

    /// Parses the arguments of `CP(...)` after the opening parenthesis.
    fn parse_cp_args(&mut self) -> Result<SqlExpr, SqlError> {
        // First argument: `mask`, a qualified `a.mask`, a group aggregation
        // (`INTERSECT(mask > t)` / `UNION(mask > t)` / `MEAN(mask)`), or a
        // pair composition (`INTERSECT(a.mask, b.mask)` / `UNION(..)` /
        // `DIFF(..)`).
        let mask = match self.peek().cloned() {
            Some(Token::Ident(_)) if self.dot_at(1) => {
                MaskArg::Qualified(self.parse_qualified_mask()?)
            }
            Some(Token::Ident(name)) if name.eq_ignore_ascii_case("mask") => {
                self.pos += 1;
                MaskArg::Plain
            }
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                self.pos += 1;
                self.expect(&Token::LParen, "`(` after mask aggregation")?;
                // A qualified first operand means the pair-composition form.
                if self.dot_at(1) {
                    let op = match upper.as_str() {
                        "INTERSECT" => MaskOp::Intersect,
                        "UNION" => MaskOp::Union,
                        "DIFF" => MaskOp::Diff,
                        other => {
                            return Err(self.error(format!("unknown mask composition `{other}`")))
                        }
                    };
                    let left = self.parse_qualified_mask()?;
                    self.expect(&Token::Comma, "`,` between composition operands")?;
                    let right = self.parse_qualified_mask()?;
                    self.expect(&Token::RParen, "`)` closing mask composition")?;
                    MaskArg::Pair { op, left, right }
                } else {
                    self.expect_keyword("MASK")?;
                    let arg = match upper.as_str() {
                        "INTERSECT" | "UNION" => {
                            self.expect(&Token::Gt, "`>` in thresholded mask aggregation")?;
                            let threshold = self.number()?;
                            if upper == "INTERSECT" {
                                MaskArg::Intersect { threshold }
                            } else {
                                MaskArg::Union { threshold }
                            }
                        }
                        "MEAN" | "AVG" => MaskArg::Mean,
                        other => {
                            return Err(self.error(format!("unknown mask aggregation `{other}`")))
                        }
                    };
                    self.expect(&Token::RParen, "`)` closing mask aggregation")?;
                    arg
                }
            }
            _ => return Err(self.error("expected `mask` or a mask aggregation in CP(...)")),
        };
        self.expect(&Token::Comma, "`,` after the mask argument")?;

        // Second argument: the ROI.
        let roi = self.parse_roi()?;
        self.expect(&Token::Comma, "`,` after the ROI")?;

        // Third argument: the pixel-value range `(lv, uv)`.
        self.expect(&Token::LParen, "`(` opening the value range")?;
        let lv = self.number()?;
        self.expect(&Token::Comma, "`,`")?;
        let uv = self.number()?;
        self.expect(&Token::RParen, "`)` closing the value range")?;
        self.expect(&Token::RParen, "`)` closing CP")?;
        Ok(SqlExpr::Cp { mask, roi, lv, uv })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_keywords_get_a_protocol_hint() {
        for sql in ["RECORD START /tmp/flight.bin", "MONITOR 5 100"] {
            let err = parse_statement(sql).unwrap_err();
            assert!(
                err.message.contains("wire-protocol control command"),
                "{sql}: {}",
                err.message
            );
        }
        // Ordinary garbage still gets the generic message.
        let err = parse_statement("UPSERT INTO masks").unwrap_err();
        assert!(err
            .message
            .contains("expected SELECT, INSERT, UPDATE, DELETE"));
    }

    #[test]
    fn parses_update_assignments() {
        let statement = parse_statement(
            "UPDATE masks SET pixels = (0.1, 0.2, 0.3, 0.4), model_id = 3, \
             predicted_label = 7 WHERE mask_id = 9;",
        )
        .unwrap();
        let SqlStatement::Update(update) = statement else {
            panic!("expected an update");
        };
        assert_eq!(update.mask_id, 9);
        assert_eq!(update.pixels.as_deref(), Some(&[0.1, 0.2, 0.3, 0.4][..]));
        assert_eq!(update.model_id, Some(3));
        assert_eq!(update.predicted_label, Some(7));
        assert_eq!(update.width, None);
        assert_eq!(update.mask_type, None);

        let statement = parse_statement(
            "UPDATE masks SET width = 1, height = 2, pixels = (0.5, 0.6) WHERE mask_id = 4",
        )
        .unwrap();
        let SqlStatement::Update(update) = statement else {
            panic!("expected an update");
        };
        assert_eq!((update.width, update.height), (Some(1), Some(2)));
    }

    #[test]
    fn rejects_malformed_updates() {
        // Key columns are not assignable.
        assert!(parse_statement("UPDATE masks SET mask_id = 2 WHERE mask_id = 1").is_err());
        assert!(parse_statement("UPDATE masks SET image_id = 2 WHERE mask_id = 1").is_err());
        // WHERE must target mask_id by equality.
        assert!(parse_statement("UPDATE masks SET model_id = 2 WHERE image_id = 1").is_err());
        assert!(parse_statement("UPDATE masks SET model_id = 2").is_err());
        // Double assignment of pixels.
        assert!(parse_statement(
            "UPDATE masks SET pixels = (0.1), pixels = (0.2) WHERE mask_id = 1"
        )
        .is_err());
        // mask_type must fit u16.
        assert!(parse_statement("UPDATE masks SET mask_type = 70000 WHERE mask_id = 1").is_err());
    }

    #[test]
    fn parses_index_ddl() {
        assert_eq!(
            parse_statement("CREATE INDEX by_model ON masks (model_id)").unwrap(),
            SqlStatement::CreateIndex(SqlCreateIndex {
                name: "by_model".to_string(),
                column: "model_id".to_string(),
                if_not_exists: false,
            })
        );
        assert_eq!(
            parse_statement("CREATE INDEX IF NOT EXISTS By_Pred ON masks (PREDICTED_LABEL);")
                .unwrap(),
            SqlStatement::CreateIndex(SqlCreateIndex {
                name: "by_pred".to_string(),
                column: "predicted_label".to_string(),
                if_not_exists: true,
            })
        );
        assert_eq!(
            parse_statement("DROP INDEX by_model").unwrap(),
            SqlStatement::DropIndex(SqlDropIndex {
                name: "by_model".to_string(),
                if_exists: false,
            })
        );
        assert_eq!(
            parse_statement("DROP INDEX IF EXISTS by_model;").unwrap(),
            SqlStatement::DropIndex(SqlDropIndex {
                name: "by_model".to_string(),
                if_exists: true,
            })
        );
        // Malformed DDL.
        assert!(parse_statement("CREATE INDEX ON masks (model_id)").is_err());
        assert!(parse_statement("CREATE INDEX i ON masks model_id").is_err());
        assert!(parse_statement("CREATE INDEX IF EXISTS i ON masks (model_id)").is_err());
        assert!(parse_statement("DROP INDEX").is_err());
    }

    #[test]
    fn parses_transaction_control() {
        assert_eq!(parse_statement("BEGIN").unwrap(), SqlStatement::Begin);
        assert_eq!(
            parse_statement("BEGIN TRANSACTION;").unwrap(),
            SqlStatement::Begin
        );
        assert_eq!(
            parse_statement("commit work").unwrap(),
            SqlStatement::Commit
        );
        assert_eq!(
            parse_statement("ROLLBACK;").unwrap(),
            SqlStatement::Rollback
        );
        // Trailing junk is still rejected.
        assert!(parse_statement("BEGIN now").is_err());
    }

    #[test]
    fn parses_filter_with_metadata() {
        let q = parse(
            "SELECT mask_id FROM masks \
             WHERE CP(mask, (50, 50, 200, 200), (0.85, 1.0)) < 10000 AND model_id = 1;",
        )
        .unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.select[0].column.as_deref(), Some("mask_id"));
        match q.where_clause.unwrap() {
            Condition::And(lhs, rhs) => {
                assert!(matches!(*lhs, Condition::Compare { op: SqlCmp::Lt, .. }));
                assert!(matches!(
                    *rhs,
                    Condition::MetaEq { ref column, value: 1, .. } if column == "model_id"
                ));
            }
            other => panic!("unexpected condition {other:?}"),
        }
        assert!(q.group_by.is_none());
    }

    #[test]
    fn parses_ratio_topk() {
        let q = parse(
            "SELECT mask_id, CP(mask, object, (0.85, 1.0)) / CP(mask, full, (0.85, 1.0)) AS r \
             FROM masks ORDER BY r ASC LIMIT 25",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.select[1].alias.as_deref(), Some("r"));
        assert!(matches!(
            q.select[1].expr,
            Some(SqlExpr::Binary { op: '/', .. })
        ));
        let (expr, order) = q.order_by.unwrap();
        assert_eq!(expr, SqlExpr::Alias("r".to_string()));
        assert_eq!(order, SqlOrder::Asc);
        assert_eq!(q.limit, Some(25));
    }

    #[test]
    fn parses_group_by_aggregate() {
        let q = parse(
            "SELECT image_id, AVG(CP(mask, object, (0.8, 1.0))) AS s FROM masks \
             GROUP BY image_id HAVING s > 100 ORDER BY s DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.group_by.as_deref(), Some("image_id"));
        assert_eq!(q.having, Some((SqlCmp::Gt, 100.0)));
        assert!(matches!(
            q.select[1].expr,
            Some(SqlExpr::ScalarAgg { ref func, .. }) if func == "AVG"
        ));
    }

    #[test]
    fn parses_mask_aggregation() {
        let q = parse(
            "SELECT image_id, CP(INTERSECT(mask > 0.7), object, (0.7, 1.0)) AS s FROM masks \
             WHERE mask_type IN (1, 2) GROUP BY image_id ORDER BY s DESC LIMIT 10",
        )
        .unwrap();
        match &q.select[1].expr {
            Some(SqlExpr::Cp { mask, roi, lv, .. }) => {
                assert_eq!(*mask, MaskArg::Intersect { threshold: 0.7 });
                assert_eq!(*roi, RoiExpr::Object);
                assert_eq!(*lv, 0.7);
            }
            other => panic!("unexpected select expr {other:?}"),
        }
        assert!(matches!(
            q.where_clause,
            Some(Condition::MetaIn { ref column, ref values, .. }) if column == "mask_type" && values == &vec![1, 2]
        ));
    }

    #[test]
    fn parses_dash_roi_and_star_select() {
        let q = parse("SELECT * FROM masks WHERE CP(mask, -, (0.5, 1.0)) > 3").unwrap();
        assert_eq!(q.select[0].column.as_deref(), Some("*"));
        match q.where_clause.unwrap() {
            Condition::Compare { expr, .. } => {
                assert!(matches!(
                    expr,
                    SqlExpr::Cp {
                        roi: RoiExpr::Full,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_insert_tuples() {
        let statement = parse_statement(
            "INSERT INTO masks VALUES (7, 3, 2, 2, (0.1, 0.2, 0.3, 0.4)), \
             (8, 3, 1, 2, (0.9, 1.0));",
        )
        .unwrap();
        let SqlStatement::Insert(insert) = statement else {
            panic!("expected an insert");
        };
        assert_eq!(insert.rows.len(), 2);
        assert_eq!(insert.rows[0].mask_id, 7);
        assert_eq!(insert.rows[0].image_id, 3);
        assert_eq!((insert.rows[0].width, insert.rows[0].height), (2, 2));
        assert_eq!(insert.rows[0].pixels, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(insert.rows[1].pixels, vec![0.9, 1.0]);
    }

    #[test]
    fn parses_delete_by_eq_and_in() {
        assert_eq!(
            parse_statement("DELETE FROM masks WHERE mask_id = 9").unwrap(),
            SqlStatement::Delete(SqlDelete { mask_ids: vec![9] })
        );
        assert_eq!(
            parse_statement("DELETE FROM masks WHERE mask_id IN (1, 2, 3);").unwrap(),
            SqlStatement::Delete(SqlDelete {
                mask_ids: vec![1, 2, 3]
            })
        );
    }

    #[test]
    fn parses_join_with_qualified_refs_and_compositions() {
        let q = parse(
            "SELECT image_id, CP(DIFF(a.mask, b.mask), (0, 0, 64, 64), (0.5, 1.0)) AS d \
             FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE a.model_id = 1 AND b.model_id = 2 AND mask_type = 1 \
             ORDER BY d DESC LIMIT 20",
        )
        .unwrap();
        assert_eq!(
            q.join,
            Some(SqlJoin {
                left: "a".to_string(),
                right: "b".to_string()
            })
        );
        match &q.select[1].expr {
            Some(SqlExpr::Cp { mask, .. }) => {
                assert_eq!(
                    *mask,
                    MaskArg::Pair {
                        op: MaskOp::Diff,
                        left: "a".to_string(),
                        right: "b".to_string()
                    }
                );
            }
            other => panic!("unexpected select expr {other:?}"),
        }
        // WHERE carries two qualified conditions and one unqualified.
        let mut quals = Vec::new();
        fn walk(c: &Condition, quals: &mut Vec<(Option<String>, String)>) {
            match c {
                Condition::And(l, r) => {
                    walk(l, quals);
                    walk(r, quals);
                }
                Condition::MetaEq {
                    qualifier, column, ..
                } => quals.push((qualifier.clone(), column.clone())),
                _ => {}
            }
        }
        walk(q.where_clause.as_ref().unwrap(), &mut quals);
        assert_eq!(
            quals,
            vec![
                (Some("a".to_string()), "model_id".to_string()),
                (Some("b".to_string()), "model_id".to_string()),
                (None, "mask_type".to_string()),
            ]
        );
    }

    #[test]
    fn parses_iou_and_qualified_single_side() {
        let q = parse(
            "SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS agreement \
             FROM masks a JOIN masks b ON b.image_id = a.image_id \
             WHERE CP(a.mask, full, (0.5, 1.0)) > 10 \
             ORDER BY agreement ASC LIMIT 5",
        )
        .unwrap();
        match &q.select[1].expr {
            Some(SqlExpr::Iou {
                left,
                right,
                roi,
                threshold,
            }) => {
                assert_eq!((left.as_str(), right.as_str()), ("a", "b"));
                assert_eq!(*roi, RoiExpr::Full);
                assert_eq!(*threshold, 0.5);
            }
            other => panic!("unexpected select expr {other:?}"),
        }
        match q.where_clause.unwrap() {
            Condition::Compare { expr, .. } => {
                assert!(matches!(
                    expr,
                    SqlExpr::Cp {
                        mask: MaskArg::Qualified(ref alias),
                        ..
                    } if alias == "a"
                ));
            }
            other => panic!("unexpected condition {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_joins() {
        // Missing aliases.
        assert!(
            parse("SELECT image_id FROM masks JOIN masks b ON a.image_id = b.image_id").is_err()
        );
        assert!(
            parse("SELECT image_id FROM masks a JOIN masks ON a.image_id = b.image_id").is_err()
        );
        // Duplicate alias.
        assert!(
            parse("SELECT image_id FROM masks a JOIN masks a ON a.image_id = a.image_id").is_err()
        );
        // ON clause must equate the two aliases' image_id.
        assert!(
            parse("SELECT image_id FROM masks a JOIN masks b ON a.image_id = c.image_id").is_err()
        );
        assert!(
            parse("SELECT image_id FROM masks a JOIN masks b ON a.mask_id = b.mask_id").is_err()
        );
        // Missing ON clause entirely.
        assert!(parse(
            "SELECT image_id FROM masks a JOIN masks b WHERE CP(DIFF(a.mask, b.mask), full, (0.5, 1.0)) > 1"
        )
        .is_err());
    }

    #[test]
    fn parse_statement_still_accepts_selects() {
        let statement =
            parse_statement("SELECT mask_id FROM masks WHERE CP(mask, full, (0.5, 1.0)) > 3")
                .unwrap();
        assert!(matches!(statement, SqlStatement::Query(_)));
    }

    #[test]
    fn rejects_malformed_dml() {
        // Fractional or negative ids.
        assert!(parse_statement("INSERT INTO masks VALUES (1.5, 0, 1, 1, (0.5))").is_err());
        assert!(parse_statement("DELETE FROM masks WHERE mask_id = -3").is_err());
        // Ids at or above 2^53 may have been rounded by the f64 lexer and
        // must be rejected, not committed under a corrupted id.
        assert!(parse_statement("DELETE FROM masks WHERE mask_id = 9007199254740993").is_err());
        assert!(
            parse_statement("INSERT INTO masks VALUES (9007199254740992, 0, 1, 1, (0.5))").is_err()
        );
        // Shape fields must fit in u32 instead of silently wrapping.
        assert!(parse_statement("INSERT INTO masks VALUES (1, 0, 4294967297, 1, (0.5))").is_err());
        // ...but a large-but-exact id is fine.
        assert!(parse_statement("DELETE FROM masks WHERE mask_id = 4503599627370496").is_ok());
        // Missing pixel list.
        assert!(parse_statement("INSERT INTO masks VALUES (1, 0, 1, 1)").is_err());
        // DELETE on a non-key column.
        assert!(parse_statement("DELETE FROM masks WHERE image_id = 3").is_err());
        // DELETE without a WHERE clause.
        assert!(parse_statement("DELETE FROM masks").is_err());
        // Unknown statement kind.
        assert!(parse_statement("UPDATE masks SET x = 1").is_err());
        // Trailing junk.
        assert!(parse_statement("DELETE FROM masks WHERE mask_id = 1 junk").is_err());
        // The query-only entry point refuses writes.
        assert!(parse("DELETE FROM masks WHERE mask_id = 1").is_err());
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse("SELECT FROM masks").is_err());
        assert!(parse("SELECT mask_id").is_err());
        assert!(parse("SELECT mask_id FROM masks WHERE CP(mask) > 1").is_err());
        assert!(parse("SELECT mask_id FROM masks LIMIT 2.5").is_err());
        assert!(parse("SELECT mask_id FROM masks WHERE FOO(mask) > 1").is_err());
        assert!(parse("SELECT mask_id FROM masks extra junk").is_err());
    }
}
