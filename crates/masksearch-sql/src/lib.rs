//! # masksearch-sql
//!
//! A SQL front end for the query dialect of the paper (§2.1–§2.2), lowered
//! onto the [`masksearch_query`] query model. The supported surface covers
//! the paper's examples:
//!
//! ```sql
//! -- Example 1 (filter):
//! SELECT mask_id FROM masks
//! WHERE CP(mask, (50, 50, 200, 200), (0.85, 1.0)) < 10000 AND model_id = 1;
//!
//! -- Example 1 (ratio top-k):
//! SELECT mask_id, CP(mask, object, (0.85, 1.0)) / CP(mask, full, (0.85, 1.0)) AS r
//! FROM masks ORDER BY r ASC LIMIT 25;
//!
//! -- Q4-style aggregation:
//! SELECT image_id, AVG(CP(mask, object, (0.8, 1.0))) AS s
//! FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 25;
//!
//! -- Example 2 / Q5-style mask aggregation:
//! SELECT image_id, CP(INTERSECT(mask > 0.7), object, (0.7, 1.0)) AS s
//! FROM masks WHERE mask_type IN (1, 2)
//! GROUP BY image_id ORDER BY s DESC LIMIT 10;
//! ```
//!
//! ROIs are written either as `(x0, y0, x1, y1)` (half-open pixel
//! coordinates), `object` (the per-mask foreground-object box), or `full`
//! (the whole mask). Metadata predicates (`model_id = n`,
//! `mask_type IN (...)`, `predicted_label = n`, `image_id IN (...)`) become
//! the query's relational selection; `CP` predicates become the
//! filter-predicate tree.
//!
//! The dialect also covers ingestion (see [`compile_statement`]):
//!
//! ```sql
//! -- Insert masks as (mask_id, image_id, width, height, (pixels...)):
//! INSERT INTO masks VALUES (7, 3, 2, 2, (0.1, 0.2, 0.3, 0.4)),
//!                          (8, 3, 2, 2, (0.9, 0.8, 0.7, 0.6));
//!
//! -- Delete masks by id:
//! DELETE FROM masks WHERE mask_id IN (7, 8);
//! ```
//!
//! Each statement lowers to one atomic batch, so a crash or a concurrent
//! reader sees either the whole statement applied or none of it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{
    SqlCreateIndex, SqlDelete, SqlDropIndex, SqlInsert, SqlQuery, SqlStatement, SqlUpdate,
};
pub use lexer::{tokenize, Token};
pub use lower::{lower, lower_statement};
pub use parser::{parse, parse_statement};

use masksearch_query::{Mutation, Order, Query, QueryKind};

/// A transaction-control statement: `BEGIN`, `COMMIT`, or `ROLLBACK`.
///
/// These do not execute against a session; they manipulate the
/// *connection's* transaction state (the service buffers mutations between
/// `BEGIN` and `COMMIT` and applies them as one atomic batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnControl {
    /// Open a multi-statement transaction.
    Begin,
    /// Apply the buffered statements atomically.
    Commit,
    /// Discard the buffered statements.
    Rollback,
}

/// An executable statement: a lowered query or a lowered write.
// Pair queries carry two extra selections, making `Query` the (much) larger
// variant; statements are compiled once and executed, never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Statement {
    /// A read-only query for `Session::execute`.
    Query(Query),
    /// A write for `Session::apply`.
    Mutation(Mutation),
    /// Transaction control, handled by the connection, not the session.
    Control(TxnControl),
}

/// How a compiled statement is routed across a sharded cluster.
///
/// This is *metadata only* — the dialect is unchanged — but it is derived
/// here, next to the lowering rules, so a coordinator never re-implements
/// the statement classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Send the statement to every shard and merge the disjoint row sets by
    /// key (filter queries, plain aggregations, `HAVING` aggregations).
    Broadcast,
    /// Send to every shard with a bounded per-shard `k` and refine with the
    /// distributed threshold algorithm (ranked queries: `ORDER BY .. LIMIT`).
    Ranked {
        /// The statement's global `k` (its `LIMIT`).
        k: usize,
        /// The ranking order.
        order: Order,
    },
    /// Split the write batch by the owning shard of each tuple's image id
    /// (`INSERT`): group members must co-locate for grouped queries to merge
    /// exactly.
    ByImage,
    /// Resolve each mask id's owning shard, then split (`DELETE`, `UPDATE`).
    ByMaskId,
    /// Apply on every shard and require every one to succeed
    /// (`CREATE INDEX` / `DROP INDEX`): index definitions must not drift
    /// between shards.
    Ddl,
    /// Not routable: `BEGIN`/`COMMIT`/`ROLLBACK` manipulate per-connection
    /// state, so a coordinator either scopes the whole transaction to one
    /// owning shard or rejects it.
    Control,
}

impl Statement {
    /// The cluster routing of this statement.
    pub fn routing(&self) -> Routing {
        match self {
            Statement::Query(query) => match &query.kind {
                QueryKind::TopK { k, order, .. } => Routing::Ranked {
                    k: *k,
                    order: *order,
                },
                QueryKind::Aggregate {
                    top_k: Some((k, order)),
                    ..
                }
                | QueryKind::MaskAggregate {
                    top_k: Some((k, order)),
                    ..
                } => Routing::Ranked {
                    k: *k,
                    order: *order,
                },
                // Pair queries key rows by image id — the shard map's hash
                // key — so ranked pairs refine like any ranked query and
                // pair filters merge as a broadcast.
                QueryKind::PairTopK { k, order, .. } => Routing::Ranked {
                    k: *k,
                    order: *order,
                },
                _ => Routing::Broadcast,
            },
            Statement::Mutation(Mutation::Insert(_)) => Routing::ByImage,
            Statement::Mutation(Mutation::Delete(_) | Mutation::Update(_)) => Routing::ByMaskId,
            Statement::Mutation(Mutation::CreateIndex { .. } | Mutation::DropIndex { .. }) => {
                Routing::Ddl
            }
            Statement::Control(_) => Routing::Control,
        }
    }
}

/// Which flavour of `EXPLAIN` a statement asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainMode {
    /// `EXPLAIN <query>`: show the plan shape without executing.
    Plan,
    /// `EXPLAIN ANALYZE <query>`: execute and annotate the plan with the
    /// measured statistics.
    Analyze,
}

/// Recognizes an `EXPLAIN [ANALYZE]` prefix and returns the mode plus the
/// inner statement text, or `None` when the input is not an `EXPLAIN`.
///
/// The keywords are case-insensitive and must be whole words, so a query on
/// a hypothetical `explained` column is not misparsed. The inner statement is
/// *not* validated here — compilation happens wherever the caller already
/// compiles SQL, keeping one error path.
///
/// ```
/// use masksearch_sql::{strip_explain, ExplainMode};
/// let (mode, inner) = strip_explain("EXPLAIN ANALYZE SELECT mask_id FROM masks").unwrap();
/// assert_eq!(mode, ExplainMode::Analyze);
/// assert_eq!(inner, "SELECT mask_id FROM masks");
/// assert!(strip_explain("SELECT mask_id FROM masks").is_none());
/// ```
pub fn strip_explain(sql: &str) -> Option<(ExplainMode, &str)> {
    fn strip_keyword<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
        let trimmed = text.trim_start();
        if trimmed.len() < keyword.len() || !trimmed[..keyword.len()].eq_ignore_ascii_case(keyword)
        {
            return None;
        }
        let rest = &trimmed[keyword.len()..];
        // Whole-word match only: the keyword must be followed by whitespace
        // (a bare `EXPLAIN` with nothing after it is not a statement).
        rest.starts_with(|c: char| c.is_whitespace())
            .then_some(rest)
    }
    let rest = strip_keyword(sql, "EXPLAIN")?;
    match strip_keyword(rest, "ANALYZE") {
        Some(inner) => Some((ExplainMode::Analyze, inner.trim())),
        None => Some((ExplainMode::Plan, rest.trim())),
    }
}

/// Parse error with a human-readable message and byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected (best effort).
    pub offset: usize,
}

impl SqlError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset,
        }
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SqlError {}

/// Parses a SQL statement and lowers it to an executable [`Query`].
///
/// ```
/// use masksearch_sql::compile;
/// let query = compile(
///     "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, 64, 64), (0.8, 1.0)) > 500 AND model_id = 1",
/// ).unwrap();
/// assert!(!query.is_grouped());
/// ```
pub fn compile(sql: &str) -> Result<Query, SqlError> {
    let statement = parse(sql)?;
    lower(&statement)
}

/// Parses any statement — `SELECT`, `INSERT`, or `DELETE` — and lowers it to
/// an executable [`Statement`].
///
/// ```
/// use masksearch_sql::{compile_statement, Statement};
/// let statement = compile_statement(
///     "INSERT INTO masks VALUES (7, 3, 2, 2, (0.1, 0.2, 0.3, 0.4))",
/// ).unwrap();
/// assert!(matches!(statement, Statement::Mutation(_)));
/// ```
pub fn compile_statement(sql: &str) -> Result<Statement, SqlError> {
    let statement = parse_statement(sql)?;
    lower_statement(&statement)
}

/// Compiles a `;`-separated script into its statements, in order.
///
/// The dialect has no string literals, so every `;` is a statement
/// separator. Empty statements (trailing `;`, doubled separators) are
/// skipped; reported error offsets are relative to the whole script.
///
/// ```
/// use masksearch_sql::{compile_script, Statement, TxnControl};
/// let script = compile_script(
///     "BEGIN; DELETE FROM masks WHERE mask_id = 1; COMMIT;",
/// ).unwrap();
/// assert_eq!(script.len(), 3);
/// assert!(matches!(script[0], Statement::Control(TxnControl::Begin)));
/// assert!(matches!(script[2], Statement::Control(TxnControl::Commit)));
/// ```
pub fn compile_script(sql: &str) -> Result<Vec<Statement>, SqlError> {
    let mut statements = Vec::new();
    let mut offset = 0usize;
    for piece in sql.split(';') {
        if !piece.trim().is_empty() {
            let statement = compile_statement(piece).map_err(|mut e| {
                e.offset += offset;
                e
            })?;
            statements.push(statement);
        }
        offset += piece.len() + 1;
    }
    Ok(statements)
}

#[cfg(test)]
mod explain_tests {
    use super::*;

    #[test]
    fn explain_prefix_is_recognized_case_insensitively() {
        let (mode, inner) = strip_explain("explain select mask_id from masks").unwrap();
        assert_eq!(mode, ExplainMode::Plan);
        assert_eq!(inner, "select mask_id from masks");

        let (mode, inner) =
            strip_explain("  EXPLAIN  Analyze  SELECT mask_id FROM masks  ").unwrap();
        assert_eq!(mode, ExplainMode::Analyze);
        assert_eq!(inner, "SELECT mask_id FROM masks");
    }

    #[test]
    fn non_explain_statements_pass_through() {
        assert!(strip_explain("SELECT mask_id FROM masks").is_none());
        assert!(strip_explain("INSERT INTO masks VALUES (1, 1, 1, 1, (0.5))").is_none());
        // Keyword must be a whole word…
        assert!(strip_explain("EXPLAINED SELECT 1").is_none());
        // …and must be followed by an actual statement.
        assert!(strip_explain("EXPLAIN").is_none());
        assert!(strip_explain("").is_none());
    }

    #[test]
    fn explain_analyze_needs_word_boundary_too() {
        // `ANALYZER` is not the ANALYZE keyword: the whole remainder is the
        // inner statement of a plain EXPLAIN.
        let (mode, inner) = strip_explain("EXPLAIN ANALYZER").unwrap();
        assert_eq!(mode, ExplainMode::Plan);
        assert_eq!(inner, "ANALYZER");
    }

    #[test]
    fn inner_statement_still_compiles() {
        let (mode, inner) = strip_explain(
            "EXPLAIN ANALYZE SELECT mask_id FROM masks \
             WHERE CP(mask, (0, 0, 8, 8), (0.5, 1.0)) > 5",
        )
        .unwrap();
        assert_eq!(mode, ExplainMode::Analyze);
        assert!(matches!(
            compile_statement(inner).unwrap(),
            Statement::Query(_)
        ));
    }
}

#[cfg(test)]
mod routing_tests {
    use super::*;

    #[test]
    fn statements_classify_into_cluster_routes() {
        let filter = compile_statement(
            "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, 8, 8), (0.5, 1.0)) > 5",
        )
        .unwrap();
        assert_eq!(filter.routing(), Routing::Broadcast);

        let topk = compile_statement(
            "SELECT mask_id, CP(mask, full, (0.5, 1.0)) AS s FROM masks ORDER BY s DESC LIMIT 7",
        )
        .unwrap();
        assert_eq!(
            topk.routing(),
            Routing::Ranked {
                k: 7,
                order: Order::Desc
            }
        );

        let grouped_topk = compile_statement(
            "SELECT image_id, AVG(CP(mask, full, (0.5, 1.0))) AS s FROM masks \
             GROUP BY image_id ORDER BY s ASC LIMIT 3",
        )
        .unwrap();
        assert_eq!(
            grouped_topk.routing(),
            Routing::Ranked {
                k: 3,
                order: Order::Asc
            }
        );

        let having = compile_statement(
            "SELECT image_id, SUM(CP(mask, full, (0.5, 1.0))) AS s FROM masks \
             GROUP BY image_id HAVING s > 10",
        )
        .unwrap();
        assert_eq!(having.routing(), Routing::Broadcast);

        let insert =
            compile_statement("INSERT INTO masks VALUES (7, 3, 2, 2, (0.1, 0.2, 0.3, 0.4))")
                .unwrap();
        assert_eq!(insert.routing(), Routing::ByImage);

        let delete = compile_statement("DELETE FROM masks WHERE mask_id IN (7, 8)").unwrap();
        assert_eq!(delete.routing(), Routing::ByMaskId);

        let update = compile_statement("UPDATE masks SET model_id = 2 WHERE mask_id = 7").unwrap();
        assert_eq!(update.routing(), Routing::ByMaskId);

        let create = compile_statement("CREATE INDEX by_model ON masks (model_id)").unwrap();
        assert_eq!(create.routing(), Routing::Ddl);
        let drop = compile_statement("DROP INDEX by_model").unwrap();
        assert_eq!(drop.routing(), Routing::Ddl);

        for sql in ["BEGIN", "COMMIT", "ROLLBACK"] {
            assert_eq!(compile_statement(sql).unwrap().routing(), Routing::Control);
        }
    }

    #[test]
    fn scripts_split_on_semicolons() {
        let script = compile_script(
            "BEGIN;\
             INSERT INTO masks VALUES (1, 0, 1, 1, (0.5));\
             UPDATE masks SET model_id = 2 WHERE mask_id = 1;\
             DELETE FROM masks WHERE mask_id = 1;\
             COMMIT;",
        )
        .unwrap();
        assert_eq!(script.len(), 5);
        assert!(matches!(script[0], Statement::Control(TxnControl::Begin)));
        assert!(matches!(
            script[1],
            Statement::Mutation(Mutation::Insert(_))
        ));
        assert!(matches!(
            script[2],
            Statement::Mutation(Mutation::Update(_))
        ));
        assert!(matches!(
            script[3],
            Statement::Mutation(Mutation::Delete(_))
        ));
        assert!(matches!(script[4], Statement::Control(TxnControl::Commit)));

        // Empty pieces are skipped; errors carry script-relative offsets.
        assert_eq!(compile_script(" ; ;; ").unwrap().len(), 0);
        let err = compile_script("BEGIN; SELECT garbage;").unwrap_err();
        assert!(err.offset >= 6, "offset {} not script-relative", err.offset);
    }
}
