//! Lowering of parsed SQL statements onto the `masksearch-query` model.

use crate::ast::{
    Condition, MaskArg, RoiExpr, SelectItem, SqlCmp, SqlCreateIndex, SqlDelete, SqlExpr, SqlInsert,
    SqlJoin, SqlOrder, SqlQuery, SqlStatement, SqlUpdate,
};
use crate::{SqlError, Statement, TxnControl};
use masksearch_core::{
    ImageId, Label, Mask, MaskAgg, MaskId, MaskRecord, MaskType, ModelId, PixelRange, Roi,
};
use masksearch_query::{
    CmpOp, CpTerm, Expr, MaskJoin, MaskUpdate, Mutation, Order, Predicate, Query, QueryKind,
    RoiSpec, ScalarAgg, Selection, TermSource,
};
use masksearch_storage::MetaColumn;

/// The join aliases in scope while lowering a pair query's expressions.
struct JoinCtx<'a> {
    left: &'a str,
    right: &'a str,
}

impl JoinCtx<'_> {
    /// Maps an alias to the pair side it names.
    fn side(&self, alias: &str) -> Result<TermSource, SqlError> {
        if alias == self.left {
            Ok(TermSource::Left)
        } else if alias == self.right {
            Ok(TermSource::Right)
        } else {
            Err(SqlError::new(format!("unknown join alias `{alias}`"), 0))
        }
    }

    /// Validates that a two-operand composition names both join sides (in
    /// either order — the compositions are symmetric).
    fn check_pair(&self, left: &str, right: &str) -> Result<(), SqlError> {
        let a = self.side(left)?;
        let b = self.side(right)?;
        if a == b {
            return Err(SqlError::new(
                format!("a mask composition needs both sides of the join, got `{left}` twice"),
                0,
            ));
        }
        Ok(())
    }
}

/// Lowers any parsed statement into an executable [`Statement`].
pub fn lower_statement(statement: &SqlStatement) -> Result<Statement, SqlError> {
    match statement {
        SqlStatement::Query(query) => Ok(Statement::Query(lower(query)?)),
        SqlStatement::Insert(insert) => Ok(Statement::Mutation(lower_insert(insert)?)),
        SqlStatement::Delete(delete) => Ok(Statement::Mutation(lower_delete(delete))),
        SqlStatement::Update(update) => Ok(Statement::Mutation(lower_update(update)?)),
        SqlStatement::CreateIndex(ddl) => Ok(Statement::Mutation(lower_create_index(ddl)?)),
        SqlStatement::DropIndex(ddl) => Ok(Statement::Mutation(Mutation::DropIndex {
            name: ddl.name.clone(),
            if_exists: ddl.if_exists,
        })),
        SqlStatement::Begin => Ok(Statement::Control(TxnControl::Begin)),
        SqlStatement::Commit => Ok(Statement::Control(TxnControl::Commit)),
        SqlStatement::Rollback => Ok(Statement::Control(TxnControl::Rollback)),
    }
}

/// Lowers an `UPDATE`, validating the assignment combination (shape fields
/// require pixels, and when both are given the pixel count must match; a
/// pixel list alone is checked against the mask's current shape at apply
/// time).
fn lower_update(update: &SqlUpdate) -> Result<Mutation, SqlError> {
    let shape = match (update.width, update.height) {
        (Some(w), Some(h)) => Some((w, h)),
        (None, None) => None,
        _ => {
            return Err(SqlError::new(
                "UPDATE must set width and height together (or neither)",
                0,
            ))
        }
    };
    if shape.is_some() && update.pixels.is_none() {
        return Err(SqlError::new(
            "UPDATE cannot re-shape a mask without assigning pixels",
            0,
        ));
    }
    if let (Some((w, h)), Some(pixels)) = (shape, update.pixels.as_ref()) {
        let expected = (w as usize) * (h as usize);
        if pixels.len() != expected {
            return Err(SqlError::new(
                format!(
                    "UPDATE declares shape {w}x{h} ({expected} pixels) but assigns {}",
                    pixels.len()
                ),
                0,
            ));
        }
    }
    let lowered = MaskUpdate {
        mask_id: MaskId::new(update.mask_id),
        pixels: update
            .pixels
            .as_ref()
            .map(|pixels| pixels.iter().map(|&v| v as f32).collect()),
        shape,
        model_id: update.model_id.map(ModelId::new),
        mask_type: update.mask_type.map(MaskType::from_code),
        predicted_label: update.predicted_label.map(Label::new),
        true_label: update.true_label.map(Label::new),
    };
    if lowered.is_noop() {
        return Err(SqlError::new("UPDATE needs at least one SET assignment", 0));
    }
    Ok(Mutation::Update(vec![lowered]))
}

/// Lowers a `CREATE INDEX`, validating the indexed column.
fn lower_create_index(ddl: &SqlCreateIndex) -> Result<Mutation, SqlError> {
    let column = MetaColumn::parse(&ddl.column).ok_or_else(|| {
        SqlError::new(
            format!(
                "column `{}` cannot be indexed (supported: image_id, model_id, \
                 mask_type, predicted_label)",
                ddl.column
            ),
            0,
        )
    })?;
    Ok(Mutation::CreateIndex {
        name: ddl.name.clone(),
        column,
        if_not_exists: ddl.if_not_exists,
    })
}

/// Lowers an `INSERT`, validating every tuple's shape and pixel domain.
fn lower_insert(insert: &SqlInsert) -> Result<Mutation, SqlError> {
    if insert.rows.is_empty() {
        return Err(SqlError::new("INSERT needs at least one tuple", 0));
    }
    let mut batch = Vec::with_capacity(insert.rows.len());
    for row in &insert.rows {
        let expected = (row.width as usize) * (row.height as usize);
        if row.pixels.len() != expected {
            return Err(SqlError::new(
                format!(
                    "mask {} declares shape {}x{} ({expected} pixels) but the tuple carries {}",
                    row.mask_id,
                    row.width,
                    row.height,
                    row.pixels.len()
                ),
                0,
            ));
        }
        let pixels: Vec<f32> = row.pixels.iter().map(|&v| v as f32).collect();
        let mask = Mask::new(row.width, row.height, pixels)
            .map_err(|e| SqlError::new(format!("mask {} is invalid: {e}", row.mask_id), 0))?;
        let record = MaskRecord::builder(MaskId::new(row.mask_id))
            .image_id(ImageId::new(row.image_id))
            .shape(row.width, row.height)
            .build();
        batch.push((record, mask));
    }
    Ok(Mutation::Insert(batch))
}

fn lower_delete(delete: &SqlDelete) -> Mutation {
    Mutation::Delete(delete.mask_ids.iter().map(|&id| MaskId::new(id)).collect())
}

/// Lowers a parsed statement into an executable [`Query`].
pub fn lower(statement: &SqlQuery) -> Result<Query, SqlError> {
    if let Some(join) = &statement.join {
        return lower_pair(statement, join);
    }
    let (selection, cp_predicate) = lower_where(statement.where_clause.as_ref())?;

    if let Some(group_column) = &statement.group_by {
        if group_column != "image_id" {
            return Err(SqlError::new(
                format!("GROUP BY {group_column} is not supported (only image_id)"),
                0,
            ));
        }
        if cp_predicate.is_some() {
            return Err(SqlError::new(
                "CP predicates in WHERE are not supported together with GROUP BY; use HAVING",
                0,
            ));
        }
        return lower_grouped(statement, selection);
    }

    // Ungrouped: ORDER BY + LIMIT means a top-k query; otherwise a filter.
    if let (Some((order_expr, order)), Some(limit)) = (&statement.order_by, statement.limit) {
        let expr = resolve_order_expr(order_expr, &statement.select)?;
        let expr = lower_expr(&expr)?;
        let mut query = Query::top_k(expr, limit, lower_order(*order));
        query.selection = selection;
        return Ok(query);
    }

    let predicate = cp_predicate.ok_or_else(|| {
        SqlError::new(
            "a non-grouped query needs either a CP predicate in WHERE or ORDER BY ... LIMIT",
            0,
        )
    })?;
    let mut query = Query::filter(predicate);
    query.selection = selection;
    Ok(query)
}

/// Splits the WHERE clause into a relational [`Selection`] (metadata
/// conditions) and an optional CP [`Predicate`].
fn lower_where(condition: Option<&Condition>) -> Result<(Selection, Option<Predicate>), SqlError> {
    let mut selection = Selection::all();
    let mut predicate: Option<Predicate> = None;
    if let Some(condition) = condition {
        collect_conjuncts(condition, &mut selection, &mut predicate)?;
    }
    Ok((selection, predicate))
}

fn collect_conjuncts(
    condition: &Condition,
    selection: &mut Selection,
    predicate: &mut Option<Predicate>,
) -> Result<(), SqlError> {
    match condition {
        Condition::And(lhs, rhs) => {
            collect_conjuncts(lhs, selection, predicate)?;
            collect_conjuncts(rhs, selection, predicate)?;
            Ok(())
        }
        Condition::Or(lhs, rhs) => {
            // OR is only supported between CP comparisons.
            let l = lower_cp_condition(lhs, None)?;
            let r = lower_cp_condition(rhs, None)?;
            merge_predicate(predicate, l.or(r));
            Ok(())
        }
        Condition::MetaEq {
            qualifier,
            column,
            value,
        } => {
            reject_qualifier(qualifier)?;
            apply_meta(selection, column, std::slice::from_ref(value))
        }
        Condition::MetaIn {
            qualifier,
            column,
            values,
        } => {
            reject_qualifier(qualifier)?;
            apply_meta(selection, column, values)
        }
        Condition::Compare { .. } => {
            let p = lower_cp_condition(condition, None)?;
            merge_predicate(predicate, p);
            Ok(())
        }
    }
}

fn reject_qualifier(qualifier: &Option<String>) -> Result<(), SqlError> {
    match qualifier {
        Some(alias) => Err(SqlError::new(
            format!("qualified column `{alias}.…` requires a JOIN clause"),
            0,
        )),
        None => Ok(()),
    }
}

fn merge_predicate(slot: &mut Option<Predicate>, new: Predicate) {
    *slot = Some(match slot.take() {
        Some(existing) => existing.and(new),
        None => new,
    });
}

fn lower_cp_condition(
    condition: &Condition,
    join: Option<&JoinCtx<'_>>,
) -> Result<Predicate, SqlError> {
    match condition {
        Condition::Compare { expr, op, value } => {
            let expr = lower_expr_in(expr, join)?;
            Ok(match op {
                SqlCmp::Gt => Predicate::gt(expr, *value),
                SqlCmp::Ge => Predicate::ge(expr, *value),
                SqlCmp::Lt => Predicate::lt(expr, *value),
                SqlCmp::Le => Predicate::le(expr, *value),
                SqlCmp::Eq => Predicate::ge(expr.clone(), *value).and(Predicate::le(expr, *value)),
            })
        }
        Condition::And(lhs, rhs) => {
            Ok(lower_cp_condition(lhs, join)?.and(lower_cp_condition(rhs, join)?))
        }
        Condition::Or(lhs, rhs) => {
            Ok(lower_cp_condition(lhs, join)?.or(lower_cp_condition(rhs, join)?))
        }
        Condition::MetaEq { column, .. } | Condition::MetaIn { column, .. } => Err(SqlError::new(
            format!("metadata condition on `{column}` cannot appear under OR"),
            0,
        )),
    }
}

/// Lowers a self-join (pair) statement into a `PairFilter` / `PairTopK`
/// query: qualified metadata conditions refine one side's binding,
/// unqualified ones the shared image set, and every `CP` term must name a
/// side (`a.mask`) or a composition of both.
fn lower_pair(statement: &SqlQuery, join: &SqlJoin) -> Result<Query, SqlError> {
    if statement.group_by.is_some() {
        return Err(SqlError::new(
            "GROUP BY is not supported in JOIN queries (the join already groups by image)",
            0,
        ));
    }
    if statement.having.is_some() {
        return Err(SqlError::new(
            "HAVING is not supported in JOIN queries; put pair predicates in WHERE",
            0,
        ));
    }
    let ctx = JoinCtx {
        left: &join.left,
        right: &join.right,
    };
    let mut outer = Selection::all();
    let mut left = Selection::all();
    let mut right = Selection::all();
    let mut predicate: Option<Predicate> = None;
    if let Some(condition) = &statement.where_clause {
        collect_pair_conjuncts(
            condition,
            &ctx,
            &mut outer,
            &mut left,
            &mut right,
            &mut predicate,
        )?;
    }
    let mask_join = MaskJoin::new(left, right);

    if let (Some((order_expr, order)), Some(limit)) = (&statement.order_by, statement.limit) {
        // A ranked pair query has no predicate slot; dropping a WHERE CP
        // condition silently would rank unfiltered pairs — reject instead.
        if predicate.is_some() {
            return Err(SqlError::new(
                "a JOIN query cannot combine a CP predicate in WHERE with ORDER BY ... LIMIT; \
                 drop one of the two",
                0,
            ));
        }
        let expr = resolve_order_expr(order_expr, &statement.select)?;
        let expr = lower_expr_in(&expr, Some(&ctx))?;
        let mut query = Query::pair_top_k(mask_join, expr, limit, lower_order(*order));
        query.selection = outer;
        return Ok(query);
    }

    let predicate = predicate.ok_or_else(|| {
        SqlError::new(
            "a JOIN query needs either a pair predicate in WHERE or ORDER BY ... LIMIT",
            0,
        )
    })?;
    let mut query = Query::pair_filter(mask_join, predicate);
    query.selection = outer;
    Ok(query)
}

fn collect_pair_conjuncts(
    condition: &Condition,
    ctx: &JoinCtx<'_>,
    outer: &mut Selection,
    left: &mut Selection,
    right: &mut Selection,
    predicate: &mut Option<Predicate>,
) -> Result<(), SqlError> {
    match condition {
        Condition::And(lhs, rhs) => {
            collect_pair_conjuncts(lhs, ctx, outer, left, right, predicate)?;
            collect_pair_conjuncts(rhs, ctx, outer, left, right, predicate)?;
            Ok(())
        }
        Condition::Or(lhs, rhs) => {
            let l = lower_cp_condition(lhs, Some(ctx))?;
            let r = lower_cp_condition(rhs, Some(ctx))?;
            merge_predicate(predicate, l.or(r));
            Ok(())
        }
        Condition::MetaEq {
            qualifier,
            column,
            value,
        } => {
            let target = pair_meta_target(qualifier, ctx, outer, left, right)?;
            apply_meta(target, column, std::slice::from_ref(value))
        }
        Condition::MetaIn {
            qualifier,
            column,
            values,
        } => {
            let target = pair_meta_target(qualifier, ctx, outer, left, right)?;
            apply_meta(target, column, values)
        }
        Condition::Compare { .. } => {
            let p = lower_cp_condition(condition, Some(ctx))?;
            merge_predicate(predicate, p);
            Ok(())
        }
    }
}

/// Picks the selection a (possibly qualified) metadata condition refines.
fn pair_meta_target<'s>(
    qualifier: &Option<String>,
    ctx: &JoinCtx<'_>,
    outer: &'s mut Selection,
    left: &'s mut Selection,
    right: &'s mut Selection,
) -> Result<&'s mut Selection, SqlError> {
    match qualifier.as_deref() {
        None => Ok(outer),
        Some(alias) => match ctx.side(alias)? {
            TermSource::Left => Ok(left),
            _ => Ok(right),
        },
    }
}

fn apply_meta(selection: &mut Selection, column: &str, values: &[u64]) -> Result<(), SqlError> {
    match column {
        "model_id" => {
            if values.len() != 1 {
                return Err(SqlError::new("model_id supports a single value", 0));
            }
            selection.model_id = Some(ModelId::new(values[0]));
        }
        "mask_type" => {
            selection.mask_types = Some(
                values
                    .iter()
                    .map(|v| MaskType::from_code(*v as u16))
                    .collect(),
            );
        }
        "predicted_label" => {
            selection.predicted_labels = Some(values.iter().map(|v| Label::new(*v)).collect());
        }
        "image_id" => {
            selection.image_ids = Some(values.iter().map(|v| ImageId::new(*v)).collect());
        }
        "mask_id" => {
            selection.mask_ids = Some(values.iter().map(|v| MaskId::new(*v)).collect());
        }
        other => {
            return Err(SqlError::new(
                format!("unsupported metadata column `{other}`"),
                0,
            ))
        }
    }
    Ok(())
}

/// Resolves the ORDER BY expression: either an alias of a SELECT item or a
/// full expression.
fn resolve_order_expr(order_expr: &SqlExpr, select: &[SelectItem]) -> Result<SqlExpr, SqlError> {
    if let SqlExpr::Alias(alias) = order_expr {
        for item in select {
            if item.alias.as_deref() == Some(alias.as_str()) {
                return item.expr.clone().ok_or_else(|| {
                    SqlError::new(format!("alias `{alias}` does not name an expression"), 0)
                });
            }
        }
        return Err(SqlError::new(format!("unknown alias `{alias}`"), 0));
    }
    Ok(order_expr.clone())
}

fn lower_order(order: SqlOrder) -> Order {
    match order {
        SqlOrder::Asc => Order::Asc,
        SqlOrder::Desc => Order::Desc,
    }
}

fn lower_cmp(op: SqlCmp) -> CmpOp {
    match op {
        SqlCmp::Gt => CmpOp::Gt,
        SqlCmp::Ge => CmpOp::Ge,
        SqlCmp::Lt => CmpOp::Lt,
        SqlCmp::Le => CmpOp::Le,
        // Equality in HAVING degrades to >= (callers rarely use it; kept for
        // completeness).
        SqlCmp::Eq => CmpOp::Ge,
    }
}

fn lower_roi(roi: &RoiExpr) -> Result<RoiSpec, SqlError> {
    Ok(match roi {
        RoiExpr::Object => RoiSpec::ObjectBox,
        RoiExpr::Full => RoiSpec::FullMask,
        RoiExpr::Box { x0, y0, x1, y1 } => RoiSpec::Constant(
            Roi::new(*x0, *y0, *x1, *y1)
                .map_err(|e| SqlError::new(format!("invalid ROI: {e}"), 0))?,
        ),
    })
}

fn lower_range(lv: f64, uv: f64) -> Result<PixelRange, SqlError> {
    PixelRange::new(lv as f32, uv as f32)
        .map_err(|e| SqlError::new(format!("invalid pixel range: {e}"), 0))
}

/// Lowers a scalar expression containing only plain-mask `CP` terms.
fn lower_expr(expr: &SqlExpr) -> Result<Expr, SqlError> {
    lower_expr_in(expr, None)
}

/// Lowers a scalar expression; inside a JOIN query (`join` present) `CP`
/// terms must name a join side or a composition of both, outside one they
/// must be plain.
fn lower_expr_in(expr: &SqlExpr, join: Option<&JoinCtx<'_>>) -> Result<Expr, SqlError> {
    match expr {
        SqlExpr::Number(v) => Ok(Expr::Const(*v)),
        SqlExpr::Cp { mask, roi, lv, uv } => {
            let source =
                match (mask, join) {
                    (MaskArg::Plain, None) => TermSource::Own,
                    (MaskArg::Plain, Some(_)) => return Err(SqlError::new(
                        "in a JOIN query every mask reference must be qualified (a.mask / b.mask)",
                        0,
                    )),
                    (MaskArg::Qualified(alias), Some(ctx)) => ctx.side(alias)?,
                    (MaskArg::Pair { op, left, right }, Some(ctx)) => {
                        ctx.check_pair(left, right)?;
                        TermSource::Compose(*op)
                    }
                    (MaskArg::Qualified(_) | MaskArg::Pair { .. }, None) => {
                        return Err(SqlError::new(
                            "qualified mask references require a JOIN clause",
                            0,
                        ))
                    }
                    (MaskArg::Intersect { .. } | MaskArg::Union { .. } | MaskArg::Mean, _) => {
                        return Err(SqlError::new(
                            "mask aggregations inside CP require GROUP BY image_id",
                            0,
                        ))
                    }
                };
            let term = CpTerm {
                source,
                roi: lower_roi(roi)?,
                range: lower_range(*lv, *uv)?,
            };
            Ok(Expr::Cp(term))
        }
        SqlExpr::Iou {
            left,
            right,
            roi,
            threshold,
        } => {
            let Some(ctx) = join else {
                return Err(SqlError::new("IOU requires a JOIN clause", 0));
            };
            ctx.check_pair(left, right)?;
            let range = PixelRange::new(*threshold as f32, 1.0)
                .map_err(|e| SqlError::new(format!("invalid IOU threshold {threshold}: {e}"), 0))?;
            Ok(Expr::iou(lower_roi(roi)?, range))
        }
        SqlExpr::Binary { op, lhs, rhs } => {
            let l = lower_expr_in(lhs, join)?;
            let r = lower_expr_in(rhs, join)?;
            Ok(match op {
                '+' => l.add(r),
                '-' => l.sub(r),
                '*' => l.mul(r),
                '/' => l.div(r),
                other => return Err(SqlError::new(format!("unknown operator `{other}`"), 0)),
            })
        }
        SqlExpr::ScalarAgg { .. } => Err(SqlError::new(
            "scalar aggregates require GROUP BY image_id",
            0,
        )),
        SqlExpr::Alias(alias) => Err(SqlError::new(
            format!("alias `{alias}` cannot be used here"),
            0,
        )),
    }
}

/// Lowers a grouped (GROUP BY image_id) statement into an aggregation or
/// mask-aggregation query.
fn lower_grouped(statement: &SqlQuery, selection: Selection) -> Result<Query, SqlError> {
    // Find the aggregate expression in the SELECT list.
    let agg_item = statement
        .select
        .iter()
        .find(|item| item.expr.is_some())
        .and_then(|item| item.expr.as_ref())
        .ok_or_else(|| SqlError::new("a GROUP BY query must select an aggregate expression", 0))?;

    let top_k = match (&statement.order_by, statement.limit) {
        (Some((_, order)), Some(limit)) => Some((limit, lower_order(*order))),
        _ => None,
    };
    let having = statement.having.map(|(op, value)| (lower_cmp(op), value));

    let kind = match agg_item {
        // SCALAR_AGG(CP(mask, ...)) -> Aggregate.
        SqlExpr::ScalarAgg { func, expr } => {
            let scalar = match func.as_str() {
                "SUM" => ScalarAgg::Sum,
                "AVG" => ScalarAgg::Avg,
                "MIN" => ScalarAgg::Min,
                "MAX" => ScalarAgg::Max,
                other => return Err(SqlError::new(format!("unknown aggregate `{other}`"), 0)),
            };
            QueryKind::Aggregate {
                expr: lower_expr(expr)?,
                agg: scalar,
                having,
                top_k,
            }
        }
        // CP(MASK_AGG(mask ...), ...) -> MaskAggregate.
        SqlExpr::Cp { mask, roi, lv, uv } if *mask != MaskArg::Plain => {
            let agg = match mask {
                MaskArg::Intersect { threshold } => MaskAgg::IntersectThreshold {
                    threshold: *threshold as f32,
                },
                MaskArg::Union { threshold } => MaskAgg::UnionThreshold {
                    threshold: *threshold as f32,
                },
                MaskArg::Mean => MaskAgg::Mean,
                MaskArg::Qualified(_) | MaskArg::Pair { .. } => {
                    return Err(SqlError::new(
                        "qualified mask references require a JOIN clause, not GROUP BY",
                        0,
                    ))
                }
                MaskArg::Plain => unreachable!("guarded by the match arm"),
            };
            QueryKind::MaskAggregate {
                agg,
                term: CpTerm {
                    source: TermSource::Own,
                    roi: lower_roi(roi)?,
                    range: lower_range(*lv, *uv)?,
                },
                having,
                top_k,
            }
        }
        other => {
            return Err(SqlError::new(
                format!("GROUP BY queries must aggregate; `{other:?}` does not"),
                0,
            ))
        }
    };

    Ok(Query { selection, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn lowers_example_1_filter() {
        let q = compile(
            "SELECT image_id FROM masks \
             WHERE CP(mask, (10, 10, 50, 50), (0.85, 1.0)) < 10000 AND model_id = 1",
        )
        .unwrap();
        assert_eq!(q.selection.model_id, Some(ModelId::new(1)));
        match q.kind {
            QueryKind::Filter { predicate } => {
                assert_eq!(predicate.comparisons().len(), 1);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn lowers_example_1_ratio_topk() {
        let q = compile(
            "SELECT image_id, CP(mask, object, (0.85, 1.0)) / CP(mask, full, (0.85, 1.0)) AS r \
             FROM masks ORDER BY r ASC LIMIT 25",
        )
        .unwrap();
        match q.kind {
            QueryKind::TopK { expr, k, order } => {
                assert_eq!(k, 25);
                assert_eq!(order, Order::Asc);
                assert_eq!(expr.terms().len(), 2);
                assert!(expr.uses_mask_specific_roi());
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn lowers_q4_style_aggregation() {
        let q = compile(
            "SELECT image_id, AVG(CP(mask, object, (0.8, 1.0))) AS s \
             FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 25",
        )
        .unwrap();
        match q.kind {
            QueryKind::Aggregate {
                agg, top_k, having, ..
            } => {
                assert_eq!(agg, ScalarAgg::Avg);
                assert_eq!(top_k, Some((25, Order::Desc)));
                assert!(having.is_none());
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn lowers_example_2_mask_aggregation() {
        let q = compile(
            "SELECT image_id, CP(INTERSECT(mask > 0.7), full, (0.7, 1.0)) AS s \
             FROM masks WHERE mask_type IN (1, 2) \
             GROUP BY image_id ORDER BY s DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(
            q.selection.mask_types,
            Some(vec![MaskType::SaliencyMap, MaskType::HumanAttentionMap])
        );
        match q.kind {
            QueryKind::MaskAggregate { agg, top_k, .. } => {
                assert_eq!(agg, MaskAgg::IntersectThreshold { threshold: 0.7 });
                assert_eq!(top_k, Some((10, Order::Desc)));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn lowers_pair_filter_and_topk() {
        use masksearch_query::TermSource;
        let q = compile(
            "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE a.model_id = 1 AND b.model_id = 2 AND image_id IN (1, 2, 3) \
             AND CP(DIFF(a.mask, b.mask), full, (0.5, 1.0)) > 100",
        )
        .unwrap();
        assert_eq!(
            q.selection.image_ids,
            Some(vec![ImageId::new(1), ImageId::new(2), ImageId::new(3)])
        );
        match &q.kind {
            QueryKind::PairFilter { join, predicate } => {
                assert_eq!(join.left.model_id, Some(ModelId::new(1)));
                assert_eq!(join.right.model_id, Some(ModelId::new(2)));
                let comparisons = predicate.comparisons();
                assert_eq!(comparisons.len(), 1);
                let terms = comparisons[0].expr.terms();
                assert_eq!(
                    terms[0].source,
                    TermSource::Compose(masksearch_core::MaskOp::Diff)
                );
            }
            other => panic!("unexpected kind {other:?}"),
        }

        let q = compile(
            "SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS s \
             FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE a.model_id = 1 AND b.model_id = 2 \
             ORDER BY s ASC LIMIT 20",
        )
        .unwrap();
        match &q.kind {
            QueryKind::PairTopK { expr, k, order, .. } => {
                assert_eq!(*k, 20);
                assert_eq!(*order, Order::Asc);
                // IOU lowers to CP∩ / CP∪ over [θ, 1).
                let terms = expr.terms();
                assert_eq!(terms.len(), 2);
                assert_eq!(
                    terms[0].source,
                    TermSource::Compose(masksearch_core::MaskOp::Intersect)
                );
                assert_eq!(
                    terms[1].source,
                    TermSource::Compose(masksearch_core::MaskOp::Union)
                );
                assert_eq!(terms[0].range, PixelRange::new(0.5, 1.0).unwrap());
            }
            other => panic!("unexpected kind {other:?}"),
        }

        // Reversed operand order is accepted (compositions are symmetric),
        // and single-side terms map to their side.
        let q = compile(
            "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE CP(UNION(b.mask, a.mask), full, (0.5, 1.0)) > 5 \
             AND CP(b.mask, full, (0.5, 1.0)) > 1",
        )
        .unwrap();
        let QueryKind::PairFilter { predicate, .. } = &q.kind else {
            panic!("expected a pair filter");
        };
        let comparisons = predicate.comparisons();
        assert_eq!(comparisons[1].expr.terms()[0].source, TermSource::Right);
    }

    #[test]
    fn rejects_invalid_pair_constructs() {
        // Unqualified mask in a JOIN query.
        assert!(compile(
            "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE CP(mask, full, (0.5, 1.0)) > 1"
        )
        .is_err());
        // Unknown alias.
        assert!(compile(
            "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE CP(c.mask, full, (0.5, 1.0)) > 1"
        )
        .is_err());
        // Composition of one side with itself.
        assert!(compile(
            "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE CP(DIFF(a.mask, a.mask), full, (0.5, 1.0)) > 1"
        )
        .is_err());
        // Qualified refs without a JOIN.
        assert!(
            compile("SELECT mask_id FROM masks WHERE CP(a.mask, full, (0.5, 1.0)) > 1").is_err()
        );
        assert!(compile(
            "SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS s FROM masks ORDER BY s ASC LIMIT 5"
        )
        .is_err());
        // Qualified metadata without a JOIN.
        assert!(compile(
            "SELECT mask_id FROM masks WHERE a.model_id = 1 AND CP(mask, full, (0.5, 1.0)) > 1"
        )
        .is_err());
        // GROUP BY and HAVING are incompatible with JOIN.
        assert!(compile(
            "SELECT image_id, AVG(CP(mask, full, (0.5, 1.0))) AS s \
             FROM masks a JOIN masks b ON a.image_id = b.image_id GROUP BY image_id"
        )
        .is_err());
        // Invalid IOU threshold.
        assert!(compile(
            "SELECT image_id, IOU(a.mask, b.mask, full, 1.5) AS s \
             FROM masks a JOIN masks b ON a.image_id = b.image_id ORDER BY s ASC LIMIT 5"
        )
        .is_err());
        // A JOIN query without pair predicate or ranking.
        assert!(
            compile("SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id")
                .is_err()
        );
        // A ranked JOIN query has no predicate slot: a CP condition in
        // WHERE must be rejected, never silently dropped.
        assert!(compile(
            "SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS s \
             FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE CP(DIFF(a.mask, b.mask), full, (0.5, 1.0)) > 100 \
             ORDER BY s ASC LIMIT 5"
        )
        .is_err());
    }

    #[test]
    fn pair_statements_route_for_the_cluster() {
        let filter = crate::compile_statement(
            "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE CP(DIFF(a.mask, b.mask), full, (0.5, 1.0)) > 10",
        )
        .unwrap();
        assert_eq!(filter.routing(), crate::Routing::Broadcast);
        let ranked = crate::compile_statement(
            "SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS s \
             FROM masks a JOIN masks b ON a.image_id = b.image_id ORDER BY s ASC LIMIT 9",
        )
        .unwrap();
        assert_eq!(
            ranked.routing(),
            crate::Routing::Ranked {
                k: 9,
                order: Order::Asc
            }
        );
    }

    #[test]
    fn lowers_having_clause() {
        let q = compile(
            "SELECT image_id, SUM(CP(mask, object, (0.8, 1.0))) AS s \
             FROM masks GROUP BY image_id HAVING s > 500",
        )
        .unwrap();
        match q.kind {
            QueryKind::Aggregate { having, agg, .. } => {
                assert_eq!(having, Some((CmpOp::Gt, 500.0)));
                assert_eq!(agg, ScalarAgg::Sum);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn lowers_insert_to_an_atomic_batch() {
        let statement =
            crate::compile_statement("INSERT INTO masks VALUES (7, 3, 2, 2, (0.1, 0.2, 0.3, 0.4))")
                .unwrap();
        let crate::Statement::Mutation(Mutation::Insert(batch)) = statement else {
            panic!("expected an insert mutation");
        };
        assert_eq!(batch.len(), 1);
        let (record, mask) = &batch[0];
        assert_eq!(record.mask_id, MaskId::new(7));
        assert_eq!(record.image_id, ImageId::new(3));
        assert_eq!((record.width, record.height), (2, 2));
        assert_eq!(mask.get(1, 1), 0.4);
    }

    #[test]
    fn lowers_delete_to_ids() {
        let statement =
            crate::compile_statement("DELETE FROM masks WHERE mask_id IN (4, 5)").unwrap();
        let crate::Statement::Mutation(Mutation::Delete(ids)) = statement else {
            panic!("expected a delete mutation");
        };
        assert_eq!(ids, vec![MaskId::new(4), MaskId::new(5)]);
    }

    #[test]
    fn lowers_update_with_validation() {
        let statement = crate::compile_statement(
            "UPDATE masks SET pixels = (0.9, 0.8, 0.7, 0.6), model_id = 5 WHERE mask_id = 7",
        )
        .unwrap();
        let crate::Statement::Mutation(Mutation::Update(updates)) = statement else {
            panic!("expected an update mutation");
        };
        assert_eq!(updates.len(), 1);
        let update = &updates[0];
        assert_eq!(update.mask_id, MaskId::new(7));
        assert_eq!(update.pixels.as_deref(), Some(&[0.9f32, 0.8, 0.7, 0.6][..]));
        assert_eq!(update.shape, None);
        assert_eq!(update.model_id, Some(ModelId::new(5)));
        assert_eq!(update.mask_type, None);

        // Re-shape: width and height must come together, pixels must match.
        let statement = crate::compile_statement(
            "UPDATE masks SET width = 2, height = 1, pixels = (0.5, 0.6) WHERE mask_id = 7",
        )
        .unwrap();
        let crate::Statement::Mutation(Mutation::Update(updates)) = statement else {
            panic!("expected an update mutation");
        };
        assert_eq!(updates[0].shape, Some((2, 1)));

        assert!(crate::compile_statement(
            "UPDATE masks SET width = 2, pixels = (0.5, 0.6) WHERE mask_id = 7"
        )
        .is_err());
        assert!(crate::compile_statement(
            "UPDATE masks SET width = 2, height = 2 WHERE mask_id = 7"
        )
        .is_err());
        assert!(crate::compile_statement(
            "UPDATE masks SET width = 2, height = 2, pixels = (0.5) WHERE mask_id = 7"
        )
        .is_err());
    }

    #[test]
    fn lowers_index_ddl_with_column_validation() {
        let statement =
            crate::compile_statement("CREATE INDEX by_model ON masks (model_id)").unwrap();
        let crate::Statement::Mutation(Mutation::CreateIndex {
            name,
            column,
            if_not_exists,
        }) = statement
        else {
            panic!("expected a create-index mutation");
        };
        assert_eq!(name, "by_model");
        assert_eq!(column, masksearch_storage::MetaColumn::ModelId);
        assert!(!if_not_exists);

        let statement = crate::compile_statement("DROP INDEX IF EXISTS by_model").unwrap();
        let crate::Statement::Mutation(Mutation::DropIndex { name, if_exists }) = statement else {
            panic!("expected a drop-index mutation");
        };
        assert_eq!(name, "by_model");
        assert!(if_exists);

        // true_label has no catalog posting map; pixels is not metadata.
        assert!(crate::compile_statement("CREATE INDEX i ON masks (true_label)").is_err());
        assert!(crate::compile_statement("CREATE INDEX i ON masks (pixels)").is_err());
    }

    #[test]
    fn lowers_transaction_control() {
        for (sql, expected) in [
            ("BEGIN", TxnControl::Begin),
            ("COMMIT", TxnControl::Commit),
            ("ROLLBACK", TxnControl::Rollback),
        ] {
            let statement = crate::compile_statement(sql).unwrap();
            let crate::Statement::Control(control) = statement else {
                panic!("expected a control statement for {sql}");
            };
            assert_eq!(control, expected);
        }
    }

    #[test]
    fn compile_statement_also_lowers_queries() {
        let statement = crate::compile_statement(
            "SELECT mask_id FROM masks WHERE CP(mask, full, (0.5, 1.0)) > 3",
        )
        .unwrap();
        assert!(matches!(statement, crate::Statement::Query(_)));
    }

    #[test]
    fn insert_validation_rejects_bad_tuples() {
        // Pixel count does not match the declared shape.
        assert!(
            crate::compile_statement("INSERT INTO masks VALUES (1, 0, 2, 2, (0.1, 0.2, 0.3))")
                .is_err()
        );
        // Out-of-domain pixel value.
        assert!(crate::compile_statement("INSERT INTO masks VALUES (1, 0, 1, 1, (1.5))").is_err());
    }

    #[test]
    fn rejects_unsupported_constructs() {
        // Aggregate without GROUP BY.
        assert!(compile(
            "SELECT AVG(CP(mask, full, (0.5, 1.0))) AS s FROM masks ORDER BY s DESC LIMIT 5"
        )
        .is_err());
        // GROUP BY on an unsupported column.
        assert!(compile(
            "SELECT model_id, AVG(CP(mask, full, (0.5, 1.0))) AS s FROM masks GROUP BY model_id"
        )
        .is_err());
        // Mask aggregation without GROUP BY.
        assert!(compile(
            "SELECT mask_id FROM masks WHERE CP(INTERSECT(mask > 0.5), full, (0.5, 1.0)) > 10"
        )
        .is_err());
        // Metadata column under OR.
        assert!(compile(
            "SELECT mask_id FROM masks WHERE model_id = 1 OR CP(mask, full, (0.5, 1.0)) > 10"
        )
        .is_err());
        // No predicate and no ranking.
        assert!(compile("SELECT mask_id FROM masks").is_err());
        // Unknown alias in ORDER BY.
        assert!(compile("SELECT mask_id FROM masks ORDER BY bogus DESC LIMIT 5").is_err());
        // Invalid range.
        assert!(
            compile("SELECT mask_id FROM masks WHERE CP(mask, full, (0.9, 0.1)) > 10").is_err()
        );
    }
}
