//! Tokenizer for the MaskSearch SQL dialect.

use crate::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased for keywords at parse time).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.` (qualified references such as `a.mask`; a `.` directly starting
    /// a digit sequence still lexes as a numeric literal)
    Dot,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `;`
    Semicolon,
}

/// A token together with its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    offset: i,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Spanned {
                    token: Token::Slash,
                    offset: i,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Spanned {
                    token: Token::Plus,
                    offset: i,
                });
                i += 1;
            }
            '-' => {
                // `--` starts a comment running to end of line.
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Spanned {
                        token: Token::Minus,
                        offset: i,
                    });
                    i += 1;
                }
            }
            ';' => {
                tokens.push(Spanned {
                    token: Token::Semicolon,
                    offset: i,
                });
                i += 1;
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned {
                        token: Token::Le,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Spanned {
                    token: Token::Eq,
                    offset: i,
                });
                i += 1;
            }
            '.' if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() => {
                tokens.push(Spanned {
                    token: Token::Dot,
                    offset: i,
                });
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let value = text.parse::<f64>().map_err(|_| {
                    SqlError::new(format!("invalid numeric literal `{text}`"), start)
                })?;
                tokens.push(Spanned {
                    token: Token::Number(value),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Spanned {
                    token: Token::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(SqlError::new(format!("unexpected character `{other}`"), i));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Token> {
        tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn tokenizes_a_representative_statement() {
        let tokens =
            kinds("SELECT mask_id FROM masks WHERE CP(mask, (1, 2, 3, 4), (0.8, 1.0)) >= 500;");
        assert!(tokens.contains(&Token::Ident("SELECT".to_string())));
        assert!(tokens.contains(&Token::Ge));
        assert!(tokens.contains(&Token::Number(0.8)));
        assert!(tokens.contains(&Token::Semicolon));
    }

    #[test]
    fn numbers_operators_and_comments() {
        assert_eq!(
            kinds("1.5e-2 -- trailing comment\n + 3"),
            vec![Token::Number(0.015), Token::Plus, Token::Number(3.0)]
        );
        assert_eq!(
            kinds("a<=b"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into())
            ]
        );
        assert_eq!(
            kinds("x - 1"),
            vec![Token::Ident("x".into()), Token::Minus, Token::Number(1.0)]
        );
    }

    #[test]
    fn rejects_bad_characters_and_numbers() {
        assert!(tokenize("SELECT ?").is_err());
        assert!(tokenize("1.2.3").is_err());
    }

    #[test]
    fn dots_lex_as_qualifiers_but_not_inside_numbers() {
        assert_eq!(
            kinds("a.mask"),
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("mask".into())
            ]
        );
        assert_eq!(kinds("1.5"), vec![Token::Number(1.5)]);
        assert_eq!(kinds(".5"), vec![Token::Number(0.5)]);
        assert_eq!(kinds("b ."), vec![Token::Ident("b".into()), Token::Dot]);
    }

    #[test]
    fn offsets_point_into_the_input() {
        let tokens = tokenize("SELECT  image_id").unwrap();
        assert_eq!(tokens[1].offset, 8);
    }
}
