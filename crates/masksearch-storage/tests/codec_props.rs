//! Property tests of the mask compression codec under hostile input:
//!
//! 1. Round trips are bit-exact for arbitrary pixel buffers, including NaN,
//!    ±∞, signed zeros, and denormals — the codec works on raw bit patterns.
//! 2. Every truncated prefix of a valid payload is rejected.
//! 3. Arbitrary byte soup either fails to decode or decodes to exactly the
//!    declared pixel count — and the decoder never materialises more than
//!    the declared length, bounding allocation amplification on crafted run
//!    tokens.
//!
//! These run in CI under `cargo test -p masksearch-storage --release` so the
//! expensive byte-level cases execute optimized.

use masksearch_storage::compression::{compress, decompress};
use proptest::prelude::*;

/// Arbitrary pixel buffers biased towards special IEEE values.
fn arb_pixels() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((any::<u32>(), 0u32..8), 0..512).prop_map(|raw| {
        raw.into_iter()
            .map(|(bits, kind)| match kind {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => -0.0,
                4 => 0.0,
                5 => f32::from_bits(bits % 8), // denormals
                // In-domain values, the common case.
                _ => (bits % 1000) as f32 / 1000.0,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_is_bit_exact(pixels in arb_pixels()) {
        let payload = compress(&pixels);
        let decoded = decompress(&payload, pixels.len()).expect("valid payload decodes");
        prop_assert_eq!(decoded.len(), pixels.len());
        for (a, b) in decoded.iter().zip(&pixels) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // The declared length is part of the contract in both directions.
        if !pixels.is_empty() {
            prop_assert!(decompress(&payload, pixels.len() - 1).is_none());
        }
        prop_assert!(decompress(&payload, pixels.len() + 1).is_none());
    }

    #[test]
    fn truncated_streams_are_rejected(pixels in arb_pixels(), cut in any::<u64>()) {
        let payload = compress(&pixels);
        if !payload.is_empty() {
            let cut = (cut as usize) % payload.len();
            // A strict prefix always decodes short (or tears a token): the
            // encoder never emits zero-length tokens.
            prop_assert!(decompress(&payload[..cut], pixels.len()).is_none());
        }
    }

    #[test]
    fn hostile_payloads_cannot_amplify(
        soup in proptest::collection::vec(any::<u8>(), 0..256),
        declared in 0usize..128,
    ) {
        // Whatever the bytes claim, the decode either fails or produces
        // exactly `declared` pixels — never an unbounded buffer.
        if let Some(decoded) = decompress(&soup, declared) {
            prop_assert_eq!(decoded.len(), declared);
        }
    }

    #[test]
    fn run_token_bombs_are_rejected_early(repeats in 1usize..64, declared in 0usize..64) {
        // `repeats` copies of a 64 KiB run token: a few bytes claiming up to
        // 4 MiB. With a small declared size the decode must fail (the cap
        // check runs before any token is materialised).
        let mut bomb = Vec::with_capacity(repeats * 4);
        for _ in 0..repeats {
            bomb.extend_from_slice(&[0x00, 0xff, 0xff, 0x00]);
        }
        prop_assert!(decompress(&bomb, declared).is_none());
    }
}
