//! Low-level little-endian binary encoding helpers.
//!
//! All on-disk formats in this workspace (mask files, the array and row
//! stores, the catalog, and the CHI index file) are built from these
//! primitives so their byte layout is explicit and byte-exact — which matters
//! because the disk cost model charges virtual time per byte.

use crate::error::{StorageError, StorageResult};

/// A cursor over a byte slice with checked little-endian reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`; `context` names what is being decoded for
    /// error messages.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            context,
        }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Truncated {
                context: self.context.to_string(),
                expected: self.pos + n,
                available: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    pub fn read_u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> StorageResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> StorageResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> StorageResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self) -> StorageResult<f32> {
        Ok(f32::from_bits(self.read_u32()?))
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&mut self) -> StorageResult<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        self.take(n)
    }

    /// Reads a fixed 4-byte magic value.
    pub fn read_magic(&mut self) -> StorageResult<[u8; 4]> {
        let b = self.take(4)?;
        Ok([b[0], b[1], b[2], b[3]])
    }

    /// Reads a length-prefixed (u32) vector of little-endian `f32`s.
    pub fn read_f32_vec(&mut self) -> StorageResult<Vec<f32>> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len.checked_mul(4).ok_or_else(|| {
            StorageError::corrupt("f32 vector length overflows addressable size")
        })?)?;
        let mut out = Vec::with_capacity(len);
        for chunk in bytes.chunks_exact(4) {
            out.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(out)
    }

    /// Reads a length-prefixed (u32) vector of little-endian `u32`s.
    pub fn read_u32_vec(&mut self) -> StorageResult<Vec<u32>> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len.checked_mul(4).ok_or_else(|| {
            StorageError::corrupt("u32 vector length overflows addressable size")
        })?)?;
        let mut out = Vec::with_capacity(len);
        for chunk in bytes.chunks_exact(4) {
            out.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(out)
    }

    /// Reads a length-prefixed (u32) UTF-8 string.
    pub fn read_string(&mut self) -> StorageResult<String> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::corrupt("string payload is not valid UTF-8"))
    }
}

/// A growable little-endian byte buffer with typed append operations.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with a pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Finishes writing and returns the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed (u32) vector of `f32`s.
    pub fn write_f32_vec(&mut self, values: &[f32]) {
        self.write_u32(values.len() as u32);
        for &v in values {
            self.write_f32(v);
        }
    }

    /// Appends a length-prefixed (u32) vector of `u32`s.
    pub fn write_u32_vec(&mut self, values: &[u32]) {
        self.write_u32(values.len() as u32);
        for &v in values {
            self.write_u32(v);
        }
    }

    /// Appends a length-prefixed (u32) UTF-8 string.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write_bytes(s.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.write_u8(7);
        w.write_u16(300);
        w.write_u32(70_000);
        w.write_u64(u64::MAX - 1);
        w.write_f32(0.25);
        w.write_f64(-1.5e300);
        w.write_string("hello");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u16().unwrap(), 300);
        assert_eq!(r.read_u32().unwrap(), 70_000);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.read_f32().unwrap(), 0.25);
        assert_eq!(r.read_f64().unwrap(), -1.5e300);
        assert_eq!(r.read_string().unwrap(), "hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn round_trip_vectors() {
        let mut w = Writer::new();
        w.write_f32_vec(&[0.1, 0.2, 0.3]);
        w.write_u32_vec(&[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.read_f32_vec().unwrap(), vec![0.1, 0.2, 0.3]);
        assert_eq!(r.read_u32_vec().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn truncated_reads_report_expected_and_available() {
        let bytes = vec![1u8, 2, 3];
        let mut r = Reader::new(&bytes, "header");
        let err = r.read_u32().unwrap_err();
        match err {
            StorageError::Truncated {
                expected,
                available,
                context,
            } => {
                assert_eq!(expected, 4);
                assert_eq!(available, 3);
                assert_eq!(context, "header");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_is_reported_as_corruption() {
        let mut w = Writer::new();
        w.write_u32(2);
        w.write_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert!(matches!(
            r.read_string().unwrap_err(),
            StorageError::Corrupt { .. }
        ));
    }

    #[test]
    fn writer_reports_length() {
        let mut w = Writer::with_capacity(16);
        assert!(w.is_empty());
        w.write_u32(1);
        assert_eq!(w.len(), 4);
    }
}
