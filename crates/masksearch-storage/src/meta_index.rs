//! Secondary metadata indexes over the catalog.
//!
//! A metadata index maps one metadata column value (`model_id = 1`) to the
//! set of mask ids carrying that value, so a metadata-equality predicate can
//! probe a posting list instead of scanning every catalog record. The
//! in-memory posting lists are the catalog's own secondary maps — they are
//! maintained inside every commit already — so an index here is a *named
//! definition* plus a persisted snapshot (`masks.idx.<col>`) that survives
//! restarts and is rebuilt from the recovered catalog when torn or alien.

use crate::catalog::Catalog;
use crate::codec::{Reader, Writer};
use crate::error::{StorageError, StorageResult};
use masksearch_core::{ImageId, Label, MaskId, MaskRecord, MaskType, ModelId};
use std::collections::BTreeMap;
use std::sync::RwLock;

/// Magic bytes identifying a metadata index snapshot file.
pub const META_INDEX_MAGIC: [u8; 4] = *b"MSKI";
/// Metadata index file format version.
pub const META_INDEX_FORMAT_VERSION: u16 = 1;

/// A metadata column that can carry a secondary index.
///
/// `true_label` is deliberately absent: the catalog keeps no posting map for
/// it, so an index there would be a scan in disguise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaColumn {
    /// `image_id` — the sharding / join key.
    ImageId,
    /// `model_id` — which model produced the mask.
    ModelId,
    /// `mask_type` — saliency map, segmentation, etc.
    MaskType,
    /// `predicted_label` — the model's predicted class for the image.
    PredictedLabel,
}

impl MetaColumn {
    /// Every indexable column.
    pub const ALL: [MetaColumn; 4] = [
        MetaColumn::ImageId,
        MetaColumn::ModelId,
        MetaColumn::MaskType,
        MetaColumn::PredictedLabel,
    ];

    /// The SQL column name.
    pub fn name(self) -> &'static str {
        match self {
            MetaColumn::ImageId => "image_id",
            MetaColumn::ModelId => "model_id",
            MetaColumn::MaskType => "mask_type",
            MetaColumn::PredictedLabel => "predicted_label",
        }
    }

    /// Parses a SQL column name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        MetaColumn::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(name))
    }

    /// Stable on-disk code.
    pub fn to_code(self) -> u16 {
        match self {
            MetaColumn::ImageId => 1,
            MetaColumn::ModelId => 2,
            MetaColumn::MaskType => 3,
            MetaColumn::PredictedLabel => 4,
        }
    }

    /// Inverse of [`MetaColumn::to_code`].
    pub fn from_code(code: u16) -> Option<Self> {
        MetaColumn::ALL.into_iter().find(|c| c.to_code() == code)
    }

    /// The indexed key of a record, if the record carries one.
    pub fn key_of(self, record: &MaskRecord) -> Option<u64> {
        match self {
            MetaColumn::ImageId => Some(record.image_id.raw()),
            MetaColumn::ModelId => Some(record.model_id.raw()),
            MetaColumn::MaskType => Some(record.mask_type.to_code() as u64),
            MetaColumn::PredictedLabel => record.predicted_label.map(|l| l.raw()),
        }
    }

    /// Posting list for `value`, sorted ascending, straight from the
    /// catalog's secondary maps.
    pub fn probe(self, catalog: &Catalog, value: u64) -> Vec<MaskId> {
        match self {
            MetaColumn::ImageId => catalog.masks_of_image(ImageId::new(value)),
            MetaColumn::ModelId => catalog.masks_of_model(ModelId::new(value)),
            MetaColumn::MaskType => match u16::try_from(value) {
                Ok(code) => catalog.masks_of_type(MaskType::from_code(code)),
                Err(_) => Vec::new(),
            },
            MetaColumn::PredictedLabel => catalog.masks_with_predicted_label(Label::new(value)),
        }
    }

    /// Posting-list length for `value` without cloning or sorting the list.
    pub fn estimate(self, catalog: &Catalog, value: u64) -> usize {
        match self {
            MetaColumn::ImageId => catalog.count_of_image(ImageId::new(value)),
            MetaColumn::ModelId => catalog.count_of_model(ModelId::new(value)),
            MetaColumn::MaskType => match u16::try_from(value) {
                Ok(code) => catalog.count_of_type(MaskType::from_code(code)),
                Err(_) => 0,
            },
            MetaColumn::PredictedLabel => catalog.count_with_predicted_label(Label::new(value)),
        }
    }
}

/// A named index definition: one index covers exactly one metadata column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaIndexDef {
    /// The index name given at `CREATE INDEX`.
    pub name: String,
    /// The indexed column.
    pub column: MetaColumn,
}

/// The set of index definitions live on a store, shared between the query
/// session (which probes) and the durable store (which persists snapshots).
#[derive(Debug, Default)]
pub struct MetaIndexRegistry {
    /// name → column; at most one definition per column.
    defs: RwLock<BTreeMap<String, MetaColumn>>,
}

impl MetaIndexRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an index. Returns `true` if a new definition was created,
    /// `false` if `if_not_exists` swallowed a duplicate.
    pub fn create(
        &self,
        name: &str,
        column: MetaColumn,
        if_not_exists: bool,
    ) -> Result<bool, String> {
        let mut defs = self.defs.write().unwrap();
        if let Some(existing) = defs.get(name) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(format!(
                "index `{name}` already exists (on {})",
                existing.name()
            ));
        }
        if let Some((other, _)) = defs.iter().find(|(_, c)| **c == column) {
            return Err(format!(
                "column {} is already indexed by `{other}`",
                column.name()
            ));
        }
        defs.insert(name.to_string(), column);
        Ok(true)
    }

    /// Drops an index by name. Returns `true` if a definition was removed,
    /// `false` if `if_exists` swallowed a miss.
    pub fn drop_index(&self, name: &str, if_exists: bool) -> Result<bool, String> {
        let mut defs = self.defs.write().unwrap();
        if defs.remove(name).is_some() {
            Ok(true)
        } else if if_exists {
            Ok(false)
        } else {
            Err(format!("index `{name}` does not exist"))
        }
    }

    /// The definition covering `column`, if any.
    pub fn on(&self, column: MetaColumn) -> Option<MetaIndexDef> {
        self.defs
            .read()
            .unwrap()
            .iter()
            .find(|(_, c)| **c == column)
            .map(|(name, c)| MetaIndexDef {
                name: name.clone(),
                column: *c,
            })
    }

    /// Looks up a definition by name.
    pub fn by_name(&self, name: &str) -> Option<MetaIndexDef> {
        self.defs.read().unwrap().get(name).map(|c| MetaIndexDef {
            name: name.to_string(),
            column: *c,
        })
    }

    /// All definitions, ordered by name.
    pub fn list(&self) -> Vec<MetaIndexDef> {
        self.defs
            .read()
            .unwrap()
            .iter()
            .map(|(name, c)| MetaIndexDef {
                name: name.clone(),
                column: *c,
            })
            .collect()
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.read().unwrap().len()
    }

    /// Returns `true` if no index is defined.
    pub fn is_empty(&self) -> bool {
        self.defs.read().unwrap().is_empty()
    }
}

/// Builds the full posting map of `column` over `catalog`.
pub fn postings(catalog: &Catalog, column: MetaColumn) -> BTreeMap<u64, Vec<MaskId>> {
    let mut map: BTreeMap<u64, Vec<MaskId>> = BTreeMap::new();
    for record in catalog.records() {
        if let Some(key) = column.key_of(record) {
            map.entry(key).or_default().push(record.mask_id);
        }
    }
    map
}

/// Serialises a `masks.idx.<col>` snapshot: the definition plus the posting
/// map of its column at snapshot time.
pub fn snapshot_bytes(def: &MetaIndexDef, catalog: &Catalog) -> Vec<u8> {
    let map = postings(catalog, def.column);
    let mut w = Writer::new();
    w.write_bytes(&META_INDEX_MAGIC);
    w.write_u16(META_INDEX_FORMAT_VERSION);
    w.write_u16(def.column.to_code());
    w.write_string(&def.name);
    w.write_u64(map.len() as u64);
    for (key, ids) in &map {
        w.write_u64(*key);
        w.write_u64(ids.len() as u64);
        for id in ids {
            w.write_u64(id.raw());
        }
    }
    w.into_bytes()
}

/// Decodes a snapshot produced by [`snapshot_bytes`].
pub fn decode_snapshot(bytes: &[u8]) -> StorageResult<(MetaIndexDef, BTreeMap<u64, Vec<MaskId>>)> {
    let mut r = Reader::new(bytes, "metadata index");
    let magic = r.read_magic()?;
    if magic != META_INDEX_MAGIC {
        return Err(StorageError::BadMagic {
            path: "<metadata index>".to_string(),
            found: magic,
        });
    }
    let version = r.read_u16()?;
    if version > META_INDEX_FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            found: version,
            supported: META_INDEX_FORMAT_VERSION,
        });
    }
    let code = r.read_u16()?;
    let column = MetaColumn::from_code(code)
        .ok_or_else(|| StorageError::corrupt(format!("unknown metadata column code {code}")))?;
    let name = r.read_string()?;
    if name.is_empty() {
        return Err(StorageError::corrupt("metadata index name is empty"));
    }
    let entries = r.read_u64()?;
    let mut map = BTreeMap::new();
    for _ in 0..entries {
        let key = r.read_u64()?;
        let count = r.read_u64()?;
        if count as usize > r.remaining() / 8 {
            return Err(StorageError::corrupt(
                "metadata index posting list longer than the file",
            ));
        }
        let mut ids = Vec::with_capacity(count as usize);
        for _ in 0..count {
            ids.push(MaskId::new(r.read_u64()?));
        }
        map.insert(key, ids);
    }
    if r.remaining() != 0 {
        return Err(StorageError::corrupt(
            "trailing bytes after metadata index postings",
        ));
    }
    Ok((MetaIndexDef { name, column }, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::Roi;

    fn record(mask_id: u64, image_id: u64, model_id: u64, pred: Option<u64>) -> MaskRecord {
        let mut b = MaskRecord::builder(MaskId::new(mask_id))
            .image_id(ImageId::new(image_id))
            .model_id(ModelId::new(model_id))
            .mask_type(MaskType::SaliencyMap)
            .shape(8, 8)
            .object_box(Roi::new(1, 1, 4, 4).unwrap());
        if let Some(p) = pred {
            b = b.predicted_label(Label::new(p));
        }
        b.build()
    }

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(record(1, 100, 1, Some(7)));
        c.insert(record(2, 100, 2, Some(7)));
        c.insert(record(3, 101, 1, None));
        c
    }

    #[test]
    fn column_names_round_trip() {
        for column in MetaColumn::ALL {
            assert_eq!(MetaColumn::parse(column.name()), Some(column));
            assert_eq!(MetaColumn::from_code(column.to_code()), Some(column));
        }
        assert_eq!(MetaColumn::parse("MODEL_ID"), Some(MetaColumn::ModelId));
        assert!(MetaColumn::parse("true_label").is_none());
        assert!(MetaColumn::parse("pixels").is_none());
    }

    #[test]
    fn probe_and_estimate_agree_with_the_catalog() {
        let c = sample_catalog();
        assert_eq!(
            MetaColumn::ModelId.probe(&c, 1),
            vec![MaskId::new(1), MaskId::new(3)]
        );
        assert_eq!(MetaColumn::ModelId.estimate(&c, 1), 2);
        assert_eq!(
            MetaColumn::PredictedLabel.probe(&c, 7),
            vec![MaskId::new(1), MaskId::new(2)]
        );
        assert_eq!(MetaColumn::PredictedLabel.estimate(&c, 9), 0);
        assert!(MetaColumn::MaskType.probe(&c, u64::MAX).is_empty());
    }

    #[test]
    fn registry_enforces_one_index_per_column() {
        let reg = MetaIndexRegistry::new();
        assert!(reg.create("by_model", MetaColumn::ModelId, false).unwrap());
        // Duplicate name: swallowed with IF NOT EXISTS, loud without.
        assert!(!reg.create("by_model", MetaColumn::ModelId, true).unwrap());
        assert!(reg.create("by_model", MetaColumn::ModelId, false).is_err());
        // Second index on the same column is always an error.
        assert!(reg.create("by_model2", MetaColumn::ModelId, false).is_err());
        assert_eq!(reg.on(MetaColumn::ModelId).unwrap().name, "by_model");
        assert!(reg.on(MetaColumn::ImageId).is_none());
        assert_eq!(reg.by_name("by_model").unwrap().column, MetaColumn::ModelId);
        assert_eq!(reg.list().len(), 1);
        assert!(reg.drop_index("nope", true).is_ok());
        assert!(reg.drop_index("nope", false).is_err());
        assert!(reg.drop_index("by_model", false).unwrap());
        assert!(reg.is_empty());
    }

    #[test]
    fn snapshot_round_trips() {
        let c = sample_catalog();
        let def = MetaIndexDef {
            name: "by_pred".to_string(),
            column: MetaColumn::PredictedLabel,
        };
        let bytes = snapshot_bytes(&def, &c);
        let (decoded, map) = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded, def);
        // Mask 3 has no predicted label and must not appear.
        assert_eq!(map.len(), 1);
        assert_eq!(map[&7], vec![MaskId::new(1), MaskId::new(2)]);
        assert_eq!(map, postings(&c, MetaColumn::PredictedLabel));
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let c = sample_catalog();
        let def = MetaIndexDef {
            name: "by_model".to_string(),
            column: MetaColumn::ModelId,
        };
        let mut bytes = snapshot_bytes(&def, &c);
        bytes[0] = b'X';
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StorageError::BadMagic { .. })
        ));
        let bytes = snapshot_bytes(&def, &c);
        assert!(decode_snapshot(&bytes[..bytes.len() - 3]).is_err());
        let mut trailing = snapshot_bytes(&def, &c);
        trailing.push(0);
        assert!(decode_snapshot(&trailing).is_err());
    }
}
