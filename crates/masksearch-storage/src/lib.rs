//! # masksearch-storage
//!
//! Storage substrate for MaskSearch: how masks get onto and off disk, and at
//! what (modelled) cost.
//!
//! The paper's evaluation (§4.1) stores masks on an EBS gp3 volume provisioned
//! with 125 MiB/s of read bandwidth and 3000 IOPS, and shows that every
//! baseline saturates that bandwidth because it loads *every* mask for *every*
//! query. This crate reproduces that substrate:
//!
//! * [`format`](mod@format) — the binary mask file format (raw and
//!   compressed encodings).
//! * [`compression`] — the lossless XOR-delta + RLE codec used by the
//!   compressed encoding.
//! * [`disk`] — a deterministic disk cost model ([`disk::DiskProfile`]) plus
//!   shared I/O statistics ([`disk::IoStats`]): every read is charged
//!   `per-op latency + bytes / bandwidth` of *virtual* time in addition to
//!   the real file read, so experiments can report the same shape as the
//!   paper's EBS-bound numbers regardless of the physical disk underneath.
//! * [`store`] — [`store::MaskStore`], the object-store-like interface used
//!   by MaskSearch proper (one blob per mask), with the
//!   [`store::FileMaskStore`] and [`store::MemoryMaskStore`] implementations.
//! * [`array_store`] — a TileDB-like dense-array layout that can slice a
//!   constant ROI out of every mask without reading full masks.
//! * [`row_store`] — a PostgreSQL-like heap-file layout scanned tuple by
//!   tuple with a per-tuple UDF call overhead.
//! * [`cache`] — a byte-budgeted LRU buffer cache of decoded masks.
//! * [`catalog`] — the metadata catalog (the non-pixel columns of
//!   `MasksDatabaseView`) with secondary indexes and binary persistence.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod array_store;
pub mod cache;
pub mod catalog;
pub mod codec;
pub mod compression;
pub mod disk;
pub mod error;
pub mod format;
pub mod meta_index;
pub mod row_store;
pub mod store;

pub use array_store::ArrayStore;
pub use cache::MaskCache;
pub use catalog::Catalog;
pub use disk::{DiskProfile, IoStats};
pub use error::{StorageError, StorageResult};
pub use format::MaskEncoding;
pub use meta_index::{MetaColumn, MetaIndexDef, MetaIndexRegistry};
pub use row_store::RowStore;
pub use store::{FileMaskStore, IngestSnapshot, MaskStore, MemoryMaskStore};
