//! The metadata catalog: every non-pixel column of `MasksDatabaseView`.
//!
//! The catalog is small (tens of bytes per mask) and always memory-resident;
//! it answers the relational part of a query — `model_id = 1`,
//! `mask_type IN (1, 2)`, `GROUP BY image_id`, "masks of images predicted as
//! class 7" — so the expensive mask-loading machinery only ever sees the
//! candidate set it actually needs to consider.

use crate::codec::{Reader, Writer};
use crate::error::{StorageError, StorageResult};
use masksearch_core::{ImageId, Label, MaskId, MaskRecord, MaskType, ModelId, Roi};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;

/// Magic bytes identifying a catalog file.
pub const CATALOG_MAGIC: [u8; 4] = *b"MSKC";
/// Catalog file format version.
pub const CATALOG_FORMAT_VERSION: u16 = 1;

/// In-memory metadata catalog with secondary indexes.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    records: BTreeMap<MaskId, MaskRecord>,
    by_image: HashMap<ImageId, Vec<MaskId>>,
    by_model: HashMap<ModelId, Vec<MaskId>>,
    by_type: HashMap<u16, Vec<MaskId>>,
    by_predicted: HashMap<Label, Vec<MaskId>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts (or replaces) a record, keeping secondary indexes consistent.
    pub fn insert(&mut self, record: MaskRecord) {
        let mask_id = record.mask_id;
        if let Some(old) = self.records.remove(&mask_id) {
            Self::remove_from(&mut self.by_image, &old.image_id, mask_id);
            Self::remove_from(&mut self.by_model, &old.model_id, mask_id);
            Self::remove_from(&mut self.by_type, &old.mask_type.to_code(), mask_id);
            if let Some(pred) = old.predicted_label {
                Self::remove_from(&mut self.by_predicted, &pred, mask_id);
            }
        }
        self.by_image
            .entry(record.image_id)
            .or_default()
            .push(mask_id);
        self.by_model
            .entry(record.model_id)
            .or_default()
            .push(mask_id);
        self.by_type
            .entry(record.mask_type.to_code())
            .or_default()
            .push(mask_id);
        if let Some(pred) = record.predicted_label {
            self.by_predicted.entry(pred).or_default().push(mask_id);
        }
        self.records.insert(mask_id, record);
    }

    /// Removes a record, keeping secondary indexes consistent. Returns the
    /// removed record, if any.
    pub fn remove(&mut self, mask_id: MaskId) -> Option<MaskRecord> {
        let old = self.records.remove(&mask_id)?;
        Self::remove_from(&mut self.by_image, &old.image_id, mask_id);
        Self::remove_from(&mut self.by_model, &old.model_id, mask_id);
        Self::remove_from(&mut self.by_type, &old.mask_type.to_code(), mask_id);
        if let Some(pred) = old.predicted_label {
            Self::remove_from(&mut self.by_predicted, &pred, mask_id);
        }
        Some(old)
    }

    fn remove_from<K: std::hash::Hash + Eq>(
        index: &mut HashMap<K, Vec<MaskId>>,
        key: &K,
        mask_id: MaskId,
    ) {
        if let Some(ids) = index.get_mut(key) {
            ids.retain(|id| *id != mask_id);
            if ids.is_empty() {
                index.remove(key);
            }
        }
    }

    /// Looks up a record by mask id.
    pub fn get(&self, mask_id: MaskId) -> Option<&MaskRecord> {
        self.records.get(&mask_id)
    }

    /// All mask ids, ascending.
    pub fn mask_ids(&self) -> Vec<MaskId> {
        self.records.keys().copied().collect()
    }

    /// Iterates over all records in mask-id order.
    pub fn records(&self) -> impl Iterator<Item = &MaskRecord> {
        self.records.values()
    }

    /// All distinct image ids present in the catalog.
    pub fn image_ids(&self) -> Vec<ImageId> {
        let mut ids: Vec<ImageId> = self.by_image.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Mask ids of all masks annotating `image_id`.
    pub fn masks_of_image(&self, image_id: ImageId) -> Vec<MaskId> {
        let mut ids = self.by_image.get(&image_id).cloned().unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    /// Mask ids of all masks produced by `model_id`.
    pub fn masks_of_model(&self, model_id: ModelId) -> Vec<MaskId> {
        let mut ids = self.by_model.get(&model_id).cloned().unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    /// Mask ids of all masks of the given type.
    pub fn masks_of_type(&self, mask_type: MaskType) -> Vec<MaskId> {
        let mut ids = self
            .by_type
            .get(&mask_type.to_code())
            .cloned()
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    /// Mask ids of all masks whose image was predicted as `label`.
    pub fn masks_with_predicted_label(&self, label: Label) -> Vec<MaskId> {
        let mut ids = self.by_predicted.get(&label).cloned().unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    /// Number of masks annotating `image_id`, without cloning the list.
    pub fn count_of_image(&self, image_id: ImageId) -> usize {
        self.by_image.get(&image_id).map_or(0, Vec::len)
    }

    /// Number of masks produced by `model_id`, without cloning the list.
    pub fn count_of_model(&self, model_id: ModelId) -> usize {
        self.by_model.get(&model_id).map_or(0, Vec::len)
    }

    /// Number of masks of the given type, without cloning the list.
    pub fn count_of_type(&self, mask_type: MaskType) -> usize {
        self.by_type.get(&mask_type.to_code()).map_or(0, Vec::len)
    }

    /// Number of masks whose image was predicted as `label`, without cloning
    /// the list.
    pub fn count_with_predicted_label(&self, label: Label) -> usize {
        self.by_predicted.get(&label).map_or(0, Vec::len)
    }

    /// Mask ids whose records satisfy an arbitrary predicate.
    pub fn filter(&self, mut predicate: impl FnMut(&MaskRecord) -> bool) -> Vec<MaskId> {
        self.records
            .values()
            .filter(|r| predicate(r))
            .map(|r| r.mask_id)
            .collect()
    }

    /// Groups the given mask ids by their image id, dropping ids not present
    /// in the catalog. Groups and their members are sorted.
    pub fn group_by_image(&self, mask_ids: &[MaskId]) -> Vec<(ImageId, Vec<MaskId>)> {
        let mut groups: BTreeMap<ImageId, Vec<MaskId>> = BTreeMap::new();
        for &id in mask_ids {
            if let Some(rec) = self.records.get(&id) {
                groups.entry(rec.image_id).or_default().push(id);
            }
        }
        groups
            .into_iter()
            .map(|(image, mut ids)| {
                ids.sort_unstable();
                (image, ids)
            })
            .collect()
    }

    /// Serialises the catalog to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.write_bytes(&CATALOG_MAGIC);
        w.write_u16(CATALOG_FORMAT_VERSION);
        w.write_u16(0);
        w.write_u64(self.records.len() as u64);
        for record in self.records.values() {
            write_record(&mut w, record);
        }
        w.into_bytes()
    }

    /// Deserialises a catalog produced by [`Catalog::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<Self> {
        let mut r = Reader::new(bytes, "catalog");
        let magic = r.read_magic()?;
        if magic != CATALOG_MAGIC {
            return Err(StorageError::BadMagic {
                path: "<catalog>".to_string(),
                found: magic,
            });
        }
        let version = r.read_u16()?;
        if version > CATALOG_FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion {
                found: version,
                supported: CATALOG_FORMAT_VERSION,
            });
        }
        let _reserved = r.read_u16()?;
        let count = r.read_u64()?;
        let mut catalog = Catalog::new();
        for _ in 0..count {
            catalog.insert(read_record(&mut r)?);
        }
        Ok(catalog)
    }

    /// Writes the catalog to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> StorageResult<()> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| StorageError::io("writing catalog file", e))
    }

    /// Reads a catalog from a file.
    pub fn load(path: impl AsRef<Path>) -> StorageResult<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| StorageError::io("reading catalog file", e))?;
        Self::from_bytes(&bytes)
    }
}

/// Appends one [`MaskRecord`] in the catalog's fixed binary layout.
///
/// Shared with stores that persist records outside a catalog file (the
/// durable mask database embeds records in its WAL-protected directory so a
/// crash cannot separate a mask's pixels from its metadata).
pub fn write_record(w: &mut Writer, record: &MaskRecord) {
    w.write_u64(record.mask_id.raw());
    w.write_u64(record.image_id.raw());
    w.write_u64(record.model_id.raw());
    w.write_u16(record.mask_type.to_code());
    w.write_u32(record.width);
    w.write_u32(record.height);
    w.write_u8(record.true_label.is_some() as u8);
    w.write_u64(record.true_label.map(|l| l.raw()).unwrap_or(0));
    w.write_u8(record.predicted_label.is_some() as u8);
    w.write_u64(record.predicted_label.map(|l| l.raw()).unwrap_or(0));
    match record.object_box {
        Some(roi) => {
            w.write_u8(1);
            w.write_u32(roi.x0());
            w.write_u32(roi.y0());
            w.write_u32(roi.x1());
            w.write_u32(roi.y1());
        }
        None => {
            w.write_u8(0);
            w.write_u32(0);
            w.write_u32(0);
            w.write_u32(0);
            w.write_u32(0);
        }
    }
}

/// Reads one [`MaskRecord`] written by [`write_record`].
pub fn read_record(r: &mut Reader<'_>) -> StorageResult<MaskRecord> {
    let mask_id = MaskId::new(r.read_u64()?);
    let image_id = ImageId::new(r.read_u64()?);
    let model_id = ModelId::new(r.read_u64()?);
    let mask_type = MaskType::from_code(r.read_u16()?);
    let width = r.read_u32()?;
    let height = r.read_u32()?;
    let has_true = r.read_u8()? != 0;
    let true_label = Label::new(r.read_u64()?);
    let has_pred = r.read_u8()? != 0;
    let predicted_label = Label::new(r.read_u64()?);
    let has_box = r.read_u8()? != 0;
    let (x0, y0, x1, y1) = (r.read_u32()?, r.read_u32()?, r.read_u32()?, r.read_u32()?);
    let object_box = if has_box {
        Some(
            Roi::new(x0, y0, x1, y1)
                .map_err(|_| StorageError::corrupt("catalog object box is degenerate"))?,
        )
    } else {
        None
    };
    let mut builder = MaskRecord::builder(mask_id)
        .image_id(image_id)
        .model_id(model_id)
        .mask_type(mask_type)
        .shape(width, height);
    if has_true {
        builder = builder.true_label(true_label);
    }
    if has_pred {
        builder = builder.predicted_label(predicted_label);
    }
    if let Some(roi) = object_box {
        builder = builder.object_box(roi);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(mask_id: u64, image_id: u64, model_id: u64, pred: Option<u64>) -> MaskRecord {
        let mut b = MaskRecord::builder(MaskId::new(mask_id))
            .image_id(ImageId::new(image_id))
            .model_id(ModelId::new(model_id))
            .mask_type(MaskType::SaliencyMap)
            .shape(64, 64)
            .object_box(Roi::new(4, 4, 32, 32).unwrap());
        if let Some(p) = pred {
            b = b.predicted_label(Label::new(p));
        }
        b.build()
    }

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        // Two models per image, three images.
        c.insert(record(1, 100, 1, Some(7)));
        c.insert(record(2, 100, 2, Some(7)));
        c.insert(record(3, 101, 1, Some(8)));
        c.insert(record(4, 101, 2, Some(8)));
        c.insert(record(5, 102, 1, None));
        c.insert(record(6, 102, 2, None));
        c
    }

    #[test]
    fn secondary_indexes_answer_lookups() {
        let c = sample_catalog();
        assert_eq!(c.len(), 6);
        assert_eq!(
            c.masks_of_image(ImageId::new(100)),
            vec![MaskId::new(1), MaskId::new(2)]
        );
        assert_eq!(
            c.masks_of_model(ModelId::new(1)),
            vec![MaskId::new(1), MaskId::new(3), MaskId::new(5)]
        );
        assert_eq!(c.masks_of_type(MaskType::SaliencyMap).len(), 6);
        assert!(c.masks_of_type(MaskType::DepthMap).is_empty());
        assert_eq!(
            c.masks_with_predicted_label(Label::new(8)),
            vec![MaskId::new(3), MaskId::new(4)]
        );
        assert_eq!(c.image_ids().len(), 3);
        // The count accessors agree with the lists without cloning them.
        assert_eq!(c.count_of_image(ImageId::new(100)), 2);
        assert_eq!(c.count_of_model(ModelId::new(1)), 3);
        assert_eq!(c.count_of_type(MaskType::SaliencyMap), 6);
        assert_eq!(c.count_of_type(MaskType::DepthMap), 0);
        assert_eq!(c.count_with_predicted_label(Label::new(8)), 2);
        assert_eq!(c.count_with_predicted_label(Label::new(99)), 0);
    }

    #[test]
    fn filter_and_group_by_image() {
        let c = sample_catalog();
        let model1 = c.filter(|r| r.model_id == ModelId::new(1));
        assert_eq!(model1.len(), 3);
        let groups = c.group_by_image(&c.mask_ids());
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, ImageId::new(100));
        assert_eq!(groups[0].1, vec![MaskId::new(1), MaskId::new(2)]);
        // Unknown mask ids are dropped.
        let groups = c.group_by_image(&[MaskId::new(1), MaskId::new(999)]);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn insert_replaces_and_keeps_indexes_consistent() {
        let mut c = sample_catalog();
        // Move mask 1 to another image and model.
        c.insert(record(1, 200, 3, Some(9)));
        assert_eq!(c.len(), 6);
        assert_eq!(c.masks_of_image(ImageId::new(100)), vec![MaskId::new(2)]);
        assert_eq!(c.masks_of_image(ImageId::new(200)), vec![MaskId::new(1)]);
        assert_eq!(c.masks_of_model(ModelId::new(3)), vec![MaskId::new(1)]);
        assert_eq!(
            c.masks_with_predicted_label(Label::new(7)),
            vec![MaskId::new(2)]
        );
    }

    #[test]
    fn remove_updates_indexes_and_returns_the_record() {
        let mut c = sample_catalog();
        let removed = c.remove(MaskId::new(1)).unwrap();
        assert_eq!(removed.mask_id, MaskId::new(1));
        assert_eq!(c.len(), 5);
        assert!(c.get(MaskId::new(1)).is_none());
        assert_eq!(c.masks_of_image(ImageId::new(100)), vec![MaskId::new(2)]);
        assert!(!c.mask_ids().contains(&MaskId::new(1)));
        assert!(c.remove(MaskId::new(1)).is_none());
    }

    #[test]
    fn record_codec_round_trips_standalone() {
        let rec = record(42, 7, 3, Some(11));
        let mut w = Writer::new();
        write_record(&mut w, &rec);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "record");
        assert_eq!(read_record(&mut r).unwrap(), rec);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn binary_round_trip_preserves_all_fields() {
        let c = sample_catalog();
        let bytes = c.to_bytes();
        let decoded = Catalog::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.len(), c.len());
        for id in c.mask_ids() {
            assert_eq!(decoded.get(id), c.get(id));
        }
    }

    #[test]
    fn file_round_trip() {
        let c = sample_catalog();
        let path = std::env::temp_dir().join(format!(
            "masksearch-catalog-test-{}.cat",
            std::process::id()
        ));
        c.save(&path).unwrap();
        let loaded = Catalog::load(&path).unwrap();
        assert_eq!(loaded.len(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_catalog_bytes_are_rejected() {
        let c = sample_catalog();
        let mut bytes = c.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Catalog::from_bytes(&bytes),
            Err(StorageError::BadMagic { .. })
        ));
        let bytes = c.to_bytes();
        assert!(Catalog::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }
}
