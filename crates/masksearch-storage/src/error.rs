//! Error types for the storage layer.

use masksearch_core::MaskId;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Convenience alias for storage results.
pub type StorageResult<T> = std::result::Result<T, StorageError>;

/// Errors produced by the storage layer.
#[derive(Debug, Clone)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io {
        /// What the storage layer was doing when the error occurred.
        context: String,
        /// The underlying error (shared so the error type stays `Clone`).
        source: Arc<io::Error>,
    },
    /// A mask was requested that the store does not contain.
    MaskNotFound(MaskId),
    /// A file did not start with the expected magic bytes.
    BadMagic {
        /// File path (or store name) being decoded.
        path: String,
        /// Magic bytes found.
        found: [u8; 4],
    },
    /// The format version of a file is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u16,
        /// Highest version this build supports.
        supported: u16,
    },
    /// A file was shorter than its header claims.
    Truncated {
        /// What was being decoded.
        context: String,
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        available: usize,
    },
    /// A decoded value was structurally invalid (corrupt data).
    Corrupt {
        /// Description of the corruption.
        detail: String,
    },
    /// The mask payload failed core-model validation after decoding.
    InvalidMask {
        /// Mask being decoded.
        mask_id: Option<MaskId>,
        /// Underlying core error.
        source: masksearch_core::Error,
    },
    /// A mask with this id already exists and overwrite was not requested.
    AlreadyExists(MaskId),
    /// The store directory does not exist or is not a directory.
    InvalidStorePath(PathBuf),
    /// The store does not support the requested operation (e.g. `delete` on
    /// an append-only store).
    Unsupported {
        /// Name of the unsupported operation.
        operation: &'static str,
    },
}

impl StorageError {
    /// Wraps an [`io::Error`] with a human-readable context string.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StorageError::Io {
            context: context.into(),
            source: Arc::new(source),
        }
    }

    /// Builds a corruption error from a description.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            detail: detail.into(),
        }
    }

    /// Builds an [`StorageError::Unsupported`] for the named operation.
    pub fn unsupported(operation: &'static str) -> Self {
        StorageError::Unsupported { operation }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, source } => {
                write!(f, "i/o error while {context}: {source}")
            }
            StorageError::MaskNotFound(id) => write!(f, "mask {id} not found in the store"),
            StorageError::BadMagic { path, found } => write!(
                f,
                "{path}: bad magic bytes {found:?} (not a MaskSearch file)"
            ),
            StorageError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build supports up to {supported})"
            ),
            StorageError::Truncated {
                context,
                expected,
                available,
            } => write!(
                f,
                "truncated {context}: expected {expected} bytes, only {available} available"
            ),
            StorageError::Corrupt { detail } => write!(f, "corrupt data: {detail}"),
            StorageError::InvalidMask { mask_id, source } => match mask_id {
                Some(id) => write!(f, "decoded mask {id} is invalid: {source}"),
                None => write!(f, "decoded mask is invalid: {source}"),
            },
            StorageError::AlreadyExists(id) => write!(f, "mask {id} already exists in the store"),
            StorageError::InvalidStorePath(path) => {
                write!(f, "store path {} is not usable", path.display())
            }
            StorageError::Unsupported { operation } => {
                write!(f, "this mask store does not support `{operation}`")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source.as_ref()),
            StorageError::InvalidMask { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<masksearch_core::Error> for StorageError {
    fn from(source: masksearch_core::Error) -> Self {
        StorageError::InvalidMask {
            mask_id: None,
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = StorageError::io("reading mask 3", io::Error::other("boom"));
        assert!(e.to_string().contains("reading mask 3"));
        assert!(StorageError::MaskNotFound(MaskId::new(9))
            .to_string()
            .contains('9'));
        assert!(StorageError::corrupt("bin count overflow")
            .to_string()
            .contains("bin count"));
        let e = StorageError::Truncated {
            context: "mask payload".into(),
            expected: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn errors_are_cloneable() {
        let e = StorageError::io("x", io::Error::other("y"));
        let _ = e.clone();
        let e2 = StorageError::AlreadyExists(MaskId::new(1));
        assert!(matches!(e2.clone(), StorageError::AlreadyExists(_)));
    }

    #[test]
    fn core_error_converts() {
        let core_err = masksearch_core::Error::EmptyMask;
        let e: StorageError = core_err.into();
        assert!(matches!(e, StorageError::InvalidMask { .. }));
    }
}
