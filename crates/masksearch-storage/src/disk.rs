//! Disk cost model and I/O statistics.
//!
//! The paper's evaluation runs on an EBS gp3 volume provisioned with
//! 125 MiB/s of throughput and 3000 IOPS, and demonstrates that the baselines
//! are bound by that throughput (§4.2: "the disk read bandwidth was fully
//! utilized, reaching 125 MiB/s"). Local reproduction hardware has neither
//! that disk nor a way to clear the page cache deterministically, so this
//! module substitutes a **deterministic cost model**: every logical read is
//! charged
//!
//! ```text
//! virtual_time = per_op_latency + bytes / bandwidth
//! ```
//!
//! and the charges accumulate in a shared [`IoStats`]. Query executors report
//! both real (wall-clock) time and modelled I/O time; the experiment harness
//! combines them (`total = cpu_wall + io_virtual`) to regenerate the paper's
//! figures. Because every engine in this workspace reads through the same
//! accounting layer, relative comparisons (who wins, by what factor, where
//! crossovers fall) are preserved.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Performance characteristics of the modelled storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Sustained read bandwidth in bytes per second.
    pub read_bandwidth_bytes_per_sec: u64,
    /// Sustained write bandwidth in bytes per second.
    pub write_bandwidth_bytes_per_sec: u64,
    /// Fixed latency charged per read or write operation (seek + request
    /// overhead). Derived from the provisioned IOPS limit.
    pub per_op_latency: Duration,
}

impl DiskProfile {
    /// The paper's evaluation volume: EBS gp3 with 125 MiB/s and 3000 IOPS.
    pub fn ebs_gp3() -> Self {
        DiskProfile {
            read_bandwidth_bytes_per_sec: 125 * 1024 * 1024,
            write_bandwidth_bytes_per_sec: 125 * 1024 * 1024,
            // 3000 IOPS -> ~333 µs of queueing/seek budget per operation.
            per_op_latency: Duration::from_micros(333),
        }
    }

    /// Object-storage-class media (S3 and friends): modest bandwidth and a
    /// millisecond of request latency per operation. The regime where
    /// sharding a catalog pays off — per-request latency dominates, so
    /// overlapping requests across shards and pipelined connections is the
    /// whole game.
    pub fn cloud_object() -> Self {
        DiskProfile {
            read_bandwidth_bytes_per_sec: 100 * 1024 * 1024,
            write_bandwidth_bytes_per_sec: 100 * 1024 * 1024,
            per_op_latency: Duration::from_millis(1),
        }
    }

    /// A fast local NVMe-class device (useful for sensitivity analysis).
    pub fn local_nvme() -> Self {
        DiskProfile {
            read_bandwidth_bytes_per_sec: 2 * 1024 * 1024 * 1024,
            write_bandwidth_bytes_per_sec: 1024 * 1024 * 1024,
            per_op_latency: Duration::from_micros(20),
        }
    }

    /// A cost-free profile: no virtual time is charged. Used by unit tests
    /// that only care about functional behaviour.
    pub fn unthrottled() -> Self {
        DiskProfile {
            read_bandwidth_bytes_per_sec: u64::MAX,
            write_bandwidth_bytes_per_sec: u64::MAX,
            per_op_latency: Duration::ZERO,
        }
    }

    /// Virtual time charged for reading `bytes` bytes in `ops` operations.
    pub fn read_cost(&self, bytes: u64, ops: u64) -> Duration {
        self.cost(bytes, ops, self.read_bandwidth_bytes_per_sec)
    }

    /// Virtual time charged for writing `bytes` bytes in `ops` operations.
    pub fn write_cost(&self, bytes: u64, ops: u64) -> Duration {
        self.cost(bytes, ops, self.write_bandwidth_bytes_per_sec)
    }

    fn cost(&self, bytes: u64, ops: u64, bandwidth: u64) -> Duration {
        let latency = self
            .per_op_latency
            .checked_mul(ops as u32)
            .unwrap_or(Duration::MAX);
        if bandwidth == u64::MAX {
            return latency;
        }
        let transfer_nanos = (bytes as u128)
            .saturating_mul(1_000_000_000)
            .checked_div(bandwidth as u128)
            .unwrap_or(0);
        latency + Duration::from_nanos(transfer_nanos.min(u64::MAX as u128) as u64)
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile::ebs_gp3()
    }
}

/// Shared, thread-safe I/O accounting.
///
/// Every store in this crate increments these counters; query executors
/// snapshot them before and after a query to compute per-query statistics
/// such as the number of masks loaded and the fraction of masks loaded (FML),
/// which the paper shows is the dominant driver of query time (§4.4,
/// Figure 9).
#[derive(Debug, Default)]
pub struct IoStats {
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    masks_loaded: AtomicU64,
    virtual_read_nanos: AtomicU64,
    virtual_write_nanos: AtomicU64,
}

impl IoStats {
    /// Creates a zeroed statistics block behind an [`Arc`].
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records a read of `bytes` bytes costing `cost` of virtual time.
    pub fn record_read(&self, bytes: u64, cost: Duration) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.virtual_read_nanos.fetch_add(
            cost.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records a write of `bytes` bytes costing `cost` of virtual time.
    pub fn record_write(&self, bytes: u64, cost: Duration) {
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.virtual_write_nanos.fetch_add(
            cost.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records that one full mask was materialised from storage.
    pub fn record_mask_loaded(&self) {
        self.masks_loaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of read operations performed.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::Relaxed)
    }

    /// Number of write operations performed.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Number of masks materialised from storage.
    pub fn masks_loaded(&self) -> u64 {
        self.masks_loaded.load(Ordering::Relaxed)
    }

    /// Accumulated virtual read time.
    pub fn virtual_read_time(&self) -> Duration {
        Duration::from_nanos(self.virtual_read_nanos.load(Ordering::Relaxed))
    }

    /// Accumulated virtual write time.
    pub fn virtual_write_time(&self) -> Duration {
        Duration::from_nanos(self.virtual_write_nanos.load(Ordering::Relaxed))
    }

    /// Accumulated virtual I/O time (reads + writes).
    pub fn virtual_io_time(&self) -> Duration {
        self.virtual_read_time() + self.virtual_write_time()
    }

    /// Takes an immutable snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            read_ops: self.read_ops(),
            write_ops: self.write_ops(),
            bytes_read: self.bytes_read(),
            bytes_written: self.bytes_written(),
            masks_loaded: self.masks_loaded(),
            virtual_read: self.virtual_read_time(),
            virtual_write: self.virtual_write_time(),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.masks_loaded.store(0, Ordering::Relaxed);
        self.virtual_read_nanos.store(0, Ordering::Relaxed);
        self.virtual_write_nanos.store(0, Ordering::Relaxed);
    }
}

/// An immutable snapshot of [`IoStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Masks materialised from storage.
    pub masks_loaded: u64,
    /// Virtual read time.
    pub virtual_read: Duration,
    /// Virtual write time.
    pub virtual_write: Duration,
}

impl IoSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn delta_since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            masks_loaded: self.masks_loaded.saturating_sub(earlier.masks_loaded),
            virtual_read: self.virtual_read.saturating_sub(earlier.virtual_read),
            virtual_write: self.virtual_write.saturating_sub(earlier.virtual_write),
        }
    }

    /// Total virtual I/O time in the snapshot.
    pub fn virtual_io(&self) -> Duration {
        self.virtual_read + self.virtual_write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ebs_gp3_read_cost_matches_provisioned_bandwidth() {
        let profile = DiskProfile::ebs_gp3();
        // Reading 125 MiB in one op should take ~1 second plus one op latency.
        let cost = profile.read_cost(125 * 1024 * 1024, 1);
        assert!(cost >= Duration::from_secs(1));
        assert!(cost < Duration::from_millis(1010));
        // 1.33M ImageNet masks of 224*224*4 bytes ≈ 250 GB ≈ 2000+ seconds:
        // the paper's ">30 minutes per query" figure.
        let imagenet_bytes = 1_331_167u64 * 224 * 224 * 4;
        let cost = profile.read_cost(imagenet_bytes, 1_331_167);
        assert!(cost > Duration::from_secs(1700));
    }

    #[test]
    fn unthrottled_profile_charges_nothing() {
        let profile = DiskProfile::unthrottled();
        assert_eq!(profile.read_cost(1 << 30, 1000), Duration::ZERO);
        assert_eq!(profile.write_cost(1 << 30, 1000), Duration::ZERO);
    }

    #[test]
    fn per_op_latency_scales_with_ops() {
        let profile = DiskProfile {
            read_bandwidth_bytes_per_sec: u64::MAX,
            write_bandwidth_bytes_per_sec: u64::MAX,
            per_op_latency: Duration::from_micros(100),
        };
        assert_eq!(profile.read_cost(0, 10), Duration::from_millis(1));
    }

    #[test]
    fn io_stats_accumulate_and_snapshot() {
        let stats = IoStats::new_shared();
        stats.record_read(1000, Duration::from_millis(2));
        stats.record_read(500, Duration::from_millis(1));
        stats.record_write(100, Duration::from_millis(3));
        stats.record_mask_loaded();

        assert_eq!(stats.read_ops(), 2);
        assert_eq!(stats.bytes_read(), 1500);
        assert_eq!(stats.write_ops(), 1);
        assert_eq!(stats.bytes_written(), 100);
        assert_eq!(stats.masks_loaded(), 1);
        assert_eq!(stats.virtual_read_time(), Duration::from_millis(3));
        assert_eq!(stats.virtual_io_time(), Duration::from_millis(6));

        let before = stats.snapshot();
        stats.record_read(1, Duration::from_nanos(10));
        stats.record_mask_loaded();
        let delta = stats.snapshot().delta_since(&before);
        assert_eq!(delta.read_ops, 1);
        assert_eq!(delta.bytes_read, 1);
        assert_eq!(delta.masks_loaded, 1);

        stats.reset();
        assert_eq!(stats.bytes_read(), 0);
        assert_eq!(stats.virtual_io_time(), Duration::ZERO);
    }

    #[test]
    fn stats_are_thread_safe() {
        let stats = IoStats::new_shared();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stats = Arc::clone(&stats);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        stats.record_read(10, Duration::from_nanos(5));
                    }
                });
            }
        });
        assert_eq!(stats.read_ops(), 4000);
        assert_eq!(stats.bytes_read(), 40_000);
    }
}
