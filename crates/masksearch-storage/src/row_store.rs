//! A PostgreSQL-like heap-file layout: masks stored as tuples in pages.
//!
//! The paper's PostgreSQL baseline stores each mask as a 2-D array column and
//! evaluates `CP` with a C UDF during a sequential scan (§4.1). The relevant
//! cost structure is:
//!
//! * the scan reads *every* tuple (header + mask payload) from disk,
//! * reads happen page by page, so per-operation latency is amortised over a
//!   page's worth of tuples, and
//! * every tuple additionally pays a fixed per-tuple executor/UDF overhead.
//!
//! This module reproduces exactly that: a heap file of tuples grouped into
//! fixed-size pages, a sequential [`RowStore::scan`] charged per page, and a
//! configurable per-tuple CPU overhead surfaced to callers so engines can add
//! it to their reported compute time.

use crate::codec::{Reader, Writer};
use crate::disk::{DiskProfile, IoStats};
use crate::error::{StorageError, StorageResult};
use masksearch_core::{Mask, MaskId};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Magic bytes identifying a row store heap file.
pub const ROW_MAGIC: [u8; 4] = *b"MSKR";
/// Heap file format version.
pub const ROW_FORMAT_VERSION: u16 = 1;
/// Default page size used to amortise per-operation latency (8 MiB).
pub const DEFAULT_PAGE_BYTES: u64 = 8 * 1024 * 1024;

const HEADER_LEN: u64 = 16; // magic(4) + version(2) + reserved(2) + count(8)

/// A heap file of `(mask_id, width, height, pixels)` tuples.
pub struct RowStore {
    #[allow(dead_code)]
    path: PathBuf,
    file: Mutex<File>,
    profile: DiskProfile,
    stats: Arc<IoStats>,
    /// Tuple directory: `(mask_id, offset, length)`.
    tuples: Vec<(MaskId, u64, u64)>,
    /// Size of a logical page for sequential-scan accounting.
    page_bytes: u64,
    /// Fixed CPU overhead charged per tuple visited by a scan (UDF call,
    /// tuple deforming, ...). Reported to callers, not slept.
    per_tuple_overhead: Duration,
    write_offset: u64,
}

impl RowStore {
    /// Creates a new, empty heap file at `path`.
    pub fn create(path: impl Into<PathBuf>, profile: DiskProfile) -> StorageResult<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| StorageError::io("creating row store directory", e))?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| StorageError::io(format!("creating row store {}", path.display()), e))?;
        let mut header = Writer::with_capacity(HEADER_LEN as usize);
        header.write_bytes(&ROW_MAGIC);
        header.write_u16(ROW_FORMAT_VERSION);
        header.write_u16(0);
        header.write_u64(0);
        file.write_all(&header.into_bytes())
            .map_err(|e| StorageError::io("writing row store header", e))?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            profile,
            stats: IoStats::new_shared(),
            tuples: Vec::new(),
            page_bytes: DEFAULT_PAGE_BYTES,
            per_tuple_overhead: Duration::from_micros(15),
            write_offset: HEADER_LEN,
        })
    }

    /// Overrides the logical page size used for scan accounting.
    pub fn with_page_bytes(mut self, page_bytes: u64) -> Self {
        self.page_bytes = page_bytes.max(1);
        self
    }

    /// Overrides the per-tuple CPU overhead model.
    pub fn with_per_tuple_overhead(mut self, overhead: Duration) -> Self {
        self.per_tuple_overhead = overhead;
        self
    }

    /// Per-tuple CPU overhead of a scan (UDF invocation cost).
    pub fn per_tuple_overhead(&self) -> Duration {
        self.per_tuple_overhead
    }

    /// Number of tuples in the heap.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` if the heap has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total payload bytes (excluding the file header).
    pub fn total_bytes(&self) -> u64 {
        self.write_offset - HEADER_LEN
    }

    /// Shared I/O statistics.
    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// All mask ids in heap order.
    pub fn ids(&self) -> Vec<MaskId> {
        self.tuples.iter().map(|(id, _, _)| *id).collect()
    }

    /// Appends a tuple to the heap.
    pub fn append(&mut self, mask_id: MaskId, mask: &Mask) -> StorageResult<()> {
        let mut w = Writer::with_capacity(24 + mask.data().len() * 4);
        w.write_u64(mask_id.raw());
        w.write_u32(mask.width());
        w.write_u32(mask.height());
        w.write_f32_vec(mask.data());
        let bytes = w.into_bytes();
        let offset = self.write_offset;
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| StorageError::io("seeking row store", e))?;
            file.write_all(&bytes)
                .map_err(|e| StorageError::io("appending row store tuple", e))?;
        }
        self.stats.record_write(
            bytes.len() as u64,
            self.profile.write_cost(bytes.len() as u64, 1),
        );
        self.tuples.push((mask_id, offset, bytes.len() as u64));
        self.write_offset += bytes.len() as u64;
        Ok(())
    }

    fn decode_tuple(bytes: &[u8]) -> StorageResult<(MaskId, Mask)> {
        let mut r = Reader::new(bytes, "row store tuple");
        let mask_id = MaskId::new(r.read_u64()?);
        let width = r.read_u32()?;
        let height = r.read_u32()?;
        let pixels = r.read_f32_vec()?;
        let mask =
            Mask::new(width, height, pixels).map_err(|source| StorageError::InvalidMask {
                mask_id: Some(mask_id),
                source,
            })?;
        Ok((mask_id, mask))
    }

    /// Sequentially scans every tuple, decoding its mask and invoking `f`.
    ///
    /// Disk cost: the full heap is read, charged one operation per
    /// [`page_bytes`](Self::with_page_bytes)-sized page. The returned
    /// [`ScanReport`] carries the modelled per-tuple CPU overhead so engines
    /// can fold it into their compute-time accounting.
    pub fn scan(
        &self,
        mut f: impl FnMut(MaskId, Mask) -> StorageResult<()>,
    ) -> StorageResult<ScanReport> {
        let total = self.total_bytes();
        let pages = total.div_ceil(self.page_bytes).max(1);
        // Charge the whole heap read up front (sequential scan).
        self.stats
            .record_read(total, self.profile.read_cost(total, pages));
        let mut visited = 0u64;
        for &(id, offset, len) in &self.tuples {
            let mut buf = vec![0u8; len as usize];
            {
                let mut file = self.file.lock();
                file.seek(SeekFrom::Start(offset))
                    .map_err(|e| StorageError::io("seeking row store tuple", e))?;
                file.read_exact(&mut buf)
                    .map_err(|e| StorageError::io("reading row store tuple", e))?;
            }
            self.stats.record_mask_loaded();
            let (decoded_id, mask) = Self::decode_tuple(&buf)?;
            debug_assert_eq!(decoded_id, id);
            f(id, mask)?;
            visited += 1;
        }
        Ok(ScanReport {
            tuples_visited: visited,
            per_tuple_overhead: self.per_tuple_overhead,
        })
    }

    /// Random access to a single tuple (charged one operation).
    pub fn get(&self, mask_id: MaskId) -> StorageResult<Mask> {
        let &(_, offset, len) = self
            .tuples
            .iter()
            .find(|(id, _, _)| *id == mask_id)
            .ok_or(StorageError::MaskNotFound(mask_id))?;
        let mut buf = vec![0u8; len as usize];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| StorageError::io("seeking row store tuple", e))?;
            file.read_exact(&mut buf)
                .map_err(|e| StorageError::io("reading row store tuple", e))?;
        }
        self.stats.record_read(len, self.profile.read_cost(len, 1));
        self.stats.record_mask_loaded();
        let (_, mask) = Self::decode_tuple(&buf)?;
        Ok(mask)
    }
}

/// Summary of one sequential scan of the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanReport {
    /// Number of tuples visited by the scan.
    pub tuples_visited: u64,
    /// Modelled CPU overhead per tuple (UDF call and tuple deforming).
    pub per_tuple_overhead: Duration,
}

impl ScanReport {
    /// Total modelled per-tuple CPU overhead for the scan.
    pub fn total_overhead(&self) -> Duration {
        self.per_tuple_overhead
            .checked_mul(self.tuples_visited as u32)
            .unwrap_or(Duration::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mask(seed: u32) -> Mask {
        Mask::from_fn(8, 4, |x, y| ((x + y + seed) % 7) as f32 / 7.0)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "masksearch-row-test-{}-{}.heap",
            name,
            std::process::id()
        ))
    }

    #[test]
    fn append_scan_and_get() {
        let path = temp_path("scan");
        let mut store = RowStore::create(&path, DiskProfile::unthrottled()).unwrap();
        for i in 0..7u64 {
            store
                .append(MaskId::new(i), &sample_mask(i as u32))
                .unwrap();
        }
        assert_eq!(store.len(), 7);
        assert_eq!(store.ids().len(), 7);

        let mut seen = 0;
        let report = store
            .scan(|id, mask| {
                assert_eq!(mask, sample_mask(id.raw() as u32));
                seen += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, 7);
        assert_eq!(report.tuples_visited, 7);
        assert!(report.total_overhead() > Duration::ZERO);
        assert_eq!(store.io_stats().masks_loaded(), 7);

        assert_eq!(store.get(MaskId::new(3)).unwrap(), sample_mask(3));
        assert!(matches!(
            store.get(MaskId::new(99)),
            Err(StorageError::MaskNotFound(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scan_charges_one_op_per_page() {
        let path = temp_path("pages");
        let mut store = RowStore::create(&path, DiskProfile::unthrottled())
            .unwrap()
            .with_page_bytes(256);
        for i in 0..8u64 {
            store
                .append(MaskId::new(i), &sample_mask(i as u32))
                .unwrap();
        }
        store.scan(|_, _| Ok(())).unwrap();
        // Each tuple is 24 + 4 + 8*4*4 = 156 bytes; 8 tuples = 1248 bytes,
        // which is 5 pages of 256 bytes.
        assert_eq!(store.io_stats().read_ops(), 1);
        assert_eq!(store.io_stats().bytes_read(), store.total_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn per_tuple_overhead_is_configurable() {
        let path = temp_path("overhead");
        let mut store = RowStore::create(&path, DiskProfile::unthrottled())
            .unwrap()
            .with_per_tuple_overhead(Duration::from_millis(1));
        for i in 0..3u64 {
            store
                .append(MaskId::new(i), &sample_mask(i as u32))
                .unwrap();
        }
        let report = store.scan(|_, _| Ok(())).unwrap();
        assert_eq!(report.total_overhead(), Duration::from_millis(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_heap_scan_is_a_noop() {
        let path = temp_path("empty");
        let store = RowStore::create(&path, DiskProfile::unthrottled()).unwrap();
        let report = store.scan(|_, _| panic!("no tuples expected")).unwrap();
        assert_eq!(report.tuples_visited, 0);
        assert!(store.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
