//! Binary mask file format.
//!
//! A mask file is a small header followed by the pixel payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MSKF"
//! 4       2     format version (currently 1)
//! 6       1     encoding (0 = raw f32 LE, 1 = compressed, see `compression`)
//! 7       1     reserved (zero)
//! 8       8     mask id
//! 16      4     width
//! 20      4     height
//! 24      8     payload byte length
//! 32      ...   payload
//! ```
//!
//! The header is fixed-size so stores can read metadata without touching the
//! payload, and so the byte counts fed to the disk cost model are exact.

use crate::codec::{Reader, Writer};
use crate::compression;
use crate::error::{StorageError, StorageResult};
use masksearch_core::{Mask, MaskId};

/// Magic bytes identifying a mask file.
pub const MASK_MAGIC: [u8; 4] = *b"MSKF";
/// Current mask file format version.
pub const MASK_FORMAT_VERSION: u16 = 1;
/// Size in bytes of the fixed mask file header.
pub const MASK_HEADER_LEN: usize = 32;

/// How the pixel payload of a mask file is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MaskEncoding {
    /// Raw little-endian `f32` pixels, row-major (4 bytes per pixel).
    #[default]
    Raw,
    /// Losslessly compressed with [`crate::compression`].
    Compressed,
}

impl MaskEncoding {
    fn to_code(self) -> u8 {
        match self {
            MaskEncoding::Raw => 0,
            MaskEncoding::Compressed => 1,
        }
    }

    fn from_code(code: u8) -> StorageResult<Self> {
        match code {
            0 => Ok(MaskEncoding::Raw),
            1 => Ok(MaskEncoding::Compressed),
            other => Err(StorageError::corrupt(format!(
                "unknown mask encoding code {other}"
            ))),
        }
    }
}

/// Parsed header of a mask file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskHeader {
    /// Identifier of the mask stored in the file.
    pub mask_id: MaskId,
    /// Mask width in pixels.
    pub width: u32,
    /// Mask height in pixels.
    pub height: u32,
    /// Payload encoding.
    pub encoding: MaskEncoding,
    /// Payload length in bytes.
    pub payload_len: u64,
}

impl MaskHeader {
    /// Total file size implied by the header (header + payload).
    pub fn file_len(&self) -> u64 {
        MASK_HEADER_LEN as u64 + self.payload_len
    }
}

/// Serialises a mask into the on-disk file format.
pub fn encode_mask(mask_id: MaskId, mask: &Mask, encoding: MaskEncoding) -> Vec<u8> {
    let payload = match encoding {
        MaskEncoding::Raw => {
            let mut bytes = Vec::with_capacity(mask.data().len() * 4);
            for &v in mask.data() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            bytes
        }
        MaskEncoding::Compressed => compression::compress(mask.data()),
    };
    let mut w = Writer::with_capacity(MASK_HEADER_LEN + payload.len());
    w.write_bytes(&MASK_MAGIC);
    w.write_u16(MASK_FORMAT_VERSION);
    w.write_u8(encoding.to_code());
    w.write_u8(0); // reserved
    w.write_u64(mask_id.raw());
    w.write_u32(mask.width());
    w.write_u32(mask.height());
    w.write_u64(payload.len() as u64);
    w.write_bytes(&payload);
    w.into_bytes()
}

/// Parses only the fixed-size header of a mask file.
pub fn decode_header(bytes: &[u8]) -> StorageResult<MaskHeader> {
    let mut r = Reader::new(bytes, "mask file header");
    let magic = r.read_magic()?;
    if magic != MASK_MAGIC {
        return Err(StorageError::BadMagic {
            path: "<mask file>".to_string(),
            found: magic,
        });
    }
    let version = r.read_u16()?;
    if version > MASK_FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            found: version,
            supported: MASK_FORMAT_VERSION,
        });
    }
    let encoding = MaskEncoding::from_code(r.read_u8()?)?;
    let _reserved = r.read_u8()?;
    let mask_id = MaskId::new(r.read_u64()?);
    let width = r.read_u32()?;
    let height = r.read_u32()?;
    let payload_len = r.read_u64()?;
    Ok(MaskHeader {
        mask_id,
        width,
        height,
        encoding,
        payload_len,
    })
}

/// Parses a full mask file (header + payload) back into a [`Mask`].
pub fn decode_mask(bytes: &[u8]) -> StorageResult<(MaskHeader, Mask)> {
    let header = decode_header(bytes)?;
    let payload_start = MASK_HEADER_LEN;
    let payload_end = payload_start + header.payload_len as usize;
    if bytes.len() < payload_end {
        return Err(StorageError::Truncated {
            context: "mask payload".to_string(),
            expected: payload_end,
            available: bytes.len(),
        });
    }
    let payload = &bytes[payload_start..payload_end];
    let expected_pixels = (header.width as usize) * (header.height as usize);
    let pixels: Vec<f32> = match header.encoding {
        MaskEncoding::Raw => {
            if payload.len() != expected_pixels * 4 {
                return Err(StorageError::corrupt(format!(
                    "raw payload has {} bytes, expected {}",
                    payload.len(),
                    expected_pixels * 4
                )));
            }
            payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        }
        MaskEncoding::Compressed => compression::decompress(payload, expected_pixels)
            .ok_or_else(|| StorageError::corrupt("compressed mask payload failed to decode"))?,
    };
    if pixels.len() != expected_pixels {
        return Err(StorageError::corrupt(format!(
            "decoded {} pixels, header claims {}",
            pixels.len(),
            expected_pixels
        )));
    }
    let mask = Mask::new(header.width, header.height, pixels).map_err(|source| {
        StorageError::InvalidMask {
            mask_id: Some(header.mask_id),
            source,
        }
    })?;
    Ok((header, mask))
}

/// Decodes a contiguous row range `[row_start, row_end)` of a *raw-encoded*
/// mask file, given the full file header and the bytes of those rows.
///
/// This is the primitive that lets the TileDB-like array store slice a
/// constant ROI out of every mask while reading only the relevant rows.
pub fn decode_raw_rows(
    header: &MaskHeader,
    row_bytes: &[u8],
    row_start: u32,
    row_end: u32,
) -> StorageResult<Vec<f32>> {
    if header.encoding != MaskEncoding::Raw {
        return Err(StorageError::corrupt(
            "row slicing requires the raw encoding",
        ));
    }
    let rows = (row_end - row_start) as usize;
    let expected = rows * header.width as usize * 4;
    if row_bytes.len() != expected {
        return Err(StorageError::Truncated {
            context: "mask row slice".to_string(),
            expected,
            available: row_bytes.len(),
        });
    }
    Ok(row_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mask() -> Mask {
        Mask::from_fn(32, 16, |x, y| ((x * y) % 17) as f32 / 17.0)
    }

    #[test]
    fn raw_round_trip() {
        let mask = sample_mask();
        let bytes = encode_mask(MaskId::new(5), &mask, MaskEncoding::Raw);
        assert_eq!(bytes.len(), MASK_HEADER_LEN + 32 * 16 * 4);
        let (header, decoded) = decode_mask(&bytes).unwrap();
        assert_eq!(header.mask_id, MaskId::new(5));
        assert_eq!(header.encoding, MaskEncoding::Raw);
        assert_eq!((header.width, header.height), (32, 16));
        assert_eq!(decoded, mask);
        assert_eq!(header.file_len(), bytes.len() as u64);
    }

    #[test]
    fn compressed_round_trip() {
        let mask = sample_mask();
        let bytes = encode_mask(MaskId::new(77), &mask, MaskEncoding::Compressed);
        let (header, decoded) = decode_mask(&bytes).unwrap();
        assert_eq!(header.encoding, MaskEncoding::Compressed);
        assert_eq!(decoded, mask);
    }

    #[test]
    fn header_only_parse() {
        let mask = sample_mask();
        let bytes = encode_mask(MaskId::new(8), &mask, MaskEncoding::Raw);
        let header = decode_header(&bytes[..MASK_HEADER_LEN]).unwrap();
        assert_eq!(header.mask_id, MaskId::new(8));
        assert_eq!(header.payload_len, 32 * 16 * 4);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let mask = sample_mask();
        let mut bytes = encode_mask(MaskId::new(1), &mask, MaskEncoding::Raw);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_mask(&bad),
            Err(StorageError::BadMagic { .. })
        ));

        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 0xff;
        bad[5] = 0xff;
        assert!(matches!(
            decode_mask(&bad),
            Err(StorageError::UnsupportedVersion { .. })
        ));

        // Unknown encoding.
        let mut bad = bytes.clone();
        bad[6] = 9;
        assert!(matches!(
            decode_mask(&bad),
            Err(StorageError::Corrupt { .. })
        ));

        // Truncated payload.
        bytes.truncate(bytes.len() - 10);
        assert!(matches!(
            decode_mask(&bytes),
            Err(StorageError::Truncated { .. })
        ));
    }

    #[test]
    fn out_of_domain_pixels_are_rejected_at_decode() {
        let mask = sample_mask();
        let mut bytes = encode_mask(MaskId::new(1), &mask, MaskEncoding::Raw);
        // Overwrite the first pixel with 2.0f32.
        let bits = 2.0f32.to_le_bytes();
        bytes[MASK_HEADER_LEN..MASK_HEADER_LEN + 4].copy_from_slice(&bits);
        assert!(matches!(
            decode_mask(&bytes),
            Err(StorageError::InvalidMask { .. })
        ));
    }

    #[test]
    fn row_slice_decoding() {
        let mask = sample_mask();
        let bytes = encode_mask(MaskId::new(1), &mask, MaskEncoding::Raw);
        let header = decode_header(&bytes).unwrap();
        let row_start = 3u32;
        let row_end = 7u32;
        let offset = MASK_HEADER_LEN + (row_start as usize) * 32 * 4;
        let end = MASK_HEADER_LEN + (row_end as usize) * 32 * 4;
        let pixels = decode_raw_rows(&header, &bytes[offset..end], row_start, row_end).unwrap();
        assert_eq!(pixels.len(), 4 * 32);
        assert_eq!(pixels[0], mask.get(0, 3));
        assert_eq!(pixels[4 * 32 - 1], mask.get(31, 6));
        // Wrong slice length is rejected.
        assert!(decode_raw_rows(&header, &bytes[offset..end - 4], row_start, row_end).is_err());
    }
}
