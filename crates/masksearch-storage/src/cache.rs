//! A byte-budgeted LRU cache of decoded masks.
//!
//! The paper assumes "the database of masks is too large to fit in memory"
//! (§3); the cache makes that assumption explicit and tunable. The
//! verification stage of the executor reads masks through this cache so that
//! multi-query workloads (§4.5) benefit from recently verified masks without
//! ever exceeding a configured memory budget.
//!
//! Entries are stored in *tiled* form ([`TiledMask`]): the decoded pixels
//! plus the per-tile summaries of the verification kernel, so a cache hit
//! also skips rebuilding the summaries the kernel prunes with. The byte
//! budget accounts for both.

use crate::error::StorageResult;
use masksearch_core::{Mask, MaskId, TiledMask};
use masksearch_obs::counters as obs_counters;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;

/// Statistics describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups satisfied by the cache.
    pub hits: u64,
    /// Number of lookups that had to load the mask.
    pub misses: u64,
    /// Number of masks evicted to stay under the byte budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    /// The decoded mask together with its tile-summary grid, so repeated
    /// verification of a cached mask also reuses the summaries the
    /// verification kernel prunes with.
    mask: Arc<TiledMask>,
    bytes: u64,
    last_used: u64,
}

/// Entries the per-id invalidation log may hold before collapsing into the
/// coarse `invalidated_floor` fallback.
const INVALIDATION_LOG_CAP: usize = 4096;

struct Inner {
    entries: HashMap<MaskId, Entry>,
    clock: u64,
    used_bytes: u64,
    stats: CacheStats,
    /// Bumped by every invalidation. `get_or_load` loads outside the lock;
    /// comparing against the per-id log on re-entry keeps a load that raced
    /// with an invalidation of the *same* mask from caching stale pixels,
    /// without penalising loads of unrelated masks during steady ingestion.
    generation: u64,
    /// Generation at which each mask was last invalidated. Bounded: when it
    /// grows past [`INVALIDATION_LOG_CAP`] it is cleared and
    /// `invalidated_floor` takes over for older in-flight loads.
    invalidated: HashMap<MaskId, u64>,
    /// Loads that started at or below this generation skip caching
    /// entirely (conservative fallback after a log collapse or `clear`).
    invalidated_floor: u64,
}

/// A least-recently-used mask cache with a byte budget.
///
/// A budget of zero disables caching entirely (every lookup is a miss), which
/// is how experiments reproduce the paper's cold-cache setting ("we clear the
/// OS page cache before each query execution", §4.2).
pub struct MaskCache {
    capacity_bytes: u64,
    inner: Mutex<Inner>,
}

impl MaskCache {
    /// Creates a cache bounded by `capacity_bytes` of decoded mask data.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                used_bytes: 0,
                stats: CacheStats::default(),
                generation: 0,
                invalidated: HashMap::new(),
                invalidated_floor: 0,
            }),
        }
    }

    /// A cache that never stores anything (cold-cache behaviour).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Acquires the cache mutex, charging the wait to the global
    /// lock-contention counters (`cache_lock_wait_us` / `cache_lock_acquires`)
    /// so profiles can tell cache contention apart from load time.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        obs_counters::timed_acquire(
            &obs_counters::CACHE_LOCK_WAIT_US,
            &obs_counters::CACHE_LOCK_ACQUIRES,
            || self.inner.lock(),
        )
    }

    /// Configured byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently held by the cache.
    pub fn used_bytes(&self) -> u64 {
        self.lock().used_bytes
    }

    /// Number of cached masks.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Returns `true` if the cache holds no masks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Removes every cached mask (statistics are preserved).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.generation += 1;
        inner.invalidated_floor = inner.generation;
        inner.invalidated.clear();
        inner.entries.clear();
        inner.used_bytes = 0;
    }

    /// Looks up a mask, or loads it with `load` on a miss and caches the
    /// result (evicting least-recently-used entries if needed).
    pub fn get_or_load(
        &self,
        mask_id: MaskId,
        load: impl FnOnce() -> StorageResult<Mask>,
    ) -> StorageResult<Arc<Mask>> {
        self.get_or_load_tiled(mask_id, || Ok(TiledMask::from_mask(load()?)))
            .map(|tiled| tiled.mask_arc())
    }

    /// Looks up a mask in its tiled form, or loads it with `load` on a miss
    /// and caches the result (evicting least-recently-used entries if
    /// needed). This is the lookup the verification executor uses: cache
    /// hits reuse both the decoded pixels and the tile summaries.
    pub fn get_or_load_tiled(
        &self,
        mask_id: MaskId,
        load: impl FnOnce() -> StorageResult<TiledMask>,
    ) -> StorageResult<Arc<TiledMask>> {
        let generation_before = {
            let mut inner = self.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.entries.get_mut(&mask_id) {
                entry.last_used = clock;
                let mask = Arc::clone(&entry.mask);
                inner.stats.hits += 1;
                return Ok(mask);
            }
            inner.stats.misses += 1;
            inner.generation
        };
        // Load outside the lock so concurrent misses for different masks do
        // not serialise on the cache mutex.
        let mask = Arc::new(load()?);
        let bytes = mask.byte_size();
        let mut inner = self.lock();
        if self.capacity_bytes == 0 || bytes > self.capacity_bytes {
            // Too large (or caching disabled): return without caching.
            return Ok(mask);
        }
        let invalidated_since = generation_before < inner.invalidated_floor
            || inner
                .invalidated
                .get(&mask_id)
                .is_some_and(|&gen| gen > generation_before);
        if invalidated_since {
            // An invalidation of THIS mask (a store write) raced with the
            // load: what we loaded may predate the write, so hand it to the
            // caller but do not cache it.
            return Ok(mask);
        }
        inner.clock += 1;
        let clock = inner.clock;
        // Evict until the new entry fits.
        while inner.used_bytes + bytes > self.capacity_bytes && !inner.entries.is_empty() {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id)
                .expect("non-empty cache has a minimum");
            if let Some(evicted) = inner.entries.remove(&victim) {
                inner.used_bytes -= evicted.bytes;
                inner.stats.evictions += 1;
            }
        }
        inner.used_bytes += bytes;
        inner.entries.insert(
            mask_id,
            Entry {
                mask: Arc::clone(&mask),
                bytes,
                last_used: clock,
            },
        );
        Ok(mask)
    }

    /// Returns the cached mask without loading, if present.
    pub fn peek(&self, mask_id: MaskId) -> Option<Arc<Mask>> {
        self.peek_tiled(mask_id).map(|tiled| tiled.mask_arc())
    }

    /// Returns the cached tiled mask without loading, if present.
    pub fn peek_tiled(&self, mask_id: MaskId) -> Option<Arc<TiledMask>> {
        let inner = self.lock();
        inner.entries.get(&mask_id).map(|e| Arc::clone(&e.mask))
    }

    /// Drops the cached copy of a mask (used when it is overwritten or
    /// deleted in the backing store). Returns `true` if an entry was removed.
    ///
    /// Also records the invalidation, so an in-flight `get_or_load` of this
    /// mask whose load raced with the invalidation will not install a stale
    /// copy (loads of other masks are unaffected).
    pub fn invalidate(&self, mask_id: MaskId) -> bool {
        let mut inner = self.lock();
        inner.generation += 1;
        let generation = inner.generation;
        if inner.invalidated.len() >= INVALIDATION_LOG_CAP {
            // Collapse the log: anything still in flight becomes
            // conservatively uncacheable instead of unboundedly tracked.
            inner.invalidated.clear();
            inner.invalidated_floor = generation;
        }
        inner.invalidated.insert(mask_id, generation);
        match inner.entries.remove(&mask_id) {
            Some(entry) => {
                inner.used_bytes -= entry.bytes;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(seed: u32) -> Mask {
        Mask::from_fn(8, 8, |x, y| ((x + y + seed) % 5) as f32 / 5.0)
    }

    #[test]
    fn hit_after_load() {
        let cache = MaskCache::new(1024 * 1024);
        let id = MaskId::new(1);
        let loaded = cache.get_or_load(id, || Ok(mask(1))).unwrap();
        assert_eq!(*loaded, mask(1));
        let again = cache
            .get_or_load(id, || panic!("should be a cache hit"))
            .unwrap();
        assert_eq!(*again, mask(1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn invalidate_drops_entries_and_frees_budget() {
        let cache = MaskCache::new(1024 * 1024);
        let id = MaskId::new(7);
        cache.get_or_load(id, || Ok(mask(7))).unwrap();
        assert!(cache.peek(id).is_some());
        assert!(cache.used_bytes() > 0);
        assert!(cache.invalidate(id));
        assert!(cache.peek(id).is_none());
        assert_eq!(cache.used_bytes(), 0);
        assert!(!cache.invalidate(id));
    }

    #[test]
    fn load_racing_an_invalidation_is_not_cached() {
        // Simulate a store write landing between a miss and the load
        // completing: the load closure itself invalidates the id. The stale
        // result must be returned to the caller but never installed.
        let cache = MaskCache::new(1024 * 1024);
        let id = MaskId::new(3);
        let stale = cache
            .get_or_load(id, || {
                cache.invalidate(id);
                Ok(mask(3))
            })
            .unwrap();
        assert_eq!(*stale, mask(3));
        assert!(cache.peek(id).is_none(), "stale mask must not be cached");
        // The next lookup reloads and caches the fresh value.
        let fresh = cache.get_or_load(id, || Ok(mask(4))).unwrap();
        assert_eq!(*fresh, mask(4));
        assert_eq!(*cache.peek(id).unwrap(), mask(4));
    }

    #[test]
    fn invalidating_other_masks_does_not_block_caching() {
        // Steady ingestion invalidates a stream of unrelated ids; a load in
        // flight for a different mask must still be cached.
        let cache = MaskCache::new(1024 * 1024);
        let id = MaskId::new(10);
        let loaded = cache
            .get_or_load(id, || {
                for other in 0..5u64 {
                    cache.invalidate(MaskId::new(other));
                }
                Ok(mask(10))
            })
            .unwrap();
        assert_eq!(*loaded, mask(10));
        assert!(
            cache.peek(id).is_some(),
            "unrelated invalidations must not prevent caching"
        );
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // Each 8x8 mask is 256 pixel bytes + 100 tile-summary bytes = 356;
        // a budget of 800 holds two entries.
        let cache = MaskCache::new(800);
        for i in 0..3u64 {
            cache
                .get_or_load(MaskId::new(i), || Ok(mask(i as u32)))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.used_bytes() <= 800);
        assert_eq!(cache.stats().evictions, 1);
        // Mask 0 was least recently used, so it is gone; 1 and 2 remain.
        assert!(cache.peek(MaskId::new(0)).is_none());
        assert!(cache.peek(MaskId::new(1)).is_some());
        assert!(cache.peek(MaskId::new(2)).is_some());
    }

    #[test]
    fn recency_is_updated_on_hit() {
        let cache = MaskCache::new(800);
        cache.get_or_load(MaskId::new(0), || Ok(mask(0))).unwrap();
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        // Touch 0 so it becomes most recent, then insert 2 -> 1 is evicted.
        cache.get_or_load(MaskId::new(0), || panic!("hit")).unwrap();
        cache.get_or_load(MaskId::new(2), || Ok(mask(2))).unwrap();
        assert!(cache.peek(MaskId::new(0)).is_some());
        assert!(cache.peek(MaskId::new(1)).is_none());
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = MaskCache::disabled();
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        assert!(cache.is_empty());
        // Second lookup is a miss again.
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn load_errors_propagate_and_are_not_cached() {
        let cache = MaskCache::new(1024);
        let err = cache.get_or_load(MaskId::new(1), || {
            Err(crate::error::StorageError::MaskNotFound(MaskId::new(1)))
        });
        assert!(err.is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_keeps_statistics() {
        let cache = MaskCache::new(1024 * 1024);
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }
}
