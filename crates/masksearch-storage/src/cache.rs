//! A byte-budgeted LRU cache of decoded masks.
//!
//! The paper assumes "the database of masks is too large to fit in memory"
//! (§3); the cache makes that assumption explicit and tunable. The
//! verification stage of the executor reads masks through this cache so that
//! multi-query workloads (§4.5) benefit from recently verified masks without
//! ever exceeding a configured memory budget.
//!
//! Entries are stored in *tiled* form ([`TiledMask`]): the decoded pixels
//! plus the per-tile summaries of the verification kernel, so a cache hit
//! also skips rebuilding the summaries the kernel prunes with. The byte
//! budget accounts for both.

use crate::error::StorageResult;
use masksearch_core::{Mask, MaskId, TiledMask};
use masksearch_obs::counters as obs_counters;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, PoisonError};

/// Statistics describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups satisfied by the cache.
    pub hits: u64,
    /// Number of lookups that had to load the mask.
    pub misses: u64,
    /// Number of masks evicted to stay under the byte budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    /// The decoded mask together with its tile-summary grid, so repeated
    /// verification of a cached mask also reuses the summaries the
    /// verification kernel prunes with.
    mask: Arc<TiledMask>,
    bytes: u64,
    last_used: u64,
}

/// A single-flight slot: one per mask id currently being loaded. The first
/// misser (the *leader*) loads and decompresses; concurrent missers of the
/// same id block here instead of duplicating the load.
enum FlightOutcome {
    /// The leader is still loading.
    Pending,
    /// The leader finished. `Some` carries a result safe to share;
    /// `None` means the waiter must restart its lookup (the load failed,
    /// raced an invalidation of this id, or the cache is not sharing).
    Done(Option<Arc<TiledMask>>),
}

struct Flight {
    state: std::sync::Mutex<FlightOutcome>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self {
            state: std::sync::Mutex::new(FlightOutcome::Pending),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the leader completes, returning its shared result.
    fn wait(&self) -> Option<Arc<TiledMask>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*state {
                FlightOutcome::Done(result) => return result.clone(),
                FlightOutcome::Pending => {
                    state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn complete(&self, result: Option<Arc<TiledMask>>) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = FlightOutcome::Done(result);
        self.cv.notify_all();
    }
}

/// Deregisters and completes the leader's flight on every exit path —
/// including an unwinding load — so waiters can never hang on a flight
/// whose leader is gone.
struct FlightGuard<'a> {
    cache: &'a MaskCache,
    mask_id: MaskId,
    slot: Arc<Flight>,
    /// Set by the leader on success when the loaded value is safe to share
    /// with the waiters; `None` sends them back around the lookup loop.
    shared: Option<Arc<TiledMask>>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.cache.lock().flights.remove(&self.mask_id);
        self.slot.complete(self.shared.take());
    }
}

/// Entries the per-id invalidation log may hold before collapsing into the
/// coarse `invalidated_floor` fallback.
const INVALIDATION_LOG_CAP: usize = 4096;

struct Inner {
    entries: HashMap<MaskId, Entry>,
    /// Loads currently in flight, keyed by mask id (single-flight: the
    /// first misser loads, concurrent missers of the same id wait).
    flights: HashMap<MaskId, Arc<Flight>>,
    clock: u64,
    used_bytes: u64,
    stats: CacheStats,
    /// Bumped by every invalidation. `get_or_load` loads outside the lock;
    /// comparing against the per-id log on re-entry keeps a load that raced
    /// with an invalidation of the *same* mask from caching stale pixels,
    /// without penalising loads of unrelated masks during steady ingestion.
    generation: u64,
    /// Generation at which each mask was last invalidated. Bounded: when it
    /// grows past [`INVALIDATION_LOG_CAP`] it is cleared and
    /// `invalidated_floor` takes over for older in-flight loads.
    invalidated: HashMap<MaskId, u64>,
    /// Loads that started at or below this generation skip caching
    /// entirely (conservative fallback after a log collapse or `clear`).
    invalidated_floor: u64,
}

/// A least-recently-used mask cache with a byte budget.
///
/// A budget of zero disables caching entirely (every lookup is a miss), which
/// is how experiments reproduce the paper's cold-cache setting ("we clear the
/// OS page cache before each query execution", §4.2).
pub struct MaskCache {
    capacity_bytes: u64,
    inner: Mutex<Inner>,
}

impl MaskCache {
    /// Creates a cache bounded by `capacity_bytes` of decoded mask data.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                flights: HashMap::new(),
                clock: 0,
                used_bytes: 0,
                stats: CacheStats::default(),
                generation: 0,
                invalidated: HashMap::new(),
                invalidated_floor: 0,
            }),
        }
    }

    /// A cache that never stores anything (cold-cache behaviour).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Acquires the cache mutex, charging the wait to the global
    /// lock-contention counters (`cache_lock_wait_us` / `cache_lock_acquires`)
    /// so profiles can tell cache contention apart from load time.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        obs_counters::timed_acquire(
            &obs_counters::CACHE_LOCK_WAIT_US,
            &obs_counters::CACHE_LOCK_ACQUIRES,
            || self.inner.lock(),
        )
    }

    /// Configured byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently held by the cache.
    pub fn used_bytes(&self) -> u64 {
        self.lock().used_bytes
    }

    /// Number of cached masks.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Returns `true` if the cache holds no masks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Removes every cached mask (statistics are preserved).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.generation += 1;
        inner.invalidated_floor = inner.generation;
        inner.invalidated.clear();
        inner.entries.clear();
        inner.used_bytes = 0;
    }

    /// Looks up a mask, or loads it with `load` on a miss and caches the
    /// result (evicting least-recently-used entries if needed).
    pub fn get_or_load(
        &self,
        mask_id: MaskId,
        load: impl FnOnce() -> StorageResult<Mask>,
    ) -> StorageResult<Arc<Mask>> {
        self.get_or_load_tiled(mask_id, || Ok(TiledMask::from_mask(load()?)))
            .map(|tiled| tiled.mask_arc())
    }

    /// Looks up a mask in its tiled form, or loads it with `load` on a miss
    /// and caches the result (evicting least-recently-used entries if
    /// needed). This is the lookup the verification executor uses: cache
    /// hits reuse both the decoded pixels and the tile summaries.
    ///
    /// Loads are **single-flight per mask id**: when several threads miss on
    /// the same id concurrently, exactly one runs `load` (decode and
    /// decompress once); the others block until it finishes and share its
    /// result. A failed or invalidation-raced load sends the waiters back
    /// through the lookup, so an error never poisons the id and a waiter
    /// never observes pixels older than a write it arrived after.
    pub fn get_or_load_tiled(
        &self,
        mask_id: MaskId,
        load: impl FnOnce() -> StorageResult<TiledMask>,
    ) -> StorageResult<Arc<TiledMask>> {
        if self.capacity_bytes == 0 {
            // Caching disabled (the cold-cache experimental setting): every
            // lookup loads for itself; sharing would warm what must be cold.
            self.lock().stats.misses += 1;
            return Ok(Arc::new(load()?));
        }
        let mut load = Some(load);
        loop {
            let flight = {
                let mut inner = self.lock();
                inner.clock += 1;
                let clock = inner.clock;
                if let Some(entry) = inner.entries.get_mut(&mask_id) {
                    entry.last_used = clock;
                    let mask = Arc::clone(&entry.mask);
                    inner.stats.hits += 1;
                    return Ok(mask);
                }
                match inner.flights.get(&mask_id) {
                    Some(flight) => Arc::clone(flight),
                    None => {
                        // This thread is the leader for the id.
                        inner.stats.misses += 1;
                        let flight = Arc::new(Flight::new());
                        inner.flights.insert(mask_id, Arc::clone(&flight));
                        let generation = inner.generation;
                        drop(inner);
                        return self.load_as_leader(
                            mask_id,
                            flight,
                            generation,
                            load.take().expect("leader runs once"),
                        );
                    }
                }
            };
            // Another thread is already loading this id; wait for it (off
            // the cache lock) and share its result.
            if let Some(mask) = flight.wait() {
                self.lock().stats.hits += 1;
                return Ok(mask);
            }
            // The leader's load failed, raced an invalidation, or was not
            // shareable: start the lookup over. If this thread still holds
            // its own `load`, it may become the next leader and surface its
            // own error.
        }
    }

    /// The leader's half of a single-flight load: runs `load`, publishes the
    /// result to the cache and to any waiters, and returns it. The flight is
    /// deregistered (and waiters released) on *every* exit, including an
    /// unwinding `load`.
    fn load_as_leader(
        &self,
        mask_id: MaskId,
        slot: Arc<Flight>,
        generation_before: u64,
        load: impl FnOnce() -> StorageResult<TiledMask>,
    ) -> StorageResult<Arc<TiledMask>> {
        let mut guard = FlightGuard {
            cache: self,
            mask_id,
            slot,
            shared: None,
        };
        // Load outside the lock so concurrent misses for different masks do
        // not serialise on the cache mutex.
        let mask = Arc::new(load()?);
        let bytes = mask.byte_size();
        let mut inner = self.lock();
        let invalidated_since = generation_before < inner.invalidated_floor
            || inner
                .invalidated
                .get(&mask_id)
                .is_some_and(|&gen| gen > generation_before);
        if invalidated_since {
            // An invalidation of THIS mask (a store write) raced with the
            // load: what we loaded may predate the write, so hand it to the
            // caller but do not cache it — and do not share it with waiters,
            // who may have arrived after the write.
            return Ok(mask);
        }
        guard.shared = Some(Arc::clone(&mask));
        if bytes > self.capacity_bytes {
            // Too large to cache: return (and share) without caching.
            return Ok(mask);
        }
        inner.clock += 1;
        let clock = inner.clock;
        // Evict until the new entry fits.
        while inner.used_bytes + bytes > self.capacity_bytes && !inner.entries.is_empty() {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id)
                .expect("non-empty cache has a minimum");
            if let Some(evicted) = inner.entries.remove(&victim) {
                inner.used_bytes -= evicted.bytes;
                inner.stats.evictions += 1;
            }
        }
        inner.used_bytes += bytes;
        inner.entries.insert(
            mask_id,
            Entry {
                mask: Arc::clone(&mask),
                bytes,
                last_used: clock,
            },
        );
        Ok(mask)
    }

    /// Returns the cached mask without loading, if present.
    pub fn peek(&self, mask_id: MaskId) -> Option<Arc<Mask>> {
        self.peek_tiled(mask_id).map(|tiled| tiled.mask_arc())
    }

    /// Returns the cached tiled mask without loading, if present.
    pub fn peek_tiled(&self, mask_id: MaskId) -> Option<Arc<TiledMask>> {
        let inner = self.lock();
        inner.entries.get(&mask_id).map(|e| Arc::clone(&e.mask))
    }

    /// Drops the cached copy of a mask (used when it is overwritten or
    /// deleted in the backing store). Returns `true` if an entry was removed.
    ///
    /// Also records the invalidation, so an in-flight `get_or_load` of this
    /// mask whose load raced with the invalidation will not install a stale
    /// copy (loads of other masks are unaffected).
    pub fn invalidate(&self, mask_id: MaskId) -> bool {
        let mut inner = self.lock();
        inner.generation += 1;
        let generation = inner.generation;
        if inner.invalidated.len() >= INVALIDATION_LOG_CAP {
            // Collapse the log: anything still in flight becomes
            // conservatively uncacheable instead of unboundedly tracked.
            inner.invalidated.clear();
            inner.invalidated_floor = generation;
        }
        inner.invalidated.insert(mask_id, generation);
        match inner.entries.remove(&mask_id) {
            Some(entry) => {
                inner.used_bytes -= entry.bytes;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(seed: u32) -> Mask {
        Mask::from_fn(8, 8, |x, y| ((x + y + seed) % 5) as f32 / 5.0)
    }

    #[test]
    fn hit_after_load() {
        let cache = MaskCache::new(1024 * 1024);
        let id = MaskId::new(1);
        let loaded = cache.get_or_load(id, || Ok(mask(1))).unwrap();
        assert_eq!(*loaded, mask(1));
        let again = cache
            .get_or_load(id, || panic!("should be a cache hit"))
            .unwrap();
        assert_eq!(*again, mask(1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn invalidate_drops_entries_and_frees_budget() {
        let cache = MaskCache::new(1024 * 1024);
        let id = MaskId::new(7);
        cache.get_or_load(id, || Ok(mask(7))).unwrap();
        assert!(cache.peek(id).is_some());
        assert!(cache.used_bytes() > 0);
        assert!(cache.invalidate(id));
        assert!(cache.peek(id).is_none());
        assert_eq!(cache.used_bytes(), 0);
        assert!(!cache.invalidate(id));
    }

    #[test]
    fn load_racing_an_invalidation_is_not_cached() {
        // Simulate a store write landing between a miss and the load
        // completing: the load closure itself invalidates the id. The stale
        // result must be returned to the caller but never installed.
        let cache = MaskCache::new(1024 * 1024);
        let id = MaskId::new(3);
        let stale = cache
            .get_or_load(id, || {
                cache.invalidate(id);
                Ok(mask(3))
            })
            .unwrap();
        assert_eq!(*stale, mask(3));
        assert!(cache.peek(id).is_none(), "stale mask must not be cached");
        // The next lookup reloads and caches the fresh value.
        let fresh = cache.get_or_load(id, || Ok(mask(4))).unwrap();
        assert_eq!(*fresh, mask(4));
        assert_eq!(*cache.peek(id).unwrap(), mask(4));
    }

    #[test]
    fn invalidating_other_masks_does_not_block_caching() {
        // Steady ingestion invalidates a stream of unrelated ids; a load in
        // flight for a different mask must still be cached.
        let cache = MaskCache::new(1024 * 1024);
        let id = MaskId::new(10);
        let loaded = cache
            .get_or_load(id, || {
                for other in 0..5u64 {
                    cache.invalidate(MaskId::new(other));
                }
                Ok(mask(10))
            })
            .unwrap();
        assert_eq!(*loaded, mask(10));
        assert!(
            cache.peek(id).is_some(),
            "unrelated invalidations must not prevent caching"
        );
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // Each 8x8 mask is 256 pixel bytes + 100 tile-summary bytes = 356;
        // a budget of 800 holds two entries.
        let cache = MaskCache::new(800);
        for i in 0..3u64 {
            cache
                .get_or_load(MaskId::new(i), || Ok(mask(i as u32)))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.used_bytes() <= 800);
        assert_eq!(cache.stats().evictions, 1);
        // Mask 0 was least recently used, so it is gone; 1 and 2 remain.
        assert!(cache.peek(MaskId::new(0)).is_none());
        assert!(cache.peek(MaskId::new(1)).is_some());
        assert!(cache.peek(MaskId::new(2)).is_some());
    }

    #[test]
    fn recency_is_updated_on_hit() {
        let cache = MaskCache::new(800);
        cache.get_or_load(MaskId::new(0), || Ok(mask(0))).unwrap();
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        // Touch 0 so it becomes most recent, then insert 2 -> 1 is evicted.
        cache.get_or_load(MaskId::new(0), || panic!("hit")).unwrap();
        cache.get_or_load(MaskId::new(2), || Ok(mask(2))).unwrap();
        assert!(cache.peek(MaskId::new(0)).is_some());
        assert!(cache.peek(MaskId::new(1)).is_none());
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = MaskCache::disabled();
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        assert!(cache.is_empty());
        // Second lookup is a miss again.
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn load_errors_propagate_and_are_not_cached() {
        let cache = MaskCache::new(1024);
        let err = cache.get_or_load(MaskId::new(1), || {
            Err(crate::error::StorageError::MaskNotFound(MaskId::new(1)))
        });
        assert!(err.is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_readers_share_a_single_load() {
        // Eight readers miss on the same id at once: exactly one runs the
        // load (one decode + decompress); the other seven wait on the
        // flight and share its result as hits.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let cache = Arc::new(MaskCache::new(1024 * 1024));
        let id = MaskId::new(42);
        let loads = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let loads = Arc::clone(&loads);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let got = cache
                        .get_or_load(id, || {
                            loads.fetch_add(1, Ordering::SeqCst);
                            // Slow load: the other readers must pile up
                            // behind the flight, not race past it.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(mask(42))
                        })
                        .unwrap();
                    assert_eq!(*got, mask(42));
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(
            loads.load(Ordering::SeqCst),
            1,
            "single-flight: one load per id"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn failed_flight_releases_waiters_to_retry() {
        // A leader whose load fails must not wedge the id: waiters retry,
        // one becomes the next leader, and its successful load is shared.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let cache = Arc::new(MaskCache::new(1024 * 1024));
        let id = MaskId::new(9);
        let attempts = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let attempts = Arc::clone(&attempts);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_load(id, || {
                        if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            Err(crate::error::StorageError::MaskNotFound(id))
                        } else {
                            Ok(mask(9))
                        }
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
        assert!(results.iter().filter(|r| r.is_ok()).count() >= 3);
        assert!(
            attempts.load(Ordering::SeqCst) <= 2,
            "after the failure, at most one retry load runs"
        );
        assert_eq!(*cache.peek(id).unwrap(), mask(9));
    }

    #[test]
    fn clear_keeps_statistics() {
        let cache = MaskCache::new(1024 * 1024);
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }
}
