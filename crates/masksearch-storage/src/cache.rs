//! A byte-budgeted LRU cache of decoded masks.
//!
//! The paper assumes "the database of masks is too large to fit in memory"
//! (§3); the cache makes that assumption explicit and tunable. The
//! verification stage of the executor reads masks through this cache so that
//! multi-query workloads (§4.5) benefit from recently verified masks without
//! ever exceeding a configured memory budget.

use crate::error::StorageResult;
use masksearch_core::{Mask, MaskId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Statistics describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups satisfied by the cache.
    pub hits: u64,
    /// Number of lookups that had to load the mask.
    pub misses: u64,
    /// Number of masks evicted to stay under the byte budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    mask: Arc<Mask>,
    bytes: u64,
    last_used: u64,
}

struct Inner {
    entries: HashMap<MaskId, Entry>,
    clock: u64,
    used_bytes: u64,
    stats: CacheStats,
}

/// A least-recently-used mask cache with a byte budget.
///
/// A budget of zero disables caching entirely (every lookup is a miss), which
/// is how experiments reproduce the paper's cold-cache setting ("we clear the
/// OS page cache before each query execution", §4.2).
pub struct MaskCache {
    capacity_bytes: u64,
    inner: Mutex<Inner>,
}

impl MaskCache {
    /// Creates a cache bounded by `capacity_bytes` of decoded mask data.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                used_bytes: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// A cache that never stores anything (cold-cache behaviour).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Configured byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently held by the cache.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }

    /// Number of cached masks.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Returns `true` if the cache holds no masks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Removes every cached mask (statistics are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.used_bytes = 0;
    }

    /// Looks up a mask, or loads it with `load` on a miss and caches the
    /// result (evicting least-recently-used entries if needed).
    pub fn get_or_load(
        &self,
        mask_id: MaskId,
        load: impl FnOnce() -> StorageResult<Mask>,
    ) -> StorageResult<Arc<Mask>> {
        {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.entries.get_mut(&mask_id) {
                entry.last_used = clock;
                let mask = Arc::clone(&entry.mask);
                inner.stats.hits += 1;
                return Ok(mask);
            }
            inner.stats.misses += 1;
        }
        // Load outside the lock so concurrent misses for different masks do
        // not serialise on the cache mutex.
        let mask = Arc::new(load()?);
        let bytes = mask.byte_size();
        let mut inner = self.inner.lock();
        if self.capacity_bytes == 0 || bytes > self.capacity_bytes {
            // Too large (or caching disabled): return without caching.
            return Ok(mask);
        }
        inner.clock += 1;
        let clock = inner.clock;
        // Evict until the new entry fits.
        while inner.used_bytes + bytes > self.capacity_bytes && !inner.entries.is_empty() {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id)
                .expect("non-empty cache has a minimum");
            if let Some(evicted) = inner.entries.remove(&victim) {
                inner.used_bytes -= evicted.bytes;
                inner.stats.evictions += 1;
            }
        }
        inner.used_bytes += bytes;
        inner.entries.insert(
            mask_id,
            Entry {
                mask: Arc::clone(&mask),
                bytes,
                last_used: clock,
            },
        );
        Ok(mask)
    }

    /// Returns the cached mask without loading, if present.
    pub fn peek(&self, mask_id: MaskId) -> Option<Arc<Mask>> {
        let inner = self.inner.lock();
        inner.entries.get(&mask_id).map(|e| Arc::clone(&e.mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(seed: u32) -> Mask {
        Mask::from_fn(8, 8, |x, y| ((x + y + seed) % 5) as f32 / 5.0)
    }

    #[test]
    fn hit_after_load() {
        let cache = MaskCache::new(1024 * 1024);
        let id = MaskId::new(1);
        let loaded = cache.get_or_load(id, || Ok(mask(1))).unwrap();
        assert_eq!(*loaded, mask(1));
        let again = cache
            .get_or_load(id, || panic!("should be a cache hit"))
            .unwrap();
        assert_eq!(*again, mask(1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // Each 8x8 mask is 256 bytes; budget of 600 holds two.
        let cache = MaskCache::new(600);
        for i in 0..3u64 {
            cache
                .get_or_load(MaskId::new(i), || Ok(mask(i as u32)))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.used_bytes() <= 600);
        assert_eq!(cache.stats().evictions, 1);
        // Mask 0 was least recently used, so it is gone; 1 and 2 remain.
        assert!(cache.peek(MaskId::new(0)).is_none());
        assert!(cache.peek(MaskId::new(1)).is_some());
        assert!(cache.peek(MaskId::new(2)).is_some());
    }

    #[test]
    fn recency_is_updated_on_hit() {
        let cache = MaskCache::new(600);
        cache.get_or_load(MaskId::new(0), || Ok(mask(0))).unwrap();
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        // Touch 0 so it becomes most recent, then insert 2 -> 1 is evicted.
        cache.get_or_load(MaskId::new(0), || panic!("hit")).unwrap();
        cache.get_or_load(MaskId::new(2), || Ok(mask(2))).unwrap();
        assert!(cache.peek(MaskId::new(0)).is_some());
        assert!(cache.peek(MaskId::new(1)).is_none());
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = MaskCache::disabled();
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        assert!(cache.is_empty());
        // Second lookup is a miss again.
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn load_errors_propagate_and_are_not_cached() {
        let cache = MaskCache::new(1024);
        let err = cache.get_or_load(MaskId::new(1), || {
            Err(crate::error::StorageError::MaskNotFound(MaskId::new(1)))
        });
        assert!(err.is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_keeps_statistics() {
        let cache = MaskCache::new(1024 * 1024);
        cache.get_or_load(MaskId::new(1), || Ok(mask(1))).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }
}
