//! Object-store-like mask stores: one blob per mask.
//!
//! This is the layout MaskSearch itself uses (and the layout the NumPy
//! baseline of the paper uses: "masks are stored as NumPy arrays on disk").
//! Two implementations are provided:
//!
//! * [`FileMaskStore`] — one file per mask in a directory, read through the
//!   disk cost model.
//! * [`MemoryMaskStore`] — an in-memory store with the same accounting,
//!   convenient for tests and small experiments where writing thousands of
//!   files would slow iteration without changing any measured quantity
//!   (the cost model charges the same virtual time either way).

use crate::disk::{DiskProfile, IoStats};
use crate::error::{StorageError, StorageResult};
use crate::format::{self, MaskEncoding};
use masksearch_core::{Mask, MaskId, MaskRecord, TiledMask};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Point-in-time ingestion counters of a mutable mask store.
///
/// Stores that support durable writes (see `masksearch-db`) expose these
/// through [`MaskStore::ingest_stats`] so the serving layer can report
/// write-path health (masks inserted/deleted, WAL traffic, checkpoints)
/// alongside its query metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestSnapshot {
    /// Masks inserted since the store was opened.
    pub masks_inserted: u64,
    /// Masks deleted since the store was opened.
    pub masks_deleted: u64,
    /// Committed write transactions.
    pub commits: u64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Checkpoints completed (WAL truncations).
    pub checkpoints: u64,
}

/// Interface shared by every mask store.
///
/// A store maps [`MaskId`]s to mask blobs and charges every read/write to a
/// shared [`IoStats`] according to its [`DiskProfile`]. Query executors only
/// depend on this trait, so the same executor runs unmodified against the
/// file-backed store used in experiments and the in-memory store used in
/// tests.
pub trait MaskStore: Send + Sync {
    /// Inserts (or overwrites) a mask.
    fn put(&self, mask_id: MaskId, mask: &Mask) -> StorageResult<()>;

    /// Removes a mask from the store.
    ///
    /// The default implementation reports the operation as unsupported, so
    /// read-mostly stores need not opt in to mutability.
    fn delete(&self, mask_id: MaskId) -> StorageResult<()> {
        let _ = mask_id;
        Err(StorageError::unsupported("delete"))
    }

    /// Inserts a batch of masks together with their catalog records.
    ///
    /// Durable stores override this to commit the whole batch atomically
    /// (and to persist the records for crash recovery); the default simply
    /// loops over [`MaskStore::put`] and ignores the metadata, which is what
    /// catalog-less stores want.
    fn insert_batch(&self, batch: &[(MaskRecord, Mask)]) -> StorageResult<()> {
        for (record, mask) in batch {
            self.put(record.mask_id, mask)?;
        }
        Ok(())
    }

    /// Removes a batch of masks. Durable stores override this to commit the
    /// batch atomically; the default loops over [`MaskStore::delete`].
    fn delete_batch(&self, mask_ids: &[MaskId]) -> StorageResult<()> {
        for &id in mask_ids {
            self.delete(id)?;
        }
        Ok(())
    }

    /// Applies deletions and insertions as one write. Durable stores
    /// override this to publish both in a single commit frame so a crash can
    /// never expose half of a multi-statement transaction; the default runs
    /// the deletes then the inserts with no atomicity guarantee.
    fn apply_batch(&self, inserts: &[(MaskRecord, Mask)], deletes: &[MaskId]) -> StorageResult<()> {
        self.delete_batch(deletes)?;
        self.insert_batch(inserts)
    }

    /// The secondary metadata index registry this store persists across
    /// restarts, when it does (the durable mask database snapshots one
    /// `masks.idx.<col>` file per definition alongside its CHI and tile
    /// files). Sessions built over such a store share the registry so
    /// `CREATE INDEX` survives a restart; the default (`None`) makes
    /// sessions keep a private, process-lifetime registry.
    fn meta_indexes(&self) -> Option<Arc<crate::meta_index::MetaIndexRegistry>> {
        None
    }

    /// Re-persists the secondary index definitions after DDL (`CREATE INDEX`
    /// / `DROP INDEX`), for stores that keep them on disk. The default — any
    /// store whose registry lives only in memory — does nothing.
    fn persist_meta_indexes(&self) -> StorageResult<()> {
        Ok(())
    }

    /// Ingestion counters for stores with a durable write path; `None` for
    /// stores that do not track them.
    fn ingest_stats(&self) -> Option<IngestSnapshot> {
        None
    }

    /// The per-query-shape statistics registry this store persists across
    /// restarts, when it does (the durable mask database checkpoints one
    /// alongside its CHI and tile files). Sessions built over such a store
    /// record into the shared registry so observed selectivities survive a
    /// restart; the default (`None`) makes sessions keep a private,
    /// process-lifetime registry.
    fn shape_stats(&self) -> Option<Arc<masksearch_obs::ShapeStatsRegistry>> {
        None
    }

    /// Loads a mask in full, charging the cost model.
    fn get(&self, mask_id: MaskId) -> StorageResult<Mask>;

    /// Loads a mask together with its tile-summary grid, when the store
    /// maintains one (see `masksearch-core`'s tiled verification kernel).
    ///
    /// The default wraps [`MaskStore::get`] without a pre-built grid — the
    /// returned [`TiledMask`] builds its summaries lazily on first kernel
    /// use. Stores that persist tile grids (the durable mask database)
    /// override this to seed the grid, and must guarantee the grid they
    /// attach was built from exactly the pixels they return.
    fn get_tiled(&self, mask_id: MaskId) -> StorageResult<TiledMask> {
        Ok(TiledMask::from_mask(self.get(mask_id)?))
    }

    /// Returns `true` if the store holds a mask with this id.
    fn contains(&self, mask_id: MaskId) -> bool;

    /// All mask ids in the store, in ascending order.
    fn ids(&self) -> Vec<MaskId>;

    /// Number of masks in the store.
    fn len(&self) -> usize;

    /// Returns `true` if the store holds no masks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk (encoded) size of one mask in bytes.
    fn stored_bytes(&self, mask_id: MaskId) -> StorageResult<u64>;

    /// Total on-disk size of all masks in bytes.
    fn total_bytes(&self) -> u64;

    /// Shared I/O statistics for this store.
    fn io_stats(&self) -> Arc<IoStats>;

    /// The disk cost model this store charges against.
    fn disk_profile(&self) -> DiskProfile;
}

/// A mask store keeping one encoded file per mask in a directory.
///
/// File names are `mask_<id>.msk`. The directory is created on demand.
pub struct FileMaskStore {
    dir: PathBuf,
    encoding: MaskEncoding,
    profile: DiskProfile,
    stats: Arc<IoStats>,
    /// Index of stored masks and their encoded sizes. Maintained in memory so
    /// `ids`/`len`/`total_bytes` do not touch the file system.
    index: RwLock<BTreeMap<MaskId, u64>>,
}

impl FileMaskStore {
    /// Creates a store rooted at `dir` (created if missing), writing masks
    /// with `encoding` and charging reads/writes against `profile`.
    pub fn create(
        dir: impl Into<PathBuf>,
        encoding: MaskEncoding,
        profile: DiskProfile,
    ) -> StorageResult<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| {
            StorageError::io(format!("creating store directory {}", dir.display()), e)
        })?;
        Ok(Self {
            dir,
            encoding,
            profile,
            stats: IoStats::new_shared(),
            index: RwLock::new(BTreeMap::new()),
        })
    }

    /// Opens an existing store directory, scanning it for mask files.
    pub fn open(
        dir: impl Into<PathBuf>,
        encoding: MaskEncoding,
        profile: DiskProfile,
    ) -> StorageResult<Self> {
        let dir = dir.into();
        if !dir.is_dir() {
            return Err(StorageError::InvalidStorePath(dir));
        }
        let mut index = BTreeMap::new();
        let entries = fs::read_dir(&dir).map_err(|e| {
            StorageError::io(format!("listing store directory {}", dir.display()), e)
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io("reading store directory entry", e))?;
            let path = entry.path();
            if let Some(mask_id) = Self::parse_file_name(&path) {
                let len = entry
                    .metadata()
                    .map_err(|e| StorageError::io("reading mask file metadata", e))?
                    .len();
                index.insert(mask_id, len);
            }
        }
        Ok(Self {
            dir,
            encoding,
            profile,
            stats: IoStats::new_shared(),
            index: RwLock::new(index),
        })
    }

    fn parse_file_name(path: &Path) -> Option<MaskId> {
        let name = path.file_name()?.to_str()?;
        let id = name.strip_prefix("mask_")?.strip_suffix(".msk")?;
        id.parse::<u64>().ok().map(MaskId::new)
    }

    fn mask_path(&self, mask_id: MaskId) -> PathBuf {
        self.dir.join(format!("mask_{}.msk", mask_id.raw()))
    }

    /// Directory the store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Encoding used for newly written masks.
    pub fn encoding(&self) -> MaskEncoding {
        self.encoding
    }
}

impl MaskStore for FileMaskStore {
    fn put(&self, mask_id: MaskId, mask: &Mask) -> StorageResult<()> {
        let bytes = format::encode_mask(mask_id, mask, self.encoding);
        let path = self.mask_path(mask_id);
        // Write to a temporary file and rename it into place: a crash
        // mid-write leaves either the old mask or no file, never a truncated
        // blob under the final name (`fs::write` alone is torn-write-prone).
        let tmp = path.with_extension("msk.tmp");
        fs::write(&tmp, &bytes)
            .map_err(|e| StorageError::io(format!("writing mask file {}", tmp.display()), e))?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StorageError::io(format!("renaming mask file into {}", path.display()), e)
        })?;
        self.stats.record_write(
            bytes.len() as u64,
            self.profile.write_cost(bytes.len() as u64, 1),
        );
        self.index.write().insert(mask_id, bytes.len() as u64);
        Ok(())
    }

    fn delete(&self, mask_id: MaskId) -> StorageResult<()> {
        if !self.index.read().contains_key(&mask_id) {
            return Err(StorageError::MaskNotFound(mask_id));
        }
        // Unlink before touching the index: a failed unlink must leave the
        // in-memory view matching the directory, or the "deleted" mask would
        // be invisible here yet resurrected by the next reopen.
        let path = self.mask_path(mask_id);
        fs::remove_file(&path)
            .map_err(|e| StorageError::io(format!("removing mask file {}", path.display()), e))?;
        self.index.write().remove(&mask_id);
        Ok(())
    }

    fn get(&self, mask_id: MaskId) -> StorageResult<Mask> {
        if !self.contains(mask_id) {
            return Err(StorageError::MaskNotFound(mask_id));
        }
        let path = self.mask_path(mask_id);
        let bytes = fs::read(&path)
            .map_err(|e| StorageError::io(format!("reading mask file {}", path.display()), e))?;
        self.stats.record_read(
            bytes.len() as u64,
            self.profile.read_cost(bytes.len() as u64, 1),
        );
        self.stats.record_mask_loaded();
        let (_, mask) = format::decode_mask(&bytes)?;
        Ok(mask)
    }

    fn contains(&self, mask_id: MaskId) -> bool {
        self.index.read().contains_key(&mask_id)
    }

    fn ids(&self) -> Vec<MaskId> {
        self.index.read().keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.index.read().len()
    }

    fn stored_bytes(&self, mask_id: MaskId) -> StorageResult<u64> {
        self.index
            .read()
            .get(&mask_id)
            .copied()
            .ok_or(StorageError::MaskNotFound(mask_id))
    }

    fn total_bytes(&self) -> u64 {
        self.index.read().values().sum()
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn disk_profile(&self) -> DiskProfile {
        self.profile
    }
}

/// An in-memory mask store with the same cost accounting as
/// [`FileMaskStore`].
///
/// Masks are kept in their *encoded* form so the bytes charged to the cost
/// model (and hence every reported statistic) are identical to the
/// file-backed store's.
pub struct MemoryMaskStore {
    encoding: MaskEncoding,
    profile: DiskProfile,
    emulate_latency: bool,
    stats: Arc<IoStats>,
    blobs: RwLock<BTreeMap<MaskId, Arc<Vec<u8>>>>,
}

impl MemoryMaskStore {
    /// Creates an empty in-memory store.
    pub fn new(encoding: MaskEncoding, profile: DiskProfile) -> Self {
        Self {
            encoding,
            profile,
            emulate_latency: false,
            stats: IoStats::new_shared(),
            blobs: RwLock::new(BTreeMap::new()),
        }
    }

    /// Makes every read actually *wait out* the profile's modeled cost
    /// (`thread::sleep`) instead of only charging virtual time. This turns
    /// the store into a stand-in for slow media on fast benchmark hosts:
    /// concurrency benefits — overlapping reads across threads, shards or
    /// pipelined requests — become measurable in wall-clock terms even when
    /// the host has fewer cores than the modeled deployment has spindles.
    pub fn emulate_latency(mut self, emulate: bool) -> Self {
        self.emulate_latency = emulate;
        self
    }

    /// Creates an empty store with raw encoding and no I/O cost — the usual
    /// configuration for unit tests.
    pub fn for_tests() -> Self {
        Self::new(MaskEncoding::Raw, DiskProfile::unthrottled())
    }
}

impl MaskStore for MemoryMaskStore {
    fn put(&self, mask_id: MaskId, mask: &Mask) -> StorageResult<()> {
        let bytes = format::encode_mask(mask_id, mask, self.encoding);
        self.stats.record_write(
            bytes.len() as u64,
            self.profile.write_cost(bytes.len() as u64, 1),
        );
        self.blobs.write().insert(mask_id, Arc::new(bytes));
        Ok(())
    }

    fn delete(&self, mask_id: MaskId) -> StorageResult<()> {
        match self.blobs.write().remove(&mask_id) {
            Some(_) => Ok(()),
            None => Err(StorageError::MaskNotFound(mask_id)),
        }
    }

    fn get(&self, mask_id: MaskId) -> StorageResult<Mask> {
        let blob = {
            let blobs = self.blobs.read();
            blobs
                .get(&mask_id)
                .cloned()
                .ok_or(StorageError::MaskNotFound(mask_id))?
        };
        let cost = self.profile.read_cost(blob.len() as u64, 1);
        if self.emulate_latency {
            std::thread::sleep(cost);
        }
        self.stats.record_read(blob.len() as u64, cost);
        self.stats.record_mask_loaded();
        let (_, mask) = format::decode_mask(&blob)?;
        Ok(mask)
    }

    fn contains(&self, mask_id: MaskId) -> bool {
        self.blobs.read().contains_key(&mask_id)
    }

    fn ids(&self) -> Vec<MaskId> {
        self.blobs.read().keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.blobs.read().len()
    }

    fn stored_bytes(&self, mask_id: MaskId) -> StorageResult<u64> {
        self.blobs
            .read()
            .get(&mask_id)
            .map(|b| b.len() as u64)
            .ok_or(StorageError::MaskNotFound(mask_id))
    }

    fn total_bytes(&self) -> u64 {
        self.blobs.read().values().map(|b| b.len() as u64).sum()
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn disk_profile(&self) -> DiskProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_mask(seed: u32) -> Mask {
        Mask::from_fn(16, 16, |x, y| ((x + y + seed) % 13) as f32 / 13.0)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "masksearch-store-test-{}-{}",
            name,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn exercise_store(store: &dyn MaskStore) {
        assert!(store.is_empty());
        for i in 0..5u64 {
            store.put(MaskId::new(i), &sample_mask(i as u32)).unwrap();
        }
        assert_eq!(store.len(), 5);
        assert!(store.contains(MaskId::new(3)));
        assert!(!store.contains(MaskId::new(99)));
        assert_eq!(store.ids(), (0..5).map(MaskId::new).collect::<Vec<_>>());

        let loaded = store.get(MaskId::new(2)).unwrap();
        assert_eq!(loaded, sample_mask(2));
        assert!(matches!(
            store.get(MaskId::new(42)),
            Err(StorageError::MaskNotFound(_))
        ));

        let per_mask = store.stored_bytes(MaskId::new(0)).unwrap();
        assert!(per_mask > 0);
        assert_eq!(store.total_bytes(), per_mask * 5);

        let stats = store.io_stats();
        assert_eq!(stats.masks_loaded(), 1);
        assert_eq!(stats.write_ops(), 5);
        assert!(stats.bytes_read() >= per_mask);
    }

    #[test]
    fn memory_store_basic_operations() {
        let store = MemoryMaskStore::for_tests();
        exercise_store(&store);
    }

    #[test]
    fn file_store_basic_operations_and_reopen() {
        let dir = temp_dir("basic");
        let store =
            FileMaskStore::create(&dir, MaskEncoding::Raw, DiskProfile::unthrottled()).unwrap();
        exercise_store(&store);

        // Re-open and confirm the index is rebuilt from the directory.
        let reopened =
            FileMaskStore::open(&dir, MaskEncoding::Raw, DiskProfile::unthrottled()).unwrap();
        assert_eq!(reopened.len(), 5);
        assert_eq!(reopened.get(MaskId::new(4)).unwrap(), sample_mask(4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_directory_fails() {
        let missing = temp_dir("missing-never-created");
        assert!(matches!(
            FileMaskStore::open(&missing, MaskEncoding::Raw, DiskProfile::unthrottled()),
            Err(StorageError::InvalidStorePath(_))
        ));
    }

    #[test]
    fn compressed_file_store_round_trips() {
        let dir = temp_dir("compressed");
        let store =
            FileMaskStore::create(&dir, MaskEncoding::Compressed, DiskProfile::unthrottled())
                .unwrap();
        // A smooth (piecewise-constant) mask, as saliency maps typically are.
        let mask = Mask::from_fn(16, 16, |x, _| if x < 8 { 0.1 } else { 0.8 });
        store.put(MaskId::new(1), &mask).unwrap();
        assert_eq!(store.get(MaskId::new(1)).unwrap(), mask);
        // Compressed blob is smaller than the raw payload for this smooth mask.
        assert!(store.stored_bytes(MaskId::new(1)).unwrap() < 16 * 16 * 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reads_are_charged_to_the_cost_model() {
        let profile = DiskProfile {
            read_bandwidth_bytes_per_sec: 1024, // absurdly slow: 1 KiB/s
            write_bandwidth_bytes_per_sec: u64::MAX,
            per_op_latency: Duration::ZERO,
        };
        let store = MemoryMaskStore::new(MaskEncoding::Raw, profile);
        let mask = sample_mask(0);
        store.put(MaskId::new(1), &mask).unwrap();
        store.get(MaskId::new(1)).unwrap();
        // 16*16*4 bytes + 32-byte header at 1 KiB/s -> about one second.
        let io = store.io_stats().virtual_read_time();
        assert!(io > Duration::from_millis(900), "io time was {io:?}");
    }

    #[test]
    fn delete_removes_masks_from_both_stores() {
        let dir = temp_dir("delete");
        let file_store =
            FileMaskStore::create(&dir, MaskEncoding::Raw, DiskProfile::unthrottled()).unwrap();
        let mem_store = MemoryMaskStore::for_tests();
        for store in [&file_store as &dyn MaskStore, &mem_store as &dyn MaskStore] {
            store.put(MaskId::new(1), &sample_mask(1)).unwrap();
            store.put(MaskId::new(2), &sample_mask(2)).unwrap();
            store.delete(MaskId::new(1)).unwrap();
            assert!(!store.contains(MaskId::new(1)));
            assert_eq!(store.ids(), vec![MaskId::new(2)]);
            assert!(matches!(
                store.delete(MaskId::new(1)),
                Err(StorageError::MaskNotFound(_))
            ));
        }
        // The file is really gone (a reopen must not resurrect it).
        let reopened =
            FileMaskStore::open(&dir, MaskEncoding::Raw, DiskProfile::unthrottled()).unwrap();
        assert_eq!(reopened.ids(), vec![MaskId::new(2)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_put_leaves_no_temp_files() {
        let dir = temp_dir("tmpfiles");
        let store =
            FileMaskStore::create(&dir, MaskEncoding::Raw, DiskProfile::unthrottled()).unwrap();
        store.put(MaskId::new(3), &sample_mask(3)).unwrap();
        store.put(MaskId::new(3), &sample_mask(4)).unwrap(); // overwrite
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["mask_3.msk".to_string()]);
        assert_eq!(store.get(MaskId::new(3)).unwrap(), sample_mask(4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trait_defaults_loop_and_report_unsupported() {
        /// A minimal store that only implements the required methods.
        struct PutOnly(MemoryMaskStore);
        impl MaskStore for PutOnly {
            fn put(&self, id: MaskId, mask: &Mask) -> StorageResult<()> {
                self.0.put(id, mask)
            }
            fn get(&self, id: MaskId) -> StorageResult<Mask> {
                self.0.get(id)
            }
            fn contains(&self, id: MaskId) -> bool {
                self.0.contains(id)
            }
            fn ids(&self) -> Vec<MaskId> {
                self.0.ids()
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn stored_bytes(&self, id: MaskId) -> StorageResult<u64> {
                self.0.stored_bytes(id)
            }
            fn total_bytes(&self) -> u64 {
                self.0.total_bytes()
            }
            fn io_stats(&self) -> Arc<IoStats> {
                self.0.io_stats()
            }
            fn disk_profile(&self) -> DiskProfile {
                self.0.disk_profile()
            }
        }
        let store = PutOnly(MemoryMaskStore::for_tests());
        assert!(matches!(
            store.delete(MaskId::new(1)),
            Err(StorageError::Unsupported {
                operation: "delete"
            })
        ));
        assert!(store.ingest_stats().is_none());
        // The default insert_batch loops over `put`.
        let batch = vec![
            (
                masksearch_core::MaskRecord::builder(MaskId::new(1))
                    .shape(16, 16)
                    .build(),
                sample_mask(1),
            ),
            (
                masksearch_core::MaskRecord::builder(MaskId::new(2))
                    .shape(16, 16)
                    .build(),
                sample_mask(2),
            ),
        ];
        store.insert_batch(&batch).unwrap();
        assert_eq!(store.len(), 2);
        // The default delete_batch surfaces the unsupported delete.
        assert!(store.delete_batch(&[MaskId::new(1)]).is_err());
        // apply_batch with no deletes degrades to insert_batch; with deletes
        // it surfaces the unsupported delete before inserting anything.
        assert!(store.meta_indexes().is_none());
        assert!(store.apply_batch(&[], &[MaskId::new(1)]).is_err());
        let more = vec![(
            masksearch_core::MaskRecord::builder(MaskId::new(3))
                .shape(16, 16)
                .build(),
            sample_mask(3),
        )];
        store.apply_batch(&more, &[]).unwrap();
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn corrupt_file_is_surfaced_as_error() {
        let dir = temp_dir("corrupt");
        let store =
            FileMaskStore::create(&dir, MaskEncoding::Raw, DiskProfile::unthrottled()).unwrap();
        store.put(MaskId::new(1), &sample_mask(1)).unwrap();
        // Truncate the file behind the store's back.
        let path = dir.join("mask_1.msk");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.get(MaskId::new(1)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
