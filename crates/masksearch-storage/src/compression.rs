//! Lossless compression codec for mask pixel payloads.
//!
//! The paper (§2.2) notes that storing compressed masks "reduces data loaded
//! from disk but moves the bottleneck to decompression" — so a compressed
//! representation is part of the evaluated design space even though
//! MaskSearch itself sidesteps the issue by not loading most masks at all.
//!
//! The codec here is a simple, dependency-free, *lossless* scheme tuned for
//! the smooth floating-point masks this system stores:
//!
//! 1. XOR each pixel's IEEE-754 bit pattern with the previous pixel's
//!    (prediction by the left neighbour). Smooth masks produce XOR words
//!    whose high-order bytes are mostly zero.
//! 2. Run-length encode the resulting byte stream: literal runs are emitted
//!    verbatim, and runs of a repeated byte (most commonly `0x00`) are
//!    collapsed to a three-byte token.
//!
//! Compression ratios of 2–4× are typical for synthetic saliency maps, which
//! is in the same ballpark as the general-purpose codecs the paper used, and
//! the decode cost is deliberately non-trivial so the "decompression becomes
//! the bottleneck" effect is reproducible.

/// Compresses a slice of pixel values losslessly.
///
/// The output always round-trips exactly through [`decompress`], including
/// NaN payloads and signed zeros, because the transform operates on raw bit
/// patterns.
pub fn compress(pixels: &[f32]) -> Vec<u8> {
    // Stage 1: XOR-delta of bit patterns, serialised little-endian.
    let mut bytes = Vec::with_capacity(pixels.len() * 4);
    let mut prev = 0u32;
    for &p in pixels {
        let bits = p.to_bits();
        let delta = bits ^ prev;
        bytes.extend_from_slice(&delta.to_le_bytes());
        prev = bits;
    }
    // Stage 2: byte-level RLE.
    rle_encode(&bytes)
}

/// Decompresses a payload produced by [`compress`], which must decode to
/// exactly `expected_pixels` values.
///
/// The expected length is part of the contract, not a convenience: RLE run
/// tokens are attacker-controlled wire/disk data, and three crafted bytes
/// (`0x00, 0xff, 0xff`) expand to 64 KiB — so an unbounded decoder lets a
/// small corrupt blob drive allocation amplification. Decoding bails out the
/// moment the output would exceed `expected_pixels * 4` bytes, and a payload
/// that decodes *short* (truncated stream) or carries trailing tokens is
/// rejected too.
///
/// Returns `None` if the payload is structurally invalid (truncated token),
/// over- or under-runs the expected length, or leaves trailing garbage.
pub fn decompress(payload: &[u8], expected_pixels: usize) -> Option<Vec<f32>> {
    let max_bytes = expected_pixels.checked_mul(4)?;
    let bytes = rle_decode(payload, max_bytes)?;
    if bytes.len() != max_bytes {
        return None;
    }
    let mut out = Vec::with_capacity(expected_pixels);
    let mut prev = 0u32;
    for chunk in bytes.chunks_exact(4) {
        let delta = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let bits = delta ^ prev;
        out.push(f32::from_bits(bits));
        prev = bits;
    }
    Some(out)
}

/// Token layout of the RLE stream:
/// * `0x00, n (u16 le), b` — a run of `n` copies of byte `b` (n >= 4).
/// * `0x01, n (u16 le), <n bytes>` — a literal run of `n` bytes.
const TOKEN_RUN: u8 = 0x00;
const TOKEN_LITERAL: u8 = 0x01;
const MAX_RUN: usize = u16::MAX as usize;

fn rle_encode(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() / 2 + 16);
    let mut i = 0;
    let mut literal_start = 0;
    while i < bytes.len() {
        // Measure the run of equal bytes starting at i.
        let b = bytes[i];
        let mut run = 1;
        while i + run < bytes.len() && bytes[i + run] == b && run < MAX_RUN {
            run += 1;
        }
        if run >= 4 {
            // Flush pending literals first.
            flush_literal(&mut out, &bytes[literal_start..i]);
            out.push(TOKEN_RUN);
            out.extend_from_slice(&(run as u16).to_le_bytes());
            out.push(b);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flush_literal(&mut out, &bytes[literal_start..]);
    out
}

fn flush_literal(out: &mut Vec<u8>, mut literal: &[u8]) {
    while !literal.is_empty() {
        let n = literal.len().min(MAX_RUN);
        out.push(TOKEN_LITERAL);
        out.extend_from_slice(&(n as u16).to_le_bytes());
        out.extend_from_slice(&literal[..n]);
        literal = &literal[n..];
    }
}

/// Decodes the RLE stream, refusing to ever grow the output past
/// `max_bytes` — the caller-declared decoded size. The cap is checked
/// *before* each token is materialised, so a hostile payload cannot force
/// an allocation larger than the caller expects.
fn rle_decode(payload: &[u8], max_bytes: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(payload.len().min(max_bytes));
    let mut i = 0;
    while i < payload.len() {
        let token = payload[i];
        if i + 3 > payload.len() {
            return None;
        }
        let n = u16::from_le_bytes([payload[i + 1], payload[i + 2]]) as usize;
        i += 3;
        if n > max_bytes - out.len() {
            return None; // would overrun the declared decoded size
        }
        match token {
            TOKEN_RUN => {
                if i >= payload.len() {
                    return None;
                }
                let b = payload[i];
                i += 1;
                out.resize(out.len() + n, b);
            }
            TOKEN_LITERAL => {
                if i + n > payload.len() {
                    return None;
                }
                out.extend_from_slice(&payload[i..i + n]);
                i += n;
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Compression ratio achieved for a pixel buffer: `uncompressed / compressed`.
pub fn compression_ratio(pixels: &[f32]) -> f64 {
    if pixels.is_empty() {
        return 1.0;
    }
    let compressed = compress(pixels).len();
    (pixels.len() * 4) as f64 / compressed.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_smooth_mask() {
        // A smooth gradient: typical saliency-map structure.
        let pixels: Vec<f32> = (0..4096).map(|i| (i as f32 / 4096.0) * 0.9).collect();
        let payload = compress(&pixels);
        let decoded = decompress(&payload, pixels.len()).unwrap();
        assert_eq!(decoded, pixels);
    }

    #[test]
    fn round_trip_constant_mask_compresses_well() {
        let pixels = vec![0.25f32; 10_000];
        let payload = compress(&pixels);
        assert!(payload.len() < pixels.len()); // much smaller than 40 KB
        assert_eq!(decompress(&payload, pixels.len()).unwrap(), pixels);
    }

    #[test]
    fn round_trip_random_mask_is_lossless_even_if_incompressible() {
        // Deterministic pseudo-random values; incompressible but must still
        // round trip exactly.
        let mut state = 0x12345678u32;
        let pixels: Vec<f32> = (0..1000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 24) as f32
            })
            .collect();
        let payload = compress(&pixels);
        assert_eq!(decompress(&payload, pixels.len()).unwrap(), pixels);
    }

    #[test]
    fn round_trip_empty_and_single() {
        assert_eq!(decompress(&compress(&[]), 0).unwrap(), Vec::<f32>::new());
        assert_eq!(decompress(&compress(&[0.5]), 1).unwrap(), vec![0.5]);
    }

    #[test]
    fn round_trip_special_bit_patterns() {
        let pixels = vec![0.0, -0.0, f32::MIN_POSITIVE, 0.999_999_94, f32::NAN];
        let decoded = decompress(&compress(&pixels), pixels.len()).unwrap();
        assert_eq!(decoded.len(), pixels.len());
        for (a, b) in decoded.iter().zip(&pixels) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corrupt_payloads_are_rejected_not_panicking() {
        assert!(decompress(&[TOKEN_RUN], 1024).is_none());
        assert!(decompress(&[TOKEN_LITERAL, 10, 0, 1, 2], 1024).is_none());
        assert!(decompress(&[0x77, 1, 0, 0], 1024).is_none());
        // Run that produces a byte count not matching the declared pixels.
        let bad = vec![TOKEN_RUN, 5, 0, 0xab];
        assert!(decompress(&bad, 1024).is_none());
    }

    #[test]
    fn declared_length_caps_allocation_amplification() {
        // Three run tokens of 64 KiB each: 12 bytes of payload claiming
        // ~192 KiB of output. With a 16-pixel (64-byte) expectation the
        // decoder must refuse at the first token, not allocate.
        let mut hostile = Vec::new();
        for _ in 0..3 {
            hostile.extend_from_slice(&[TOKEN_RUN, 0xff, 0xff, 0x00]);
        }
        assert!(decompress(&hostile, 16).is_none());
        // The same stream is fine when the caller really expects that much.
        let expected = (3 * 0xffff) / 4; // not a multiple of 4 bytes -> short
        assert!(decompress(&hostile, expected).is_none());
    }

    #[test]
    fn wrong_declared_length_is_rejected_both_ways() {
        let pixels = vec![0.5f32; 64];
        let payload = compress(&pixels);
        assert!(decompress(&payload, 64).is_some());
        // Decodes short of the declared length (truncated stream).
        assert!(decompress(&payload, 65).is_none());
        // Decodes past the declared length (trailing garbage).
        assert!(decompress(&payload, 63).is_none());
        let mut trailing = payload.clone();
        trailing.extend_from_slice(&[TOKEN_LITERAL, 4, 0, 1, 2, 3, 4]);
        assert!(decompress(&trailing, 64).is_none());
        assert!(decompress(&trailing, 65).is_some()); // exactly consumed
    }

    #[test]
    fn truncated_streams_never_decode() {
        let pixels: Vec<f32> = (0..256).map(|i| (i as f32) / 300.0).collect();
        let payload = compress(&pixels);
        for cut in 1..payload.len() {
            assert!(
                decompress(&payload[..cut], pixels.len()).is_none(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn compression_ratio_reflects_smoothness() {
        let smooth = vec![0.125f32; 4096];
        let mut state = 1u32;
        let noisy: Vec<f32> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(48271);
                (state >> 8) as f32 / (1u32 << 24) as f32
            })
            .collect();
        assert!(compression_ratio(&smooth) > compression_ratio(&noisy));
        assert!(compression_ratio(&smooth) > 10.0);
    }
}
