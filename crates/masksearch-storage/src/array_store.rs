//! A TileDB-like dense-array layout: all masks of a dataset in one file.
//!
//! The paper's TileDB baseline stores the whole dataset as a 3-D array
//! `(mask_id, height, width)` with one tile per mask (§4.1). Two access
//! patterns matter for the evaluation:
//!
//! * **Sequential scans** (constant ROI across all masks): the engine can
//!   stream the file in large chunks, paying per-operation latency only once
//!   per chunk — this is why TileDB matches the other baselines on Q1/Q3.
//! * **Per-mask random reads** (mask-specific ROIs): each mask becomes its
//!   own read operation, which under-utilises disk bandwidth — this is why
//!   TileDB is *slower* than the other baselines on Q2/Q4/Q5 (§4.2).
//!
//! Both patterns are exposed here and charged to the shared cost model.

use crate::codec::{Reader, Writer};
use crate::disk::{DiskProfile, IoStats};
use crate::error::{StorageError, StorageResult};
use masksearch_core::{Mask, MaskId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes identifying an array store file.
pub const ARRAY_MAGIC: [u8; 4] = *b"MSKA";
/// Array store format version.
pub const ARRAY_FORMAT_VERSION: u16 = 1;

/// Fixed header: magic(4) + version(2) + reserved(2) + width(4) + height(4)
/// + count(8).
const HEADER_LEN: u64 = 24;

/// A single-file dense array of uniformly-shaped masks (TileDB-like layout).
pub struct ArrayStore {
    path: PathBuf,
    file: Mutex<File>,
    width: u32,
    height: u32,
    profile: DiskProfile,
    stats: Arc<IoStats>,
    /// Mask id -> slot index within the array file.
    slots: BTreeMap<MaskId, u64>,
    /// Slot index -> mask id (for sequential scans).
    ids_by_slot: Vec<MaskId>,
}

impl ArrayStore {
    /// Creates a new (empty) array store for masks of shape `width × height`.
    pub fn create(
        path: impl Into<PathBuf>,
        width: u32,
        height: u32,
        profile: DiskProfile,
    ) -> StorageResult<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| StorageError::io("creating array store directory", e))?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| StorageError::io(format!("creating array store {}", path.display()), e))?;
        let mut header = Writer::with_capacity(HEADER_LEN as usize);
        header.write_bytes(&ARRAY_MAGIC);
        header.write_u16(ARRAY_FORMAT_VERSION);
        header.write_u16(0);
        header.write_u32(width);
        header.write_u32(height);
        header.write_u64(0);
        file.write_all(&header.into_bytes())
            .map_err(|e| StorageError::io("writing array store header", e))?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            width,
            height,
            profile,
            stats: IoStats::new_shared(),
            slots: BTreeMap::new(),
            ids_by_slot: Vec::new(),
        })
    }

    /// Opens an existing array store, reading its header and slot directory.
    ///
    /// The slot directory is stored in a sidecar file `<path>.dir` written by
    /// [`ArrayStore::flush_directory`].
    pub fn open(path: impl Into<PathBuf>, profile: DiskProfile) -> StorageResult<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| StorageError::io(format!("opening array store {}", path.display()), e))?;
        let mut header_bytes = vec![0u8; HEADER_LEN as usize];
        file.read_exact(&mut header_bytes)
            .map_err(|e| StorageError::io("reading array store header", e))?;
        let mut r = Reader::new(&header_bytes, "array store header");
        let magic = r.read_magic()?;
        if magic != ARRAY_MAGIC {
            return Err(StorageError::BadMagic {
                path: path.display().to_string(),
                found: magic,
            });
        }
        let version = r.read_u16()?;
        if version > ARRAY_FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion {
                found: version,
                supported: ARRAY_FORMAT_VERSION,
            });
        }
        let _reserved = r.read_u16()?;
        let width = r.read_u32()?;
        let height = r.read_u32()?;
        let count = r.read_u64()?;

        // Slot directory sidecar.
        let dir_path = Self::directory_path(&path);
        let dir_bytes = std::fs::read(&dir_path).map_err(|e| {
            StorageError::io(format!("reading array directory {}", dir_path.display()), e)
        })?;
        let mut r = Reader::new(&dir_bytes, "array store directory");
        let n = r.read_u64()?;
        if n != count {
            return Err(StorageError::corrupt(format!(
                "array directory lists {n} masks, header claims {count}"
            )));
        }
        let mut slots = BTreeMap::new();
        let mut ids_by_slot = Vec::with_capacity(n as usize);
        for slot in 0..n {
            let id = MaskId::new(r.read_u64()?);
            slots.insert(id, slot);
            ids_by_slot.push(id);
        }
        Ok(Self {
            path,
            file: Mutex::new(file),
            width,
            height,
            profile,
            stats: IoStats::new_shared(),
            slots,
            ids_by_slot,
        })
    }

    fn directory_path(path: &Path) -> PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".dir");
        PathBuf::from(p)
    }

    /// Persists the slot directory and header count so the store can be
    /// re-opened later.
    pub fn flush_directory(&self) -> StorageResult<()> {
        let mut w = Writer::new();
        w.write_u64(self.ids_by_slot.len() as u64);
        for id in &self.ids_by_slot {
            w.write_u64(id.raw());
        }
        let dir_path = Self::directory_path(&self.path);
        std::fs::write(&dir_path, w.into_bytes())
            .map_err(|e| StorageError::io("writing array directory", e))?;
        // Update the count field in the header.
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(16))
            .map_err(|e| StorageError::io("seeking array header", e))?;
        file.write_all(&(self.ids_by_slot.len() as u64).to_le_bytes())
            .map_err(|e| StorageError::io("updating array header count", e))?;
        Ok(())
    }

    /// Mask width shared by every mask in the array.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mask height shared by every mask in the array.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of masks in the array.
    pub fn len(&self) -> usize {
        self.ids_by_slot.len()
    }

    /// Returns `true` if the array holds no masks.
    pub fn is_empty(&self) -> bool {
        self.ids_by_slot.is_empty()
    }

    /// All mask ids in slot order.
    pub fn ids(&self) -> &[MaskId] {
        &self.ids_by_slot
    }

    /// Shared I/O statistics.
    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Bytes occupied by one mask slot.
    pub fn mask_bytes(&self) -> u64 {
        (self.width as u64) * (self.height as u64) * 4
    }

    /// Total payload bytes in the array.
    pub fn total_bytes(&self) -> u64 {
        self.mask_bytes() * self.ids_by_slot.len() as u64
    }

    fn slot_offset(&self, slot: u64) -> u64 {
        HEADER_LEN + slot * self.mask_bytes()
    }

    /// Appends a mask to the array. The mask shape must match the array's.
    pub fn append(&mut self, mask_id: MaskId, mask: &Mask) -> StorageResult<()> {
        if mask.shape() != (self.width, self.height) {
            return Err(StorageError::InvalidMask {
                mask_id: Some(mask_id),
                source: masksearch_core::Error::ShapeMismatch {
                    expected: (self.width, self.height),
                    found: mask.shape(),
                },
            });
        }
        if self.slots.contains_key(&mask_id) {
            return Err(StorageError::AlreadyExists(mask_id));
        }
        let slot = self.ids_by_slot.len() as u64;
        let offset = self.slot_offset(slot);
        let mut bytes = Vec::with_capacity(mask.data().len() * 4);
        for &v in mask.data() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| StorageError::io("seeking array slot", e))?;
            file.write_all(&bytes)
                .map_err(|e| StorageError::io("writing array slot", e))?;
        }
        self.stats.record_write(
            bytes.len() as u64,
            self.profile.write_cost(bytes.len() as u64, 1),
        );
        self.slots.insert(mask_id, slot);
        self.ids_by_slot.push(mask_id);
        Ok(())
    }

    fn read_range(&self, offset: u64, len: usize, ops: u64) -> StorageResult<Vec<u8>> {
        let mut buf = vec![0u8; len];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| StorageError::io("seeking array store", e))?;
            file.read_exact(&mut buf)
                .map_err(|e| StorageError::io("reading array store", e))?;
        }
        self.stats
            .record_read(len as u64, self.profile.read_cost(len as u64, ops));
        Ok(buf)
    }

    fn decode_pixels(&self, bytes: &[u8]) -> Vec<f32> {
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Reads a single mask with one random-access operation.
    pub fn get(&self, mask_id: MaskId) -> StorageResult<Mask> {
        let slot = *self
            .slots
            .get(&mask_id)
            .ok_or(StorageError::MaskNotFound(mask_id))?;
        let bytes = self.read_range(self.slot_offset(slot), self.mask_bytes() as usize, 1)?;
        self.stats.record_mask_loaded();
        let pixels = self.decode_pixels(&bytes);
        Mask::new(self.width, self.height, pixels).map_err(|source| StorageError::InvalidMask {
            mask_id: Some(mask_id),
            source,
        })
    }

    /// Streams every mask in slot order, reading the file in chunks of
    /// `chunk_masks` masks (one I/O operation per chunk). This models the
    /// favourable sequential access pattern array databases enjoy when the
    /// same region is sliced from many masks at once.
    pub fn scan_sequential(
        &self,
        chunk_masks: usize,
        mut f: impl FnMut(MaskId, Mask) -> StorageResult<()>,
    ) -> StorageResult<()> {
        let chunk_masks = chunk_masks.max(1);
        let mask_bytes = self.mask_bytes() as usize;
        let mut slot = 0usize;
        while slot < self.ids_by_slot.len() {
            let n = chunk_masks.min(self.ids_by_slot.len() - slot);
            let bytes = self.read_range(self.slot_offset(slot as u64), mask_bytes * n, 1)?;
            for i in 0..n {
                let id = self.ids_by_slot[slot + i];
                let pixels = self.decode_pixels(&bytes[i * mask_bytes..(i + 1) * mask_bytes]);
                self.stats.record_mask_loaded();
                let mask = Mask::new(self.width, self.height, pixels).map_err(|source| {
                    StorageError::InvalidMask {
                        mask_id: Some(id),
                        source,
                    }
                })?;
                f(id, mask)?;
            }
            slot += n;
        }
        Ok(())
    }

    /// Reads only the rows `[row_start, row_end)` of a single mask — the
    /// "slice an ROI out of a mask" access path. Charged as one operation.
    pub fn get_rows(&self, mask_id: MaskId, row_start: u32, row_end: u32) -> StorageResult<Mask> {
        if row_start >= row_end || row_end > self.height {
            return Err(StorageError::corrupt(format!(
                "row range [{row_start}, {row_end}) outside mask height {}",
                self.height
            )));
        }
        let slot = *self
            .slots
            .get(&mask_id)
            .ok_or(StorageError::MaskNotFound(mask_id))?;
        let row_bytes = self.width as usize * 4;
        let offset = self.slot_offset(slot) + (row_start as u64) * row_bytes as u64;
        let len = (row_end - row_start) as usize * row_bytes;
        let bytes = self.read_range(offset, len, 1)?;
        self.stats.record_mask_loaded();
        let pixels = self.decode_pixels(&bytes);
        Mask::new(self.width, row_end - row_start, pixels).map_err(|source| {
            StorageError::InvalidMask {
                mask_id: Some(mask_id),
                source,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mask(seed: u32) -> Mask {
        Mask::from_fn(8, 8, |x, y| ((x * 3 + y * 5 + seed) % 11) as f32 / 11.0)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "masksearch-array-test-{}-{}.bin",
            name,
            std::process::id()
        ))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(ArrayStore::directory_path(path));
    }

    #[test]
    fn append_get_and_reopen() {
        let path = temp_path("append");
        {
            let mut store = ArrayStore::create(&path, 8, 8, DiskProfile::unthrottled()).unwrap();
            for i in 0..6u64 {
                store
                    .append(MaskId::new(i * 10), &sample_mask(i as u32))
                    .unwrap();
            }
            store.flush_directory().unwrap();
            assert_eq!(store.len(), 6);
            assert_eq!(store.get(MaskId::new(30)).unwrap(), sample_mask(3));
            assert!(matches!(
                store.get(MaskId::new(5)),
                Err(StorageError::MaskNotFound(_))
            ));
        }
        let store = ArrayStore::open(&path, DiskProfile::unthrottled()).unwrap();
        assert_eq!(store.len(), 6);
        assert_eq!(store.get(MaskId::new(50)).unwrap(), sample_mask(5));
        assert_eq!(store.total_bytes(), 6 * 8 * 8 * 4);
        cleanup(&path);
    }

    #[test]
    fn shape_mismatch_and_duplicates_are_rejected() {
        let path = temp_path("mismatch");
        let mut store = ArrayStore::create(&path, 8, 8, DiskProfile::unthrottled()).unwrap();
        let wrong = Mask::zeros(4, 4);
        assert!(matches!(
            store.append(MaskId::new(1), &wrong),
            Err(StorageError::InvalidMask { .. })
        ));
        store.append(MaskId::new(1), &sample_mask(1)).unwrap();
        assert!(matches!(
            store.append(MaskId::new(1), &sample_mask(2)),
            Err(StorageError::AlreadyExists(_))
        ));
        cleanup(&path);
    }

    #[test]
    fn sequential_scan_visits_all_masks_with_fewer_ops() {
        let path = temp_path("scan");
        let mut store = ArrayStore::create(&path, 8, 8, DiskProfile::unthrottled()).unwrap();
        for i in 0..10u64 {
            store
                .append(MaskId::new(i), &sample_mask(i as u32))
                .unwrap();
        }
        let mut seen = Vec::new();
        store
            .scan_sequential(4, |id, mask| {
                assert_eq!(mask, sample_mask(id.raw() as u32));
                seen.push(id);
                Ok(())
            })
            .unwrap();
        assert_eq!(seen.len(), 10);
        // 10 masks in chunks of 4 -> 3 read operations.
        assert_eq!(store.io_stats().read_ops(), 3);
        assert_eq!(store.io_stats().masks_loaded(), 10);
        cleanup(&path);
    }

    #[test]
    fn row_slicing_reads_only_requested_rows() {
        let path = temp_path("rows");
        let mut store = ArrayStore::create(&path, 8, 8, DiskProfile::unthrottled()).unwrap();
        let mask = sample_mask(4);
        store.append(MaskId::new(1), &mask).unwrap();
        let stats_before = store.io_stats().snapshot();
        let sliced = store.get_rows(MaskId::new(1), 2, 5).unwrap();
        assert_eq!(sliced.shape(), (8, 3));
        assert_eq!(sliced.get(3, 0), mask.get(3, 2));
        let delta = store.io_stats().snapshot().delta_since(&stats_before);
        assert_eq!(delta.bytes_read, 3 * 8 * 4);
        assert!(store.get_rows(MaskId::new(1), 5, 5).is_err());
        assert!(store.get_rows(MaskId::new(1), 0, 9).is_err());
        cleanup(&path);
    }

    #[test]
    fn open_rejects_non_array_files() {
        let path = temp_path("badmagic");
        std::fs::write(&path, b"not an array store at all").unwrap();
        assert!(ArrayStore::open(&path, DiskProfile::unthrottled()).is_err());
        cleanup(&path);
    }
}
